#!/usr/bin/env python3
"""Sensitivity study: MSHR capacity x hardware prefetcher interaction.

Expands the registered ``mshr-prefetch-interaction`` study — the full
cartesian grid of MSHR file size (8/16/32 entries) against hardware
prefetcher choice (none/nextline/stride) with PRE on top — runs every cell
through the cached parallel engine, and prints the markdown table.  The MSHR
file bounds the memory-level parallelism either mechanism can expose
(Section 5.3 discusses runahead alongside conventional prefetching), so the
two knobs interact and need the two-axis product, not two separate sweeps.

The equivalent CLI is ``python -m repro study run mshr-prefetch-interaction``.

Run with:  python examples/study_mshr_prefetch.py [--uops N] [--workers N]
                                                  [--cache-dir DIR] [--csv PATH]
"""

from study_common import run_study_example

if __name__ == "__main__":
    run_study_example("mshr-prefetch-interaction", __doc__)
