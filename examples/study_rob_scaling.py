#!/usr/bin/env python3
"""Sensitivity study: runahead benefit vs reorder-buffer depth.

Expands the registered ``rob-scaling`` study — ROB (and the PRDQ that
shadows it) at 128/192/256/384 entries, RA and PRE against the OoO baseline
on the memory-bound trio — runs every cell through the cached parallel
engine, and prints the markdown curve table.  The paper's premise (Section 5)
is that full-window stalls grow with window depth, so runahead's gain should
move with the ROB.

The equivalent CLI is ``python -m repro study run rob-scaling``.

Run with:  python examples/study_rob_scaling.py [--uops N] [--workers N]
                                                [--cache-dir DIR] [--csv PATH]
"""

from study_common import run_study_example

if __name__ == "__main__":
    run_study_example("rob-scaling", __doc__)
