"""Shared driver for the ``study_*.py`` example scripts.

Each per-study script contributes its docstring (the study's motivation) and
a registered study name; this module supplies the argparse boilerplate and
the build -> run -> render sequence, so adding a flag here updates every
study example at once.
"""

import argparse

from repro.analysis.report import format_study_markdown, write_study_csv
from repro.simulation.engine import ExperimentEngine
from repro.simulation.study import build_study, run_study


def run_study_example(study: str, doc: str) -> None:
    """Parse the standard study-example flags, run ``study``, print markdown."""
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument(
        "--uops", type=int, default=None,
        help="micro-ops per cell (default: the study's own setting)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the study grid (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="optional result-cache directory; re-runs skip finished cells",
    )
    parser.add_argument(
        "--csv", type=str, default=None,
        help="optionally write long-format per-cell curve data as CSV",
    )
    args = parser.parse_args()

    spec = build_study(study, num_uops=args.uops)
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    result = run_study(spec, engine=engine, progress=print)
    print()
    print(format_study_markdown(result))
    if args.csv:
        write_study_csv(result, args.csv)
        print(f"\nper-cell curve data written to {args.csv}")
