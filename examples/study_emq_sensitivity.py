#!/usr/bin/env python3
"""Sensitivity study: does the enhanced memorisation queue pay for its SRAM?

Expands the registered ``emq-sensitivity`` study — EMQ capacity at
96/192/384/768 entries under both PRE and PRE+EMQ — runs every cell through
the cached parallel engine, and prints the markdown curve table.  The paper
sizes the EMQ at 768 entries (Section 4) and reports diminishing returns;
this study draws that curve.

The equivalent CLI is ``python -m repro study run emq-sensitivity``.

Run with:  python examples/study_emq_sensitivity.py [--uops N] [--workers N]
                                                    [--cache-dir DIR] [--csv PATH]
"""

from study_common import run_study_example

if __name__ == "__main__":
    run_study_example("emq-sensitivity", __doc__)
