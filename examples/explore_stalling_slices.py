#!/usr/bin/env python3
"""Explore how PRE learns stalling slices and recycles registers.

Runs a multi-slice workload on a PRE core and inspects the paper's three new
hardware structures as the simulation progresses:

* the Stalling Slice Table (SST) — which static instructions were identified
  as belonging to a stalling slice (Section 3.2);
* the Precise Register Deallocation Queue (PRDQ) — how many physical
  registers runahead execution borrowed and recycled (Section 3.4);
* the runahead intervals themselves — how long they are and how many
  prefetches each one generated.

Run with:  python examples/explore_stalling_slices.py
"""

from collections import Counter

from repro.core.pre import PreciseRunaheadController
from repro.simulation.metrics import interval_length_histogram
from repro.uarch.core import OoOCore
from repro.workloads.generators import multi_slice_kernel
from repro.workloads.trace import UopClass


def main() -> None:
    trace = multi_slice_kernel(num_uops=6_000, num_slices=4, work_per_iteration=16)
    controller = PreciseRunaheadController()
    core = OoOCore(trace, controller=controller)
    stats = core.run()

    load_pcs = set(trace.pcs_of_class(UopClass.LOAD))
    sst_pcs = set(controller.sst.pcs())
    classes = Counter()
    pc_to_class = {uop.pc: uop.uop_class for uop in trace}
    for pc in sst_pcs:
        classes[pc_to_class.get(pc, UopClass.NOP).value] += 1

    print(f"workload: {trace.name}, {len(trace)} micro-ops, {len(load_pcs)} static loads")
    print(f"simulated {stats.cycles} cycles at IPC {stats.ipc:.3f}")
    print(f"\nStalling Slice Table after the run ({len(controller.sst)} entries):")
    print(f"  load PCs captured      : {len(sst_pcs & load_pcs)} / {len(load_pcs)}")
    print(f"  entries by micro-op class: {dict(classes)}")
    print(f"  lookup hit rate        : {controller.sst.stats.hit_rate:.3f}")

    print(f"\nPrecise Register Deallocation Queue:")
    print(f"  allocations            : {controller.prdq.stats.allocations}")
    print(f"  registers reclaimed    : {controller.prdq.stats.registers_reclaimed}")
    print(f"  peak occupancy         : {controller.prdq.stats.peak_occupancy} / "
          f"{controller.prdq.capacity}")

    print(f"\nRunahead intervals:")
    print(f"  invocations            : {stats.runahead_invocations}")
    print(f"  mean length            : {stats.average_interval_length:.1f} cycles")
    print(f"  < 20-cycle fraction    : {stats.short_interval_fraction(20):.2f} "
          f"(paper reports 0.27 for prior proposals)")
    print(f"  length histogram       : {interval_length_histogram(stats)}")
    print(f"  prefetches issued      : {stats.runahead_prefetches}")
    print(f"  demand loads hitting under a prefetch: {stats.loads_hit_under_prefetch}")

    free = stats.mean_free_resources()
    print(f"\nFree resources at full-window stalls (Section 3.4, paper: 0.37/0.51/0.59):")
    print(f"  issue queue {free['iq']:.2f}, int registers {free['int_regs']:.2f}, "
          f"fp registers {free['fp_regs']:.2f}")


if __name__ == "__main__":
    main()
