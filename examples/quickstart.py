#!/usr/bin/env python3
"""Quickstart: simulate one workload on the baseline core and on PRE.

Builds a small multi-slice memory-intensive workload (the situation Precise
Runahead Execution targets), runs it on the baseline out-of-order core and on
a PRE-enabled core, and prints the headline metrics: IPC, speedup, runahead
invocations and prefetches, and energy.

Run with:  python examples/quickstart.py
"""

from repro import build_core, run_variant
from repro.workloads.generators import multi_slice_kernel


def main() -> None:
    trace = multi_slice_kernel(num_uops=5_000, num_slices=4, work_per_iteration=16)
    print(f"workload: {trace.name}, {len(trace)} micro-ops, "
          f"{trace.stats().num_loads} loads, footprint {trace.stats().footprint_bytes // 1024} KB")

    baseline = run_variant(trace, variant="ooo")
    pre = run_variant(trace, variant="pre")

    speedup = (baseline.cycles / pre.cycles - 1.0) * 100.0
    energy_saving = (1.0 - pre.total_energy_nj / baseline.total_energy_nj) * 100.0

    print(f"\nbaseline OoO : {baseline.cycles:8d} cycles, IPC {baseline.ipc:.3f}, "
          f"{baseline.stats.full_window_stalls} full-window stalls")
    print(f"PRE          : {pre.cycles:8d} cycles, IPC {pre.ipc:.3f}, "
          f"{pre.stats.runahead_invocations} runahead invocations, "
          f"{pre.stats.runahead_prefetches} prefetches")
    print(f"\nPRE speedup over OoO        : {speedup:+.1f}%")
    print(f"PRE energy saving over OoO  : {energy_saving:+.1f}%")
    print(f"loads that hit under a runahead prefetch: {pre.stats.loads_hit_under_prefetch}")

    # The lower-level API exposes the simulated core directly.
    core = build_core(trace, variant="pre")
    core.run(max_cycles=20_000)
    controller = core.controller
    print(f"\nafter 20k cycles the Stalling Slice Table holds {len(controller.sst)} PCs "
          f"(hit rate {controller.sst.stats.hit_rate:.2f})")


if __name__ == "__main__":
    main()
