#!/usr/bin/env python3
"""Sensitivity study: runahead benefit vs off-chip DRAM latency.

Expands the registered ``dram-latency`` study — the DRAM controller +
interconnect overhead at 20/40/80/160 core cycles, RA and PRE against the
OoO baseline — runs every cell through the cached parallel engine, and
prints the markdown curve table.  Runahead exists to hide off-chip latency:
the longer the round trip, the more cycles there are to prefetch under, so
the baseline IPC should collapse faster than the runahead variants'.

The equivalent CLI is ``python -m repro study run dram-latency``.

Run with:  python examples/study_dram_latency.py [--uops N] [--workers N]
                                                 [--cache-dir DIR] [--csv PATH]
"""

from study_common import run_study_example

if __name__ == "__main__":
    run_study_example("dram-latency", __doc__)
