#!/usr/bin/env python3
"""Reproduce Figure 3: energy savings of all runahead variants relative to OoO.

Runs the surrogate suite on every core variant with the event-based McPAT/CACTI
style energy model and prints per-benchmark and average energy savings — the
same series the paper's Figure 3 plots (paper averages: RA −2.7%, RA-buffer
~0%, PRE +6.1%, PRE+EMQ +7.2%).

Run with:  python examples/reproduce_figure3.py [--uops N]
"""

import argparse

from repro.analysis.report import format_energy_figure
from repro.simulation.experiment import run_performance_comparison
from repro.workloads.spec_surrogates import build_surrogate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uops", type=int, default=5_000,
                        help="micro-ops per benchmark trace (default: 5000)")
    parser.add_argument("--benchmarks", type=str,
                        default="mcf,libquantum,milc,sphinx3,bwaves,lbm")
    args = parser.parse_args()

    names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    traces = [build_surrogate(name, num_uops=args.uops) for name in names]
    print(f"simulating {len(names)} benchmarks x 5 core variants ...\n")
    comparison = run_performance_comparison(traces)

    print(format_energy_figure(comparison))
    print()
    print("Per-variant breakdown of where the energy goes (first benchmark, PRE):")
    result = comparison.benchmarks[0].results["pre"]
    for component, value in result.energy.breakdown.as_dict().items():
        print(f"  {component:28s} {value:14.1f} nJ")


if __name__ == "__main__":
    main()
