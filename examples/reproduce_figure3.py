#!/usr/bin/env python3
"""Reproduce Figure 3: energy savings of all runahead variants relative to OoO.

Runs the surrogate suite on every core variant with the event-based McPAT/CACTI
style energy model and prints per-benchmark and average energy savings — the
same series the paper's Figure 3 plots (paper averages: RA −2.7%, RA-buffer
~0%, PRE +6.1%, PRE+EMQ +7.2%).

The suite runs through :class:`repro.simulation.engine.ExperimentEngine`; the
equivalent CLI is ``python -m repro sweep --figure 3``.

Run with:  python examples/reproduce_figure3.py [--uops N] [--workers N]
                                                [--cache-dir DIR]
"""

import argparse

from repro.analysis.report import format_energy_figure
from repro.simulation.engine import ExperimentEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uops", type=int, default=5_000,
                        help="micro-ops per benchmark trace (default: 5000)")
    parser.add_argument("--benchmarks", type=str,
                        default="mcf,libquantum,milc,sphinx3,bwaves,lbm")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (default: 1, serial)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="optional result-cache directory")
    parser.add_argument("--probe", action="append", metavar="NAME",
                        help="attach an instrumentation probe (repeatable), "
                             "e.g. --probe mem_profile")
    args = parser.parse_args()

    names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    print(f"simulating {len(names)} benchmarks x 5 core variants "
          f"({args.workers} worker(s)) ...\n")
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    comparison = engine.run_workloads(names, num_uops=args.uops, probes=args.probe or [])

    print(format_energy_figure(comparison))
    print()
    print("Per-variant breakdown of where the energy goes (first benchmark, PRE):")
    result = comparison.benchmarks[0].results["pre"]
    for component, value in result.energy.breakdown.as_dict().items():
        print(f"  {component:28s} {value:14.1f} nJ")

    if args.probe:
        print("\nProbe reports (first benchmark, PRE):")
        for name, report in result.probe_reports.items():
            print(f"  {name}: {report}")


if __name__ == "__main__":
    main()
