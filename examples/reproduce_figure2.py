#!/usr/bin/env python3
"""Reproduce Figure 2: performance of all runahead variants normalised to OoO.

Runs the SPEC CPU2006 surrogate suite on the baseline out-of-order core,
traditional runahead (RA), the runahead buffer (RA-buffer), PRE and PRE+EMQ,
then prints the per-benchmark and average normalised performance — the same
series the paper's Figure 2 plots.

The suite runs through :class:`repro.simulation.engine.ExperimentEngine`, so
``--workers`` fans the (benchmark, variant) grid out across processes and
``--cache-dir`` reuses results across invocations.  The equivalent CLI is
``python -m repro sweep --figure 2``.

Run with:  python examples/reproduce_figure2.py [--uops N] [--benchmarks a,b,c]
                                                [--workers N] [--cache-dir DIR]
"""

import argparse

from repro.analysis.report import format_performance_figure, summarize_comparison
from repro.simulation.engine import ExperimentEngine
from repro.workloads.spec_surrogates import surrogate_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--uops", type=int, default=5_000,
        help="micro-ops per benchmark trace (default: 5000; larger is slower but smoother)",
    )
    parser.add_argument(
        "--benchmarks", type=str,
        default="mcf,libquantum,milc,sphinx3,bwaves,lbm",
        help="comma-separated surrogate names, or 'all' for the full suite",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="optional result-cache directory; re-runs skip finished cells",
    )
    parser.add_argument(
        "--probe", action="append", metavar="NAME",
        help="attach an instrumentation probe to every cell (repeatable), "
             "e.g. --probe stall_breakdown",
    )
    args = parser.parse_args()

    if args.benchmarks.strip() == "all":
        names = surrogate_names()
    else:
        names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]

    print(f"simulating {len(names)} benchmarks x 5 core variants "
          f"({args.uops} micro-ops each, {args.workers} worker(s)) ...\n")
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    comparison = engine.run_workloads(names, num_uops=args.uops, probes=args.probe or [])

    print(format_performance_figure(comparison))
    print()
    print("Headline comparison (paper: RA +14.5%, RA-buffer +14.4%, PRE +35.5%, PRE+EMQ +28.6%):")
    print(summarize_comparison(comparison))

    if args.probe:
        print("\nProbe reports (first benchmark, PRE):")
        reports = comparison.benchmarks[0].results["pre"].probe_reports
        for name, report in reports.items():
            print(f"  {name}: {report}")


if __name__ == "__main__":
    main()
