#!/usr/bin/env python3
"""Reproduce Figure 2: performance of all runahead variants normalised to OoO.

Runs the SPEC CPU2006 surrogate suite on the baseline out-of-order core,
traditional runahead (RA), the runahead buffer (RA-buffer), PRE and PRE+EMQ,
then prints the per-benchmark and average normalised performance — the same
series the paper's Figure 2 plots.

Run with:  python examples/reproduce_figure2.py [--uops N] [--benchmarks a,b,c]
"""

import argparse

from repro.analysis.report import format_performance_figure, summarize_comparison
from repro.simulation.experiment import run_performance_comparison
from repro.workloads.spec_surrogates import build_surrogate, surrogate_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--uops", type=int, default=5_000,
        help="micro-ops per benchmark trace (default: 5000; larger is slower but smoother)",
    )
    parser.add_argument(
        "--benchmarks", type=str,
        default="mcf,libquantum,milc,sphinx3,bwaves,lbm",
        help="comma-separated surrogate names, or 'all' for the full suite",
    )
    args = parser.parse_args()

    if args.benchmarks.strip() == "all":
        names = surrogate_names()
    else:
        names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]

    print(f"simulating {len(names)} benchmarks x 5 core variants "
          f"({args.uops} micro-ops each) ...\n")
    traces = [build_surrogate(name, num_uops=args.uops) for name in names]
    comparison = run_performance_comparison(traces)

    print(format_performance_figure(comparison))
    print()
    print("Headline comparison (paper: RA +14.5%, RA-buffer +14.4%, PRE +35.5%, PRE+EMQ +28.6%):")
    print(summarize_comparison(comparison))


if __name__ == "__main__":
    main()
