"""Figure 3 — energy savings of RA, RA-buffer, PRE and PRE+EMQ relative to OoO.

Paper (Section 5.2): RA increases energy by 2.7%, RA-buffer is roughly energy
neutral, PRE saves 6.1% and PRE+EMQ saves 7.2% relative to the baseline
out-of-order core (core + DRAM energy).
"""

from bench_common import FIGURE_BENCHMARKS, FIGURE_TRACE_UOPS
from repro.analysis.report import format_energy_figure
from repro.core import VARIANTS
from repro.simulation.simulator import run_variant
from repro.workloads.spec_surrogates import build_surrogate


def test_bench_figure3_energy_savings(benchmark, figure_comparison):
    """Regenerate Figure 3 and record per-variant mean energy savings."""

    def run_energy_evaluation():
        trace = build_surrogate(FIGURE_BENCHMARKS[2], num_uops=FIGURE_TRACE_UOPS // 2)
        return run_variant(trace, variant="pre").energy.total_nj

    benchmark.pedantic(run_energy_evaluation, rounds=1, iterations=1)

    comparison = figure_comparison
    print()
    print(format_energy_figure(comparison))
    for variant in VARIANTS:
        if variant == "ooo":
            continue
        benchmark.extra_info[f"mean_energy_saving_pct_{variant}"] = round(
            comparison.mean_energy_savings_percent(variant), 2
        )

    # Shape checks mirroring the paper's conclusions: PRE and PRE+EMQ save
    # energy relative to the baseline, and PRE is more energy-efficient than
    # traditional runahead (which re-fetches and re-executes whole windows).
    assert comparison.mean_energy_savings_percent("pre") > comparison.mean_energy_savings_percent(
        "runahead"
    )
    assert comparison.mean_energy_savings_percent("pre") > -1.0


def test_bench_figure3_energy_breakdown_components(figure_comparison):
    """The energy model attributes energy to front-end, core, caches and DRAM."""
    result = figure_comparison.benchmarks[0].results["pre"]
    breakdown = result.energy.breakdown
    assert breakdown.frontend_nj > 0
    assert breakdown.cache_nj > 0
    assert breakdown.dram_dynamic_nj > 0
    assert breakdown.core_static_nj > 0
    assert breakdown.total_nj == result.energy.total_nj
