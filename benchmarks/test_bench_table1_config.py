"""Table 1 — baseline configuration for the out-of-order core."""

from repro.analysis.report import format_table1_configuration
from repro.uarch.config import CoreConfig


def test_bench_table1_configuration(benchmark):
    """Regenerate Table 1 from the default :class:`CoreConfig`."""
    config = CoreConfig()
    rendered = benchmark.pedantic(
        lambda: format_table1_configuration(config), rounds=1, iterations=1
    )
    print()
    print(rendered)

    # The defaults must match the paper's Table 1 exactly.
    assert config.frequency_ghz == 2.66
    assert config.rob_size == 192
    assert config.issue_queue_size == 92
    assert config.load_queue_size == 64
    assert config.store_queue_size == 64
    assert config.pipeline_width == 4
    assert config.frontend_depth == 8
    assert config.int_registers == 168
    assert config.fp_registers == 168
    assert config.sst_entries == 256
    assert config.prdq_entries == 192
    assert config.emq_entries == 768
    benchmark.extra_info["table1"] = config.summary()
