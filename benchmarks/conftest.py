"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (a table, a figure,
or a quoted statistic).  The workload suite is scaled down to a few thousand
micro-ops per benchmark so the whole harness runs in minutes on a laptop; see
DESIGN.md section 6 for the scaling rationale.

The figure-level comparison runs through the experiment engine.  Set
``REPRO_BENCH_WORKERS`` to parallelise it and ``REPRO_BENCH_CACHE`` to a
directory to reuse simulation results across harness invocations.
"""

from __future__ import annotations

import os

import pytest

from bench_common import FIGURE_BENCHMARKS, FIGURE_TRACE_UOPS
from repro.simulation.engine import ExperimentEngine
from repro.simulation.experiment import ComparisonResult


@pytest.fixture(scope="session")
def figure_comparison() -> ComparisonResult:
    """Run the full five-variant comparison once and share it across benchmarks."""
    engine = ExperimentEngine(
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
    )
    return engine.run_workloads(FIGURE_BENCHMARKS, num_uops=FIGURE_TRACE_UOPS)
