"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (a table, a figure,
or a quoted statistic).  The workload suite is scaled down to a few thousand
micro-ops per benchmark so the whole harness runs in minutes on a laptop; see
DESIGN.md section 6 for the scaling rationale.
"""

from __future__ import annotations

import pytest

from bench_common import FIGURE_BENCHMARKS, FIGURE_TRACE_UOPS
from repro.simulation.experiment import ComparisonResult, run_comparison
from repro.workloads.spec_surrogates import build_surrogate


@pytest.fixture(scope="session")
def figure_comparison() -> ComparisonResult:
    """Run the full five-variant comparison once and share it across benchmarks."""
    traces = [build_surrogate(name, num_uops=FIGURE_TRACE_UOPS) for name in FIGURE_BENCHMARKS]
    return run_comparison(traces)
