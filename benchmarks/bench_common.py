"""Shared constants for the benchmark harness."""

#: Benchmarks used by the figure-level comparisons.  A representative subset
#: of the memory-intensive suite keeps the harness fast; every surrogate can
#: be enabled by editing this list.
FIGURE_BENCHMARKS = ("mcf", "libquantum", "milc", "sphinx3", "bwaves", "lbm")

#: Trace length per benchmark (micro-ops).  Scaled down from the paper's
#: 1B-instruction SimPoints so the harness runs in minutes (DESIGN.md section 6).
FIGURE_TRACE_UOPS = 5_000
