"""Ablation studies over PRE's design parameters (DESIGN.md experiment index).

These sweeps are not figures in the four-page paper, but they exercise the
design choices the paper motivates: the SST must be large enough to hold all
stalling slices (Section 3.6 sizes it at 256 entries "with almost no misses")
and the EMQ bounds how deep PRE+EMQ can run ahead (Section 3.3).
"""

import pytest

from repro.core.pre import PreciseRunaheadController
from repro.uarch.core import OoOCore
from repro.workloads.spec_surrogates import build_surrogate


def _run_pre(trace, use_emq=False, sst_entries=None, emq_entries=None):
    controller = PreciseRunaheadController(
        use_emq=use_emq, sst_entries=sst_entries, emq_entries=emq_entries
    )
    core = OoOCore(trace, controller=controller)
    stats = core.run()
    return stats, controller


def test_bench_ablation_sst_size(benchmark):
    """PRE performance as a function of Stalling Slice Table capacity."""
    trace = build_surrogate("milc", num_uops=4_000)

    def sweep():
        results = {}
        for entries in (4, 16, 64, 256):
            stats, controller = _run_pre(trace, sst_entries=entries)
            results[entries] = {
                "cycles": stats.cycles,
                "prefetches": stats.runahead_prefetches,
                "sst_hit_rate": round(controller.sst.stats.hit_rate, 3),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nSST capacity sweep (milc surrogate):")
    for entries, row in results.items():
        print(f"  {entries:4d} entries: {row}")
    benchmark.extra_info["sst_sweep"] = results
    # A 256-entry SST (the paper's size) must not be slower than a tiny SST.
    assert results[256]["cycles"] <= results[4]["cycles"] * 1.05
    assert results[256]["sst_hit_rate"] >= results[4]["sst_hit_rate"] * 0.9


def test_bench_ablation_emq_size(benchmark):
    """PRE+EMQ runahead depth as a function of EMQ capacity (Section 3.3)."""
    trace = build_surrogate("lbm", num_uops=4_000)

    def sweep():
        results = {}
        for entries in (96, 192, 768, 1536):
            stats, _ = _run_pre(trace, use_emq=True, emq_entries=entries)
            results[entries] = {
                "cycles": stats.cycles,
                "prefetches": stats.runahead_prefetches,
                "invocations": stats.runahead_invocations,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nEMQ capacity sweep (lbm surrogate):")
    for entries, row in results.items():
        print(f"  {entries:4d} entries: {row}")
    benchmark.extra_info["emq_sweep"] = results
    # A larger EMQ can only allow more (or equally many) prefetches per run.
    assert results[1536]["prefetches"] >= results[96]["prefetches"]
    # And a larger EMQ must not hurt end-to-end performance.
    assert results[1536]["cycles"] <= results[96]["cycles"] * 1.05


def test_bench_ablation_runahead_entry_threshold(benchmark):
    """Sensitivity of traditional runahead to the short-interval entry filter."""
    from repro.core.runahead import TraditionalRunaheadController

    trace = build_surrogate("bwaves", num_uops=4_000)

    def sweep():
        results = {}
        for threshold in (0, 56, 200):
            controller = TraditionalRunaheadController(minimum_interval=threshold)
            stats = OoOCore(trace, controller=controller).run()
            results[threshold] = {
                "cycles": stats.cycles,
                "invocations": stats.runahead_invocations,
                "skipped": stats.runahead_entries_skipped_short,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nRunahead minimum-interval threshold sweep (bwaves surrogate):")
    for threshold, row in results.items():
        print(f"  threshold {threshold:3d}: {row}")
    benchmark.extra_info["threshold_sweep"] = results
    # A stricter threshold can only reduce the number of runahead entries.
    assert results[200]["invocations"] <= results[0]["invocations"]
