"""Section-level statistics quoted in the paper's text.

* Section 2.4 — the flush/refill penalty of prior runahead proposals is about
  56 cycles per invocation for a 192-entry ROB (8 cycles of front-end refill
  plus 192/4 dispatch cycles), and ~27% of runahead intervals are shorter than
  20 cycles for memory-intensive workloads.
* Section 3.4 — at runahead entry, on average ~37% of the issue-queue entries,
  ~51% of the integer and ~59% of the floating-point physical registers are
  free.
* Section 5.1 — PRE and PRE+EMQ invoke runahead execution 1.62x and 1.95x more
  frequently than traditional runahead.
"""

from bench_common import FIGURE_BENCHMARKS, FIGURE_TRACE_UOPS
from repro.simulation.metrics import interval_length_histogram
from repro.simulation.simulator import run_variant
from repro.uarch.config import CoreConfig
from repro.workloads.spec_surrogates import build_surrogate


def test_bench_flush_refill_overhead(benchmark):
    """Section 2.4: the per-invocation flush/refill penalty of traditional runahead."""
    config = CoreConfig()
    analytic_penalty = config.frontend_depth + config.rob_size // config.pipeline_width
    assert analytic_penalty == 56

    trace = build_surrogate("bwaves", num_uops=4_000)

    def measure():
        ra = run_variant(trace, variant="runahead")
        pre = run_variant(trace, variant="pre")
        return ra, pre

    ra, pre = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ra.stats.pipeline_flushes == ra.stats.runahead_invocations
    assert pre.stats.pipeline_flushes == 0
    benchmark.extra_info["analytic_flush_penalty_cycles"] = analytic_penalty
    benchmark.extra_info["ra_pipeline_flushes"] = ra.stats.pipeline_flushes
    benchmark.extra_info["pre_pipeline_flushes"] = pre.stats.pipeline_flushes
    print(
        f"\nSection 2.4: analytic flush/refill penalty = {analytic_penalty} cycles/invocation; "
        f"RA flushed {ra.stats.pipeline_flushes} times, PRE flushed {pre.stats.pipeline_flushes} times"
    )


def test_bench_short_interval_fraction(benchmark, figure_comparison):
    """Section 2.4: a significant fraction of runahead intervals is short."""

    def collect():
        fractions = {}
        histograms = {}
        for result in figure_comparison.benchmarks:
            stats = result.results["pre"].stats
            if stats.runahead_invocations:
                fractions[result.benchmark] = stats.short_interval_fraction(20)
                histograms[result.benchmark] = interval_length_histogram(stats)
        return fractions, histograms

    fractions, histograms = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert fractions, "at least one benchmark must invoke runahead"
    mean_fraction = sum(fractions.values()) / len(fractions)
    benchmark.extra_info["short_interval_fraction_paper"] = 0.27
    benchmark.extra_info["short_interval_fraction_measured"] = round(mean_fraction, 3)
    print(f"\nSection 2.4: fraction of runahead intervals < 20 cycles = {mean_fraction:.2f}"
          f" (paper: 0.27)")
    for name, histogram in histograms.items():
        print(f"  {name:12s} {histogram}")
    assert 0.0 <= mean_fraction <= 1.0


def test_bench_free_resources_at_stall(benchmark, figure_comparison):
    """Section 3.4: free issue-queue entries and physical registers at runahead entry."""

    def collect():
        iq, ints, fps = [], [], []
        for result in figure_comparison.benchmarks:
            free = result.results["ooo"].stats.mean_free_resources()
            if result.results["ooo"].stats.full_window_stalls:
                iq.append(free["iq"])
                ints.append(free["int_regs"])
                fps.append(free["fp_regs"])
        count = max(len(iq), 1)
        return sum(iq) / count, sum(ints) / count, sum(fps) / count

    free_iq, free_int, free_fp = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["free_iq_paper_vs_measured"] = (0.37, round(free_iq, 3))
    benchmark.extra_info["free_int_regs_paper_vs_measured"] = (0.51, round(free_int, 3))
    benchmark.extra_info["free_fp_regs_paper_vs_measured"] = (0.59, round(free_fp, 3))
    print(
        f"\nSection 3.4 free resources at full-window stalls (paper vs measured): "
        f"IQ 0.37/{free_iq:.2f}, int RF 0.51/{free_int:.2f}, fp RF 0.59/{free_fp:.2f}"
    )
    # The paper's qualitative claim: a substantial fraction of each resource is free.
    assert free_iq > 0.1
    assert free_int > 0.1
    assert free_fp > 0.1


def test_bench_invocation_rate(benchmark, figure_comparison):
    """Section 5.1: PRE invokes runahead execution more often than traditional runahead."""

    def collect():
        return {
            "pre": figure_comparison.mean_invocation_ratio("pre"),
            "pre_emq": figure_comparison.mean_invocation_ratio("pre_emq"),
        }

    ratios = benchmark.pedantic(collect, rounds=1, iterations=1)
    benchmark.extra_info["invocation_ratio_pre_paper_vs_measured"] = (1.62, round(ratios["pre"], 2))
    benchmark.extra_info["invocation_ratio_pre_emq_paper_vs_measured"] = (
        1.95,
        round(ratios["pre_emq"], 2),
    )
    print(
        f"\nSection 5.1 runahead invocations relative to RA (paper vs measured): "
        f"PRE 1.62x/{ratios['pre']:.2f}x, PRE+EMQ 1.95x/{ratios['pre_emq']:.2f}x"
    )
    assert ratios["pre"] >= 1.0
    assert ratios["pre_emq"] >= 1.0


def test_bench_hardware_overhead(benchmark):
    """Section 3.6: PRE's structures cost about 2 KB (plus 3 KB for the EMQ)."""
    from repro.core.emq import ExtendedMicroOpQueue
    from repro.core.prdq import PreciseRegisterDeallocationQueue
    from repro.core.sst import StallingSliceTable

    def account():
        config = CoreConfig()
        sst = StallingSliceTable(config.sst_entries)
        prdq = PreciseRegisterDeallocationQueue(config.prdq_entries)
        emq = ExtendedMicroOpQueue(config.emq_entries)
        rat_extension_bytes = 64 * 4  # 4 bytes of producer PC per RAT entry
        return {
            "sst_bytes": sst.storage_bytes,
            "prdq_bytes": prdq.storage_bytes,
            "rat_extension_bytes": rat_extension_bytes,
            "emq_bytes": emq.storage_bytes,
        }

    sizes = benchmark.pedantic(account, rounds=1, iterations=1)
    core_total = sizes["sst_bytes"] + sizes["prdq_bytes"] + sizes["rat_extension_bytes"]
    print(f"\nSection 3.6 hardware overhead: {sizes}, PRE total (no EMQ) = {core_total} bytes")
    assert sizes["sst_bytes"] == 1024
    assert sizes["prdq_bytes"] == 768
    assert sizes["rat_extension_bytes"] == 256
    assert core_total == 2048
    assert sizes["emq_bytes"] == 3072
    benchmark.extra_info.update(sizes)
