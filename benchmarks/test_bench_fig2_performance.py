"""Figure 2 — performance of RA, RA-buffer, PRE and PRE+EMQ normalised to OoO.

Paper (Section 5.1): RA +14.5%, RA-buffer +14.4%, PRE +35.5%, PRE+EMQ +28.6%
on average over the memory-intensive SPEC CPU2006 subset.  The harness
regenerates the same rows (per benchmark plus the suite average) on the
surrogate suite; see EXPERIMENTS.md for paper-vs-measured values.
"""

from repro.analysis.report import format_performance_figure
from repro.core import VARIANTS
from repro.simulation.experiment import run_comparison
from repro.workloads.spec_surrogates import build_surrogate

from bench_common import FIGURE_BENCHMARKS, FIGURE_TRACE_UOPS


def test_bench_figure2_performance_normalized_to_ooo(benchmark, figure_comparison):
    """Regenerate Figure 2 and record the headline speedups."""

    def run_single_benchmark():
        trace = build_surrogate(FIGURE_BENCHMARKS[2], num_uops=FIGURE_TRACE_UOPS // 2)
        return run_comparison([trace], variants=("ooo", "pre"))

    benchmark.pedantic(run_single_benchmark, rounds=1, iterations=1)

    comparison = figure_comparison
    print()
    print(format_performance_figure(comparison))
    for variant in VARIANTS:
        if variant == "ooo":
            continue
        benchmark.extra_info[f"mean_speedup_pct_{variant}"] = round(
            comparison.mean_speedup_percent(variant), 2
        )

    # Shape checks mirroring the paper's conclusions: every runahead variant
    # helps on average, and PRE outperforms traditional runahead.
    assert comparison.mean_speedup_percent("pre") > 0
    assert comparison.mean_speedup_percent("pre_emq") > 0
    assert comparison.mean_speedup_percent("pre") > comparison.mean_speedup_percent("runahead")


def test_bench_figure2_per_benchmark_rows(figure_comparison):
    """Every benchmark row of Figure 2 is available and PRE never loses badly."""
    table = figure_comparison.performance_table()
    for name in FIGURE_BENCHMARKS:
        assert name in table
        assert table[name]["PRE"] > 0.9
