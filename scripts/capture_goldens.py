#!/usr/bin/env python
"""Regenerate the golden CoreStats digests (tests/goldens/golden_stats.json).

Run this ONLY when the timing model has *intentionally* changed (a new
feature, a modelled-behaviour fix) — never as part of a performance
optimization, whose whole contract is that the goldens stay bit-identical.

Usage::

    PYTHONPATH=src python scripts/capture_goldens.py [--uops N] [--output PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.simulation.golden import (  # noqa: E402  (path bootstrap above)
    DEFAULT_GOLDEN_PATH,
    DEFAULT_GOLDEN_UOPS,
    DEFAULT_GOLDEN_VARIANTS,
    DEFAULT_GOLDEN_WORKLOADS,
    capture_goldens,
    write_goldens,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uops", type=int, default=DEFAULT_GOLDEN_UOPS)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / DEFAULT_GOLDEN_PATH
    )
    args = parser.parse_args()
    print(
        f"capturing goldens: {len(DEFAULT_GOLDEN_WORKLOADS)} workloads x "
        f"{len(DEFAULT_GOLDEN_VARIANTS)} variants at {args.uops} micro-ops",
        file=sys.stderr,
    )
    record = capture_goldens(num_uops=args.uops)
    path = write_goldens(record, args.output)
    print(f"wrote {len(record['cells'])} golden cells to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
