#!/usr/bin/env python
"""Refresh the committed cache-key schema fingerprint golden.

Run this after bumping ``CACHE_SCHEMA_VERSION`` in
``src/repro/simulation/engine.py`` (which you must do whenever a
cache-key-visible dataclass gains/loses/renames/retypes a field — the
``cache-schema`` lint rule enforces the pairing):

    PYTHONPATH=src python scripts/capture_schema_fingerprint.py

and commit the updated ``tests/goldens/schema_fingerprint.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint.schema import GOLDEN_RELPATH, current_record  # noqa: E402


def main() -> int:
    golden_path = REPO_ROOT / GOLDEN_RELPATH
    record = current_record()
    previous = None
    if golden_path.is_file():
        previous = json.loads(golden_path.read_text(encoding="utf-8"))
    golden_path.parent.mkdir(parents=True, exist_ok=True)
    with open(golden_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if previous is None:
        print(f"wrote {golden_path} (new): fingerprint {record['fingerprint'][:12]}…")
    elif previous == record:
        print(f"{golden_path} already up to date ({record['fingerprint'][:12]}…)")
    else:
        print(
            f"updated {golden_path}: "
            f"version {previous.get('cache_schema_version')} -> "
            f"{record['cache_schema_version']}, "
            f"fingerprint {str(previous.get('fingerprint'))[:12]}… -> "
            f"{record['fingerprint'][:12]}…"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
