#!/usr/bin/env python3
"""Compare per-benchmark IPC against a saved Figure-2 baseline sweep.

Re-runs the exact sweep described by a saved ``python -m repro sweep
--output`` JSON (same benchmarks, variants, micro-op budget and config
overrides) against the *current* simulator, then prints per-benchmark,
per-variant IPC and normalised-performance deltas.  The point is to make
memory/timing-model changes visible in CI job logs: a committed pre-change
baseline (see ``benchmarks/baselines/``) turns silent baseline drift into an
explicit, reviewable table.

This is an informational report — it never fails the build — unless
``--max-abs-delta`` is given, in which case any |IPC delta| above the bound
exits non-zero.

Usage:
    PYTHONPATH=src python scripts/fig2_delta.py \
        benchmarks/baselines/fig2_pre_fill_on_completion.json \
        [--workers N] [--cache-dir DIR] [--max-abs-delta PCT]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

from repro.simulation.engine import ExperimentEngine, SweepSpec


def _ipc_table(sweep_dict: dict) -> Dict[str, Dict[str, float]]:
    """benchmark -> variant -> IPC, from a serialised sweep's first cell."""
    table: Dict[str, Dict[str, float]] = {}
    comparison = sweep_dict["cells"][0]["comparison"]
    for entry in comparison["benchmarks"]:
        stats_by_variant = {}
        for variant, result in entry["results"].items():
            stats = result["stats"]
            cycles = stats["cycles"] or 1
            stats_by_variant[variant] = stats["committed_uops"] / cycles
        table[entry["benchmark"]] = stats_by_variant
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="saved sweep JSON to compare against")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument(
        "--max-abs-delta", type=float, default=None, metavar="PCT",
        help="fail when any |IPC delta| exceeds this percentage",
    )
    args = parser.parse_args()

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    spec = SweepSpec.from_dict(baseline["spec"])
    print(
        f"re-running baseline sweep: {len(spec.resolved_workloads())} benchmarks x "
        f"{len(spec.resolved_variants())} variants, {spec.num_uops} uops each"
    )
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    current = engine.run_sweep(spec).to_dict()

    old = _ipc_table(baseline)
    new = _ipc_table(current)
    variants = spec.resolved_variants()

    header = f"{'benchmark':<12}" + "".join(f"{v:>16}" for v in variants)
    print()
    print("IPC delta vs baseline (current - baseline, % of baseline)")
    print(header)
    print("-" * len(header))
    worst = 0.0
    for benchmark in old:
        row = f"{benchmark:<12}"
        for variant in variants:
            was = old[benchmark].get(variant)
            now = new.get(benchmark, {}).get(variant)
            if was is None or now is None or was == 0:
                row += f"{'n/a':>16}"
                continue
            delta_pct = 100.0 * (now - was) / was
            worst = max(worst, abs(delta_pct))
            row += f"{f'{now:.4f} ({delta_pct:+.1f}%)':>16}"
        print(row)
    print()
    print(f"largest |IPC delta|: {worst:.2f}%")

    if args.max_abs_delta is not None and worst > args.max_abs_delta:
        print(f"FAIL: exceeds --max-abs-delta {args.max_abs_delta}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
