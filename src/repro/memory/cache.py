"""Set-associative cache model with LRU replacement and write-back policy."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.serde import JSONSerializable


@dataclass(frozen=True)
class CacheConfig(JSONSerializable):
    """Geometry and latency of a single cache level.

    Attributes
    ----------
    name:
        Label used in statistics and energy reports (e.g. ``"L1D"``).
    size_bytes:
        Total capacity.
    associativity:
        Number of ways per set.
    line_bytes:
        Cache-line size; 64 bytes throughout the paper.
    latency:
        Access latency in core cycles (hit latency of this level).
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of associativity * line size"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass
class CacheStats:
    """Per-cache access statistics."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that miss."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative, write-back, write-allocate cache with LRU replacement.

    The cache tracks only tags and dirty bits (no data) — sufficient for a
    timing model.  Addresses are byte addresses; all methods operate on the
    line containing the address.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Geometry constants, denormalised out of the (frozen) config so the
        # per-access address split costs two integer ops, not two property
        # evaluations with a division each.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        # One ordered dict per set: tag -> dirty bit, ordered from LRU to MRU.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    def _index_and_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self._line_bytes
        return line % self._num_sets, line // self._num_sets

    def line_address(self, addr: int) -> int:
        """Return the base address of the line containing ``addr``."""
        return (addr // self._line_bytes) * self._line_bytes

    def contains(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        index, tag = self._index_and_tag(addr)
        return tag in self._sets.get(index, {})

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Probe the cache for ``addr``; update LRU and statistics.

        Returns True on a hit.  On a hit, a write marks the line dirty.  A
        miss does not allocate; callers decide whether to :meth:`fill`.
        """
        stats = self.stats
        stats.accesses += 1
        line = addr // self._line_bytes
        index = line % self._num_sets
        ways = self._sets.get(index)
        if ways is not None:
            tag = line // self._num_sets
            if tag in ways:
                stats.hits += 1
                dirty = ways.pop(tag)
                ways[tag] = dirty or is_write
                return True
        stats.misses += 1
        return False

    def fill(self, addr: int, dirty: bool = False, is_prefetch: bool = False) -> Optional[int]:
        """Install the line containing ``addr``.

        Returns the base address of a dirty line that must be written back, or
        ``None`` if no write-back is required.  Filling a line that is already
        resident only updates its LRU position and dirty bit.
        """
        index, tag = self._index_and_tag(addr)
        ways = self._sets.setdefault(index, OrderedDict())
        if tag in ways:
            existing = ways.pop(tag)
            ways[tag] = existing or dirty
            return None
        if is_prefetch:
            self.stats.prefetch_fills += 1
        writeback_addr: Optional[int] = None
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_line = victim_tag * self._num_sets + index
                writeback_addr = victim_line * self._line_bytes
        ways[tag] = dirty
        return writeback_addr

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr`` if present; return whether it was resident."""
        index, tag = self._index_and_tag(addr)
        ways = self._sets.get(index)
        if ways is not None and tag in ways:
            del ways[tag]
            return True
        return False

    def resident_lines(self) -> int:
        """Number of lines currently resident (useful for tests)."""
        return sum(len(ways) for ways in self._sets.values())

    def reset_stats(self) -> None:
        """Zero the access statistics without touching cache contents."""
        self.stats = CacheStats()
