"""Memory hierarchy substrate: caches, MSHRs, DRAM, and the composed hierarchy.

Models the three-level cache hierarchy plus DDR3-like DRAM from Table 1 of the
paper.  Timing is line-granular: an access returns the number of cycles until
its data is available, and outstanding misses are tracked so that later
accesses to the same line (demand hits under a runahead prefetch, for example)
observe only the *remaining* latency.
"""

from repro.memory.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.memory.dram import DRAMConfig, DRAMModel
from repro.memory.hierarchy import (
    AccessResult,
    HierarchyConfig,
    MemoryHierarchy,
    MemoryLevel,
    RequestKind,
)
from repro.memory.mshr import MSHREntry, MSHRFile
from repro.memory.prefetcher import NextLinePrefetcher, StridePrefetcher

__all__ = [
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "DRAMConfig",
    "DRAMModel",
    "AccessResult",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MemoryLevel",
    "RequestKind",
    "MSHREntry",
    "MSHRFile",
    "NextLinePrefetcher",
    "StridePrefetcher",
]
