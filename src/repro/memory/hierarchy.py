"""The composed memory hierarchy: L1I/L1D, private L2, shared L3, DRAM, MSHRs.

Geometry and latencies default to Table 1 of the paper.  The hierarchy is a
timing model at cache-line granularity built around *fill-on-completion
transactions*:

* an access returns an :class:`AccessResult` whose ``latency`` is the number
  of core cycles until the data is available;
* every miss — demand load or store, instruction fetch, hardware prefetch,
  runahead prefetch — goes through one shared miss path
  (:meth:`PrivateHierarchy._miss_path`) that walks L2 -> L3 -> DRAM, allocates
  an MSHR entry, and queues a fill transaction;
* cache lines are installed only when their fill's latency has elapsed
  (:meth:`PrivateHierarchy._expire_inflight` drains due transactions), so
  ``contains()`` and LRU state never observe the future;
* the MSHR file is the single book of record for outstanding lines: any
  access to a line already in flight (a demand load hitting under a runahead
  prefetch, two runahead loads to the same line, repeated fetches of one
  missing instruction line) merges with the MSHR entry and observes only the
  *remaining* latency, and the number of distinct lines in flight is bounded
  by the MSHR capacity, which bounds exploitable memory-level parallelism;
* dirty victims propagate level by level (L1D -> L2 -> L3 -> DRAM) when fills
  evict them, and the final DRAM writeback queues on the real cycle, so
  writeback traffic occupies banks and the shared bus like any other request.

Multi-core split
----------------
The hierarchy is composed of two halves joined by the
:class:`~repro.memory.port.MemoryPort` seam:

* :class:`PrivateHierarchy` — the per-core front half: L1I/L1D/L2, the MSHR
  file, the fill queue and the optional prefetcher.  It stamps its
  ``core_id`` on every shared-level request and (optionally) offsets all
  addresses by a per-core stride so co-running cores occupy disjoint
  address spaces.
* :class:`SharedUncore` — the back half every core shares: the L3, the DRAM
  model (banks, row buffers, read/write queues and the shared data bus) and
  per-core attribution counters answering *who* is using the shared
  resources.

:class:`MemoryHierarchy` is the degenerate single-core composition — a
private hierarchy wired to its own fresh one-core uncore — and runs the
exact same code as an N-core private half, which is what keeps the
single-core goldens bit-identical.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DRAMConfig, DRAMModel
from repro.memory.mshr import MSHRFile
from repro.memory.port import InstructionPort
from repro.memory.prefetcher import NextLinePrefetcher, StridePrefetcher
from repro.serde import JSONSerializable


class MemoryLevel(enum.Enum):
    """The level of the hierarchy that serviced an access."""

    L1I = "L1I"
    L1D = "L1D"
    L2 = "L2"
    L3 = "L3"
    DRAM = "DRAM"
    INFLIGHT = "inflight"


class RequestKind(enum.Enum):
    """What kind of request is walking the miss path.

    Every kind shares the same L2 -> L3 -> DRAM walk; the kind decides which
    L1 the fill targets, whether the line installs dirty, whether the MSHR
    demand reserve applies, and which statistics the walk contributes to.
    """

    LOAD = "load"
    STORE = "store"
    IFETCH = "ifetch"
    HW_PREFETCH = "hw_prefetch"
    RUNAHEAD_PREFETCH = "runahead_prefetch"

    @property
    def is_prefetch(self) -> bool:
        """Speculative kinds, subject to the MSHR demand reserve."""
        return self in (RequestKind.HW_PREFETCH, RequestKind.RUNAHEAD_PREFETCH)

    @property
    def is_ifetch(self) -> bool:
        """Instruction-side kinds, filling towards the L1I."""
        return self is RequestKind.IFETCH


class AccessResult:
    """Outcome of a memory access.

    A ``__slots__`` value class, immutable by convention: one used to be
    allocated per access, but L1 hits (~95% of accesses) now return a
    preallocated shared instance (see :attr:`PrivateHierarchy._l1d_hit`), so
    treat results as read-only.

    Attributes
    ----------
    latency:
        Core cycles until the data is available.
    level:
        Hierarchy level that services the request (``INFLIGHT`` when merged
        with an outstanding fill).
    is_long_latency:
        True when the request is (or merged with) an off-chip DRAM access —
        the class of loads that cause full-window stalls in the paper.
    retried:
        True when the access could not be started because the MSHR file was
        full; the caller must retry on a later cycle.  For instruction
        fetches ``latency`` then carries the estimated wait until an MSHR
        entry frees.
    """

    __slots__ = ("latency", "level", "is_long_latency", "retried")

    def __init__(
        self,
        latency: int,
        level: MemoryLevel,
        is_long_latency: bool = False,
        retried: bool = False,
    ) -> None:
        self.latency = latency
        self.level = level
        self.is_long_latency = is_long_latency
        self.retried = retried

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return (
            self.latency == other.latency
            and self.level is other.level
            and self.is_long_latency == other.is_long_latency
            and self.retried == other.retried
        )

    def __hash__(self) -> int:
        return hash((self.latency, self.level, self.is_long_latency, self.retried))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccessResult(latency={self.latency}, level={self.level!r}, "
            f"is_long_latency={self.is_long_latency}, retried={self.retried})"
        )


class _FillTransaction:
    """An in-flight line fill: where it installs, when, and how.

    ``levels`` lists the caches the line installs into, outermost first, so
    eviction (and any dirty-victim cascade) at an outer level happens before
    the inner install.  Only the innermost level receives the dirty bit
    (write-allocate stores dirty the L1D; outer copies stay clean).
    """

    __slots__ = ("completion", "line_addr", "levels", "dirty", "is_prefetch")

    def __init__(
        self,
        completion: int,
        line_addr: int,
        levels: Tuple[SetAssociativeCache, ...],
        dirty: bool = False,
        is_prefetch: bool = False,
    ) -> None:
        self.completion = completion
        self.line_addr = line_addr
        self.levels = levels
        self.dirty = dirty
        self.is_prefetch = is_prefetch


@dataclass
class HierarchyConfig(JSONSerializable):
    """Configuration of the full memory hierarchy (defaults follow Table 1)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 4, latency=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8, latency=8)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 1024 * 1024, 16, latency=30)
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    mshr_entries: int = 32
    #: MSHR entries that prefetches (runahead loads included) may never take,
    #: so speculative traffic cannot starve demand misses.
    mshr_demand_reserve: int = 4
    #: Optional hardware prefetcher trained on L1D demand accesses ("none",
    #: "nextline" or "stride").  The paper's baseline uses none.
    prefetcher: str = "none"


@dataclass
class HierarchyStats:
    """Aggregate statistics across one core's private hierarchy."""

    data_accesses: int = 0
    instruction_accesses: int = 0
    prefetch_accesses: int = 0
    long_latency_accesses: int = 0
    mshr_stalls: int = 0
    #: Lines installed into some cache level by a completed fill transaction
    #: (or a writeback landing from the level above).
    lines_installed: int = 0
    #: Dirty victims transferred to the next level down (the last hop of the
    #: chain is a DRAM write, also visible in ``DRAMStats.writes``).
    writebacks: int = 0


class SharedUncore:
    """The shared back half of the hierarchy: L3 + DRAM + the data bus.

    One instance is shared by every core of a multi-core simulation (a
    single-core run owns a degenerate one-core instance).  Besides the L3 and
    the DRAM model themselves, the uncore keeps *per-core attribution*: for
    each requesting core, how many L3 hits/misses and DRAM reads/writes it
    generated, how many cycles its requests sat in the DRAM queues, and how
    long its transfers occupied the shared data bus.  The attribution is
    bookkeeping only — it never feeds back into timing — so the degenerate
    single-core uncore stays bit-identical to the pre-split hierarchy.
    """

    __slots__ = (
        "config",
        "l3",
        "dram",
        "num_cores",
        "l3_hits",
        "l3_misses",
        "dram_reads",
        "dram_writes",
        "dram_queue_delay_cycles",
        "bus_busy_cycles",
    )

    def __init__(
        self, config: Optional[HierarchyConfig] = None, num_cores: int = 1
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.config = config or HierarchyConfig()
        self.l3 = SetAssociativeCache(self.config.l3)
        self.dram = DRAMModel(self.config.dram)
        self.num_cores = num_cores
        #: Per-core counters, indexed by ``core_id``.
        self.l3_hits = [0] * num_cores
        self.l3_misses = [0] * num_cores
        self.dram_reads = [0] * num_cores
        self.dram_writes = [0] * num_cores
        #: Cycles each core's DRAM requests spent waiting for a busy bank or
        #: the shared bus — the contention a co-runner inflicts.
        self.dram_queue_delay_cycles = [0] * num_cores
        #: Cycles each core's transfers occupied the shared data bus.
        self.bus_busy_cycles = [0] * num_cores

    def read(self, addr: int, cycle: int, core_id: int) -> int:
        """A demand/prefetch fill reaching DRAM; returns its latency."""
        dram = self.dram
        latency = dram.access(addr, cycle, is_write=False)
        self.dram_reads[core_id] += 1
        self.dram_queue_delay_cycles[core_id] += dram.last_queue_delay
        self.bus_busy_cycles[core_id] += dram.last_bus_cycles
        return latency

    def write(self, addr: int, cycle: int, core_id: int) -> int:
        """A posted writeback reaching DRAM; returns its (unwaited) latency."""
        dram = self.dram
        latency = dram.access(addr, cycle, is_write=True)
        self.dram_writes[core_id] += 1
        self.dram_queue_delay_cycles[core_id] += dram.last_queue_delay
        self.bus_busy_cycles[core_id] += dram.last_bus_cycles
        return latency


class PrivateHierarchy:
    """One core's private front half, backed by a (possibly shared) uncore.

    Owns the L1I/L1D/L2, the MSHR file, the fill queue and the optional
    prefetcher; the L3 and DRAM live in :attr:`uncore` and are reached
    through it (the :attr:`l3`/:attr:`dram` properties exist for reports and
    tests).  Implements the :class:`~repro.memory.port.MemoryPort` protocol —
    ``access_data``/``access_instruction``/``can_accept``/
    ``earliest_completion``/``drain`` — which is the only surface the core
    drives.

    ``addr_offset`` relocates this core's entire address space (instructions
    and data) by a fixed stride, so heterogeneous co-runners never alias in
    the shared L3 or DRAM banks unless the experiment wants them to; the
    default of 0 is the bit-identical single-core path.
    """

    __slots__ = (
        "config",
        "uncore",
        "core_id",
        "l1i",
        "l1d",
        "l2",
        "mshrs",
        "stats",
        "prefetcher",
        "_l1d_hit",
        "_l1i_hit",
        "_fill_queue",
        "_fill_seq",
        "_addr_offset",
        "fill_listener",
        "writeback_listener",
    )

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        uncore: Optional[SharedUncore] = None,
        core_id: int = 0,
        addr_offset: int = 0,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.uncore = uncore if uncore is not None else SharedUncore(self.config)
        if not 0 <= core_id < self.uncore.num_cores:
            raise ValueError(
                f"core_id {core_id} out of range for a "
                f"{self.uncore.num_cores}-core uncore"
            )
        self.core_id = core_id
        self.l1i = SetAssociativeCache(self.config.l1i)
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.mshrs = MSHRFile(self.config.mshr_entries, self.config.l1d.line_bytes)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.stats = HierarchyStats()
        # Shared, immutable hit results: an L1 hit is ~95% of traffic and its
        # outcome is a constant of the configuration, so hits allocate nothing.
        self._l1d_hit = AccessResult(self.config.l1d.latency, MemoryLevel.L1D)
        self._l1i_hit = AccessResult(self.config.l1i.latency, MemoryLevel.L1I)
        # Due-date ordered fill transactions: (completion, seq, transaction).
        # This is transaction *payload* (which caches to touch); the MSHR file
        # alone answers "is this line outstanding?".
        self._fill_queue: List[Tuple[int, int, _FillTransaction]] = []
        self._fill_seq = 0
        self._addr_offset = addr_offset
        #: Optional observers called as (level_name, line_addr, cycle) when a
        #: line installs / a dirty victim moves down; the core bridges these
        #: to ``on_fill`` / ``on_writeback`` probes.
        self.fill_listener: Optional[Callable[[str, int, int], None]] = None
        self.writeback_listener: Optional[Callable[[str, int, int], None]] = None
        if self.config.prefetcher == "nextline":
            self.prefetcher = NextLinePrefetcher(self.config.l1d.line_bytes)
        elif self.config.prefetcher == "stride":
            self.prefetcher = StridePrefetcher(self.config.l1d.line_bytes)
        elif self.config.prefetcher == "none":
            self.prefetcher = None
        else:
            raise ValueError(f"unknown prefetcher kind {self.config.prefetcher!r}")

    # ------------------------------------------------------------------ utils

    @property
    def l3(self) -> SetAssociativeCache:
        """The (shared) last-level cache, owned by the uncore."""
        return self.uncore.l3

    @property
    def dram(self) -> DRAMModel:
        """The (shared) DRAM model, owned by the uncore."""
        return self.uncore.dram

    def instruction_port(self) -> InstructionPort:
        """The narrowed instruction-side port handed to the front end."""
        return InstructionPort(self)

    def _line_addr(self, addr: int) -> int:
        return self.l1d.line_address(addr)

    def _next_level(self, cache: SetAssociativeCache) -> Optional[SetAssociativeCache]:
        if cache is self.l1d or cache is self.l1i:
            return self.l2
        if cache is self.l2:
            return self.uncore.l3
        return None

    def _expire_inflight(self, cycle: int) -> None:
        """Drain fill transactions whose latency has elapsed by ``cycle``.

        Each drained transaction installs its line into its target caches *at
        its completion cycle* — never earlier — evicting victims (and
        cascading their writebacks) as it lands.  The matching MSHR entries
        expire lazily inside the MSHR file at the same completion cycles.
        """
        fill_queue = self._fill_queue
        if not fill_queue or fill_queue[0][0] > cycle:
            return
        while fill_queue and fill_queue[0][0] <= cycle:
            _, _, txn = heapq.heappop(fill_queue)
            innermost = txn.levels[-1]
            for cache in txn.levels:
                self._install(
                    cache,
                    txn.line_addr,
                    txn.completion,
                    dirty=txn.dirty and cache is innermost,
                    # prefetch_fills keeps its L1-only meaning: outer levels
                    # install the line regardless of what requested it.
                    is_prefetch=txn.is_prefetch and cache is innermost,
                )

    def drain(self, cycle: int) -> None:
        """Public hook to settle all fills due by ``cycle`` (tests, probes)."""
        self._expire_inflight(cycle)

    def inflight_lines(self, cycle: int) -> int:
        """Number of line fills still outstanding at ``cycle``."""
        self._expire_inflight(cycle)
        return self.mshrs.occupancy(cycle)

    def can_accept(self, cycle: int) -> bool:
        """Whether a new demand miss could take an MSHR entry at ``cycle``."""
        self._expire_inflight(cycle)
        return self.mshrs.occupancy(cycle) < self.config.mshr_entries

    def earliest_completion(self, cycle: int) -> Optional[int]:
        """Completion cycle of the earliest outstanding fill, or ``None``.

        The port-level wake-up candidate for a core blocked on memory; this
        is the public face of the MSHR file's book of record.
        """
        return self.mshrs.earliest_completion(cycle)

    # ----------------------------------------------------------------- access

    def access_data(
        self,
        addr: int,
        cycle: int,
        is_write: bool = False,
        is_prefetch: bool = False,
        pc: int = 0,
    ) -> AccessResult:
        """Access the data hierarchy for the line containing ``addr``.

        Writes model committed stores (write-allocate, write-back); they mark
        the L1D line dirty (a store merging with an in-flight fill dirties the
        pending fill, so the line still installs dirty).  Prefetch accesses
        behave like loads but are dropped (``retried=True``) rather than
        stalled when the MSHR file reaches the prefetch limit.
        """
        if self._addr_offset:
            addr += self._addr_offset
            pc += self._addr_offset
        stats = self.stats
        stats.data_accesses += 1
        if is_prefetch:
            stats.prefetch_accesses += 1
        self._expire_inflight(cycle)

        if self.mshrs._inflight:
            entry = self.mshrs.merge(addr, cycle)
            if entry is not None:
                if is_write:
                    self._mark_pending_dirty(addr)
                remaining = max(entry.completion_cycle - cycle, 1)
                latency = max(remaining, self.config.l1d.latency)
                if entry.is_dram:
                    stats.long_latency_accesses += 1
                return AccessResult(
                    latency, MemoryLevel.INFLIGHT, is_long_latency=entry.is_dram
                )

        if self.l1d.lookup(addr, is_write=is_write):
            if self.prefetcher is not None:
                self._train_prefetcher(pc, addr, cycle)
            return self._l1d_hit

        if is_prefetch:
            kind = RequestKind.RUNAHEAD_PREFETCH
        elif is_write:
            kind = RequestKind.STORE
        else:
            kind = RequestKind.LOAD
        result = self._miss_path(addr, cycle, kind)
        if self.prefetcher is not None and not result.retried:
            self._train_prefetcher(pc, addr, cycle)
        return result

    def access_instruction(self, pc: int, cycle: int) -> AccessResult:
        """Access the instruction side of the hierarchy for the line containing ``pc``.

        Instruction fetches use the same unified miss path as data accesses:
        repeated fetches of one missing line merge with its in-flight fill
        (observing only the remaining latency) instead of each paying a full
        DRAM access, and I-side misses take MSHR entries like D-side ones.
        """
        if self._addr_offset:
            pc += self._addr_offset
        self.stats.instruction_accesses += 1
        self._expire_inflight(cycle)
        if self.mshrs._inflight:
            entry = self.mshrs.merge(pc, cycle)
            if entry is not None:
                remaining = max(entry.completion_cycle - cycle, 1)
                latency = max(remaining, self.config.l1i.latency)
                return AccessResult(
                    latency, MemoryLevel.INFLIGHT, is_long_latency=entry.is_dram
                )
        if self.l1i.lookup(pc):
            return self._l1i_hit
        return self._miss_path(pc, cycle, RequestKind.IFETCH)

    # -------------------------------------------------------------- miss path

    def _miss_path(self, addr: int, cycle: int, kind: RequestKind) -> AccessResult:
        """The one shared L2 -> L3 -> DRAM walk behind every L1 miss.

        Allocates the transaction's MSHR entry (the admission decision — the
        ``allocate`` return value — is what rejects requests, enforcing the
        demand reserve for both hardware and runahead prefetches), walks the
        outer levels, and queues a fill transaction that installs the line
        when its latency elapses.  The shared levels are reached through the
        uncore, which attributes every L3 probe and DRAM request to this
        hierarchy's ``core_id``.
        """
        l1 = self.l1i if kind.is_ifetch else self.l1d
        limit: Optional[int] = None
        if kind.is_prefetch:
            limit = max(1, self.config.mshr_entries - self.config.mshr_demand_reserve)
        # Provisional allocation first: a rejected request must not perturb
        # DRAM bank or row-buffer state.
        if not self.mshrs.allocate(addr, cycle + 1, cycle, limit=limit):
            self.stats.mshr_stalls += 1
            if kind.is_ifetch:
                # The front end cannot replay a fetch packet out of order; it
                # waits for the next MSHR entry to free and retries the line.
                free_at = self.mshrs.earliest_completion(cycle)
                wait = max(free_at - cycle, 1) if free_at is not None else 1
                return AccessResult(wait, MemoryLevel.L1I, retried=True)
            return AccessResult(0, MemoryLevel.L1D, retried=True)

        uncore = self.uncore
        core_id = self.core_id
        latency = l1.config.latency
        if self.l2.lookup(addr):
            latency += self.config.l2.latency
            level = MemoryLevel.L2
            targets: Tuple[SetAssociativeCache, ...] = (l1,)
            is_dram = False
        elif uncore.l3.lookup(addr):
            uncore.l3_hits[core_id] += 1
            latency += self.config.l2.latency + self.config.l3.latency
            level = MemoryLevel.L3
            targets = (self.l2, l1)
            is_dram = False
        else:
            uncore.l3_misses[core_id] += 1
            dram_latency = uncore.read(addr, cycle, core_id)
            latency += self.config.l2.latency + self.config.l3.latency + dram_latency
            level = MemoryLevel.DRAM
            targets = (uncore.l3, self.l2, l1)
            is_dram = True
            if kind in (RequestKind.LOAD, RequestKind.STORE, RequestKind.RUNAHEAD_PREFETCH):
                self.stats.long_latency_accesses += 1

        completion = cycle + latency
        self.mshrs.update(addr, completion, is_dram)
        self._fill_seq += 1
        heapq.heappush(
            self._fill_queue,
            (
                completion,
                self._fill_seq,
                _FillTransaction(
                    completion=completion,
                    line_addr=self._line_addr(addr),
                    levels=targets,
                    dirty=kind is RequestKind.STORE,
                    is_prefetch=kind.is_prefetch,
                ),
            ),
        )
        return AccessResult(latency, level, is_long_latency=is_dram)

    def _mark_pending_dirty(self, addr: int) -> None:
        """A store merged with an in-flight fill: the line must install dirty.

        If the covering fill targets the L1I (the store merged with an
        instruction fetch to the same line), the returning line additionally
        installs into the L1D, which becomes the innermost level and receives
        the dirty bit — an I-cache can never hold dirty data.
        """
        line_addr = self._line_addr(addr)
        for _, _, txn in self._fill_queue:
            if txn.line_addr == line_addr:
                if txn.levels[-1] is self.l1i:
                    txn.levels = txn.levels + (self.l1d,)
                txn.dirty = True
                return

    # ------------------------------------------------------------------ fills

    def _install(
        self,
        cache: SetAssociativeCache,
        addr: int,
        cycle: int,
        dirty: bool = False,
        is_prefetch: bool = False,
    ) -> None:
        """Install a line into ``cache``, propagating any dirty victim down.

        A dirty victim is written back into the next level (marked dirty
        there), which may evict its own dirty victim, cascading until a DRAM
        write issues at the real ``cycle`` — so writeback traffic is neither
        dropped nor timestamp-poisoned.
        """
        victim = cache.fill(addr, dirty=dirty, is_prefetch=is_prefetch)
        self.stats.lines_installed += 1
        if self.fill_listener is not None:
            self.fill_listener(cache.config.name, self._line_addr(addr), cycle)
        if victim is None:
            return
        self.stats.writebacks += 1
        if self.writeback_listener is not None:
            self.writeback_listener(cache.config.name, victim, cycle)
        below = self._next_level(cache)
        if below is None:
            # L3 victim: a posted DRAM write.  Nobody waits on its latency,
            # but it queues at the real cycle and occupies a bank and the
            # shared bus, delaying subsequent fills.
            self.uncore.write(victim, cycle, self.core_id)
        else:
            self._install(below, victim, cycle, dirty=True)

    def _train_prefetcher(self, pc: int, addr: int, cycle: int) -> None:
        if self.prefetcher is None:
            return
        for target in self.prefetcher.train(pc, addr):
            if self.mshrs.lookup(target, cycle) is not None or self.l1d.contains(target):
                self.prefetcher.stats.prefetches_dropped += 1
                continue
            result = self._miss_path(target, cycle, RequestKind.HW_PREFETCH)
            if result.retried:
                self.prefetcher.stats.prefetches_dropped += 1
                break

    def warm(self, addresses, dirty: bool = False) -> None:
        """Pre-install lines in all cache levels (useful for tests and warm-up).

        Warming bypasses fill timing — it models state left behind before the
        measured window — but victims still cascade properly.
        """
        offset = self._addr_offset
        for addr in addresses:
            if offset:
                addr += offset
            self._install(self.uncore.l3, addr, 0)
            self._install(self.l2, addr, 0)
            self._install(self.l1d, addr, 0, dirty=dirty)


class MemoryHierarchy(PrivateHierarchy):
    """Single-core composition: a private hierarchy with its own 1-core uncore.

    This is the pre-split public entry point and runs exactly the code an
    N-core :class:`PrivateHierarchy` runs — the degenerate uncore is what
    keeps the committed single-core goldens bit-identical.
    """

    __slots__ = ()

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        super().__init__(config=config)
