"""The composed memory hierarchy: L1I/L1D, private L2, shared L3, DRAM, MSHRs.

Geometry and latencies default to Table 1 of the paper.  The hierarchy is a
timing model at cache-line granularity:

* an access returns an :class:`AccessResult` whose ``latency`` is the number
  of core cycles until the data is available;
* outstanding fills are tracked per line, so any access to a line already in
  flight (a demand load hitting under a runahead prefetch, or two runahead
  loads to the same line) observes only the *remaining* latency;
* the number of distinct lines in flight is bounded by the MSHR file, which
  bounds exploitable memory-level parallelism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DRAMConfig, DRAMModel
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import NextLinePrefetcher, StridePrefetcher
from repro.serde import JSONSerializable


class MemoryLevel(enum.Enum):
    """The level of the hierarchy that serviced an access."""

    L1I = "L1I"
    L1D = "L1D"
    L2 = "L2"
    L3 = "L3"
    DRAM = "DRAM"
    INFLIGHT = "inflight"


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a memory access.

    Attributes
    ----------
    latency:
        Core cycles until the data is available.
    level:
        Hierarchy level that services the request (``INFLIGHT`` when merged
        with an outstanding fill).
    is_long_latency:
        True when the request is (or merged with) an off-chip DRAM access —
        the class of loads that cause full-window stalls in the paper.
    retried:
        True when the access could not be started because the MSHR file was
        full; the caller must retry on a later cycle.
    """

    latency: int
    level: MemoryLevel
    is_long_latency: bool = False
    retried: bool = False


@dataclass
class HierarchyConfig(JSONSerializable):
    """Configuration of the full memory hierarchy (defaults follow Table 1)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 4, latency=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 8, latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * 1024, 8, latency=8)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 1024 * 1024, 16, latency=30)
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    mshr_entries: int = 32
    #: MSHR entries that prefetches (runahead loads included) may never take,
    #: so speculative traffic cannot starve demand misses.
    mshr_demand_reserve: int = 4
    #: Optional hardware prefetcher trained on L1D demand accesses ("none",
    #: "nextline" or "stride").  The paper's baseline uses none.
    prefetcher: str = "none"


@dataclass
class HierarchyStats:
    """Aggregate statistics across the hierarchy."""

    data_accesses: int = 0
    instruction_accesses: int = 0
    prefetch_accesses: int = 0
    long_latency_accesses: int = 0
    mshr_stalls: int = 0


class MemoryHierarchy:
    """Three-level cache hierarchy with DRAM backing store and MSHR tracking."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = SetAssociativeCache(self.config.l1i)
        self.l1d = SetAssociativeCache(self.config.l1d)
        self.l2 = SetAssociativeCache(self.config.l2)
        self.l3 = SetAssociativeCache(self.config.l3)
        self.dram = DRAMModel(self.config.dram)
        self.mshrs = MSHRFile(self.config.mshr_entries, self.config.l1d.line_bytes)
        self.stats = HierarchyStats()
        # line number -> (completion cycle, was a DRAM access)
        self._inflight: Dict[int, Tuple[int, bool]] = {}
        if self.config.prefetcher == "nextline":
            self.prefetcher = NextLinePrefetcher(self.config.l1d.line_bytes)
        elif self.config.prefetcher == "stride":
            self.prefetcher = StridePrefetcher(self.config.l1d.line_bytes)
        elif self.config.prefetcher == "none":
            self.prefetcher = None
        else:
            raise ValueError(f"unknown prefetcher kind {self.config.prefetcher!r}")

    # ------------------------------------------------------------------ utils

    def _line(self, addr: int) -> int:
        return addr // self.config.l1d.line_bytes

    def _expire_inflight(self, cycle: int) -> None:
        done = [line for line, (completion, _) in self._inflight.items() if completion <= cycle]
        for line in done:
            del self._inflight[line]

    def inflight_lines(self, cycle: int) -> int:
        """Number of line fills still outstanding at ``cycle``."""
        self._expire_inflight(cycle)
        return len(self._inflight)

    # ----------------------------------------------------------------- access

    def access_data(
        self,
        addr: int,
        cycle: int,
        is_write: bool = False,
        is_prefetch: bool = False,
        pc: int = 0,
    ) -> AccessResult:
        """Access the data hierarchy for the line containing ``addr``.

        Writes model committed stores (write-allocate, write-back); they mark
        the L1D line dirty.  Prefetch accesses behave like loads but are
        dropped (``retried=True``) rather than stalled when the MSHR file is
        full.
        """
        self.stats.data_accesses += 1
        if is_prefetch:
            self.stats.prefetch_accesses += 1
        self._expire_inflight(cycle)
        line = self._line(addr)

        inflight = self._inflight.get(line)
        if inflight is not None:
            completion, was_dram = inflight
            remaining = max(completion - cycle, 1)
            latency = max(remaining, self.config.l1d.latency)
            if was_dram:
                self.stats.long_latency_accesses += 1
            return AccessResult(latency, MemoryLevel.INFLIGHT, is_long_latency=was_dram)

        if self.l1d.lookup(addr, is_write=is_write):
            self._train_prefetcher(pc, addr, cycle)
            return AccessResult(self.config.l1d.latency, MemoryLevel.L1D)

        # L1D miss: need an MSHR for the fill.  Prefetches may not take the
        # last few entries, which are reserved for demand misses.
        limit = self.config.mshr_entries
        if is_prefetch:
            limit = max(1, limit - self.config.mshr_demand_reserve)
        if self.mshrs.occupancy(cycle) >= limit:
            self.stats.mshr_stalls += 1
            return AccessResult(0, MemoryLevel.L1D, retried=True)

        latency = self.config.l1d.latency
        if self.l2.lookup(addr):
            latency += self.config.l2.latency
            level = MemoryLevel.L2
        elif self.l3.lookup(addr):
            latency += self.config.l2.latency + self.config.l3.latency
            level = MemoryLevel.L3
            self._fill(self.l2, addr)
        else:
            dram_latency = self.dram.access(addr, cycle, is_write=False)
            latency += self.config.l2.latency + self.config.l3.latency + dram_latency
            level = MemoryLevel.DRAM
            self.stats.long_latency_accesses += 1
            self._fill(self.l3, addr)
            self._fill(self.l2, addr)

        self._fill(self.l1d, addr, dirty=is_write, is_prefetch=is_prefetch)
        completion = cycle + latency
        self._inflight[line] = (completion, level is MemoryLevel.DRAM)
        self.mshrs.allocate(addr, completion, cycle)
        self._train_prefetcher(pc, addr, cycle)
        return AccessResult(latency, level, is_long_latency=level is MemoryLevel.DRAM)

    def access_instruction(self, pc: int, cycle: int) -> AccessResult:
        """Access the instruction side of the hierarchy for the line containing ``pc``."""
        self.stats.instruction_accesses += 1
        if self.l1i.lookup(pc):
            return AccessResult(self.config.l1i.latency, MemoryLevel.L1I)
        latency = self.config.l1i.latency
        if self.l2.lookup(pc):
            latency += self.config.l2.latency
            level = MemoryLevel.L2
        elif self.l3.lookup(pc):
            latency += self.config.l2.latency + self.config.l3.latency
            level = MemoryLevel.L3
            self._fill(self.l2, pc)
        else:
            latency += (
                self.config.l2.latency
                + self.config.l3.latency
                + self.dram.access(pc, cycle, is_write=False)
            )
            level = MemoryLevel.DRAM
            self._fill(self.l3, pc)
            self._fill(self.l2, pc)
        self._fill(self.l1i, pc)
        return AccessResult(latency, level)

    # ------------------------------------------------------------------ fills

    def _fill(self, cache: SetAssociativeCache, addr: int, dirty: bool = False,
              is_prefetch: bool = False) -> None:
        writeback = cache.fill(addr, dirty=dirty, is_prefetch=is_prefetch)
        if writeback is not None and cache is self.l3:
            # Dirty L3 victims go to DRAM; timing is fire-and-forget, but the
            # write occupies a bank for bandwidth/energy accounting.
            self.dram.access(writeback, 0, is_write=True)

    def _train_prefetcher(self, pc: int, addr: int, cycle: int) -> None:
        if self.prefetcher is None:
            return
        for target in self.prefetcher.train(pc, addr):
            line = self._line(target)
            if line in self._inflight or self.l1d.contains(target):
                continue
            if self.mshrs.is_full(cycle):
                break
            result_latency = self.config.l1d.latency
            if self.l2.lookup(target):
                result_latency += self.config.l2.latency
                was_dram = False
            elif self.l3.lookup(target):
                result_latency += self.config.l2.latency + self.config.l3.latency
                self._fill(self.l2, target)
                was_dram = False
            else:
                result_latency += (
                    self.config.l2.latency
                    + self.config.l3.latency
                    + self.dram.access(target, cycle)
                )
                self._fill(self.l3, target)
                self._fill(self.l2, target)
                was_dram = True
            self._fill(self.l1d, target, is_prefetch=True)
            completion = cycle + result_latency
            self._inflight[line] = (completion, was_dram)
            self.mshrs.allocate(target, completion, cycle)

    def warm(self, addresses, dirty: bool = False) -> None:
        """Pre-install lines in all cache levels (useful for tests and warm-up)."""
        for addr in addresses:
            self._fill(self.l3, addr)
            self._fill(self.l2, addr)
            self._fill(self.l1d, addr, dirty=dirty)
