"""DDR3-like main-memory timing model.

Models the DRAM parameters of Table 1: DDR3-1600 (800 MHz bus), 4 ranks,
32 banks, 4 KB pages (row-buffer), 64-bit bus, tRP-tCL-tRCD = 11-11-11 memory
cycles.  The model converts memory-clock timings to core cycles (2.66 GHz core)
and accounts for row-buffer hits/misses, per-bank service occupancy, and a
shared data bus, which is sufficient to capture the latency and bandwidth
effects the paper's evaluation depends on (a few hundred core cycles per LLC
miss, higher when banks or the bus conflict).

Reads and writes are tracked in separate queues with separate latency
accounting: reads are demand/prefetch fills whose latency the core observes,
writes are posted cache writebacks whose *latency* nobody waits on but whose
bank and bus occupancy delays subsequent reads — so writeback traffic has a
real bandwidth cost instead of being free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.serde import JSONSerializable


@dataclass(frozen=True)
class DRAMConfig(JSONSerializable):
    """DRAM organisation and timing parameters (Table 1)."""

    core_frequency_ghz: float = 2.66
    bus_frequency_mhz: float = 800.0
    num_ranks: int = 4
    num_banks: int = 32
    page_bytes: int = 4096
    bus_bytes: int = 8
    trp: int = 11
    tcl: int = 11
    trcd: int = 11
    #: Fixed controller + interconnect overhead added to every request, in core cycles.
    controller_latency_cycles: int = 40
    #: Data-burst occupancy of a 64-byte line transfer, in memory cycles.
    burst_cycles: int = 4

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_ranks <= 0:
            raise ValueError("bank/rank counts must be positive")
        if self.core_frequency_ghz <= 0 or self.bus_frequency_mhz <= 0:
            raise ValueError("frequencies must be positive")

    @property
    def core_cycles_per_memory_cycle(self) -> float:
        """Ratio between core and memory-bus clock periods."""
        return (self.core_frequency_ghz * 1000.0) / self.bus_frequency_mhz

    def to_core_cycles(self, memory_cycles: float) -> int:
        """Convert a number of memory-bus cycles to core cycles (rounded up)."""
        value = memory_cycles * self.core_cycles_per_memory_cycle
        return int(value) + (0 if value == int(value) else 1)


@dataclass
class DRAMStats:
    """Access statistics for the DRAM model, split by direction."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    read_latency_cycles: int = 0
    write_latency_cycles: int = 0
    read_queue_peak: int = 0
    write_queue_peak: int = 0

    @property
    def accesses(self) -> int:
        """Total number of DRAM requests."""
        return self.reads + self.writes

    @property
    def total_latency_cycles(self) -> int:
        """Summed latency over reads and writes."""
        return self.read_latency_cycles + self.write_latency_cycles

    @property
    def average_latency(self) -> float:
        """Average request latency in core cycles (reads and writes)."""
        return self.total_latency_cycles / self.accesses if self.accesses else 0.0

    @property
    def average_read_latency(self) -> float:
        """Average read (fill) latency in core cycles."""
        return self.read_latency_cycles / self.reads if self.reads else 0.0

    @property
    def average_write_latency(self) -> float:
        """Average posted-write (writeback) latency in core cycles."""
        return self.write_latency_cycles / self.writes if self.writes else 0.0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit in an open row buffer."""
        return self.row_hits / self.accesses if self.accesses else 0.0


class DRAMModel:
    """Bank- and bus-aware DRAM latency model.

    ``access`` returns the number of core cycles from request issue until the
    critical word is available at the memory controller.  Each bank serialises
    its requests, and every data transfer additionally occupies the single
    shared data bus for its burst duration: a request arriving while its bank
    or the bus is busy waits for both to free up first.  Posted writes queue
    and occupy resources like reads do (delaying later reads that hit the same
    bank or the bus) but nobody waits on their returned latency.
    """

    def __init__(self, config: DRAMConfig = DRAMConfig()) -> None:
        self.config = config
        self.stats = DRAMStats()
        self._open_row: Dict[int, int] = {}
        self._bank_free_at: Dict[int, int] = {}
        self._bus_free_at: int = 0
        # Completion cycles of in-flight requests, per direction; pruned lazily
        # to measure queue depth.
        self._read_queue: List[int] = []
        self._write_queue: List[int] = []
        #: Breakdown of the most recent ``access``, for per-core attribution
        #: by the uncore: cycles the request waited on a busy bank/bus, and
        #: cycles its transfer occupied the shared data bus.  Bookkeeping
        #: only — reading them never perturbs timing.
        self.last_queue_delay: int = 0
        self.last_bus_cycles: int = 0

    def _bank_and_row(self, addr: int) -> tuple:
        page = addr // self.config.page_bytes
        # XOR-fold higher page bits into the bank index, as real memory
        # controllers do, so that regularly-strided streams do not all alias
        # onto the same bank.
        bank = (page ^ (page // self.config.num_banks)) % self.config.num_banks
        row = page // self.config.num_banks
        return bank, row

    def access(self, addr: int, cycle: int, is_write: bool = False) -> int:
        """Issue a request at ``cycle``; return its latency in core cycles."""
        config = self.config
        bank, row = self._bank_and_row(addr)

        if self._open_row.get(bank) == row:
            self.stats.row_hits += 1
            array_cycles = config.tcl
            # Back-to-back accesses to an open row stream at the burst rate;
            # only the data transfer occupies the bank.
            occupancy_cycles = config.burst_cycles
        else:
            self.stats.row_misses += 1
            array_cycles = config.trp + config.trcd + config.tcl
            # A row miss keeps the bank busy for precharge + activate + burst.
            occupancy_cycles = config.trp + config.trcd + config.burst_cycles
            self._open_row[bank] = row

        access_cycles = config.to_core_cycles(array_cycles + config.burst_cycles)
        service_cycles = config.to_core_cycles(occupancy_cycles)
        bus_cycles = config.to_core_cycles(config.burst_cycles)

        start = max(cycle, self._bank_free_at.get(bank, 0), self._bus_free_at)
        queue_delay = start - cycle
        self._bank_free_at[bank] = start + service_cycles
        self._bus_free_at = start + bus_cycles
        self.last_queue_delay = queue_delay
        self.last_bus_cycles = bus_cycles

        latency = config.controller_latency_cycles + queue_delay + access_cycles
        completion = cycle + latency
        queue = self._write_queue if is_write else self._read_queue
        queue[:] = [done for done in queue if done > cycle]
        queue.append(completion)
        if is_write:
            self.stats.writes += 1
            self.stats.write_latency_cycles += latency
            self.stats.write_queue_peak = max(self.stats.write_queue_peak, len(queue))
        else:
            self.stats.reads += 1
            self.stats.read_latency_cycles += latency
            self.stats.read_queue_peak = max(self.stats.read_queue_peak, len(queue))
        return latency

    def reset(self) -> None:
        """Clear open-row, bank-occupancy and queue state and statistics."""
        self.stats = DRAMStats()
        self._open_row.clear()
        self._bank_free_at.clear()
        self._bus_free_at = 0
        self._read_queue.clear()
        self._write_queue.clear()
        self.last_queue_delay = 0
        self.last_bus_cycles = 0
