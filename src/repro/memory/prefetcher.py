"""Hardware prefetchers.

The paper's baseline core does not include a hardware prefetcher (runahead
execution itself plays that role), but a next-line and a stride prefetcher are
provided so that ablation experiments can compare runahead techniques against
and alongside conventional prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PrefetcherStats:
    """Counters describing prefetcher behaviour."""

    trainings: int = 0
    prefetches_issued: int = 0
    #: Emitted targets the hierarchy did not start a fill for: the line was
    #: already resident or in flight, or the MSHR file was at the prefetch
    #: limit (demand-reserved entries are never available to prefetches).
    prefetches_dropped: int = 0


class NextLinePrefetcher:
    """Prefetch the ``degree`` lines following every demand access."""

    def __init__(self, line_bytes: int = 64, degree: int = 1) -> None:
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self.line_bytes = line_bytes
        self.degree = degree
        self.stats = PrefetcherStats()

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe a demand access; return addresses to prefetch."""
        self.stats.trainings += 1
        base = (addr // self.line_bytes) * self.line_bytes
        targets = [base + (i + 1) * self.line_bytes for i in range(self.degree)]
        self.stats.prefetches_issued += len(targets)
        return targets


class StridePrefetcher:
    """Classic per-PC stride prefetcher with a small reference-prediction table."""

    def __init__(
        self,
        line_bytes: int = 64,
        table_entries: int = 64,
        degree: int = 2,
        confidence_threshold: int = 2,
    ) -> None:
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        self.line_bytes = line_bytes
        self.table_entries = table_entries
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.stats = PrefetcherStats()
        # pc -> (last_addr, stride, confidence)
        self._table: Dict[int, List[int]] = {}
        self._lru: List[int] = []

    def _touch(self, pc: int) -> None:
        if pc in self._lru:
            self._lru.remove(pc)
        self._lru.append(pc)
        while len(self._lru) > self.table_entries:
            evicted = self._lru.pop(0)
            self._table.pop(evicted, None)

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe a demand access from ``pc``; return addresses to prefetch."""
        self.stats.trainings += 1
        entry = self._table.get(pc)
        targets: List[int] = []
        if entry is None:
            self._table[pc] = [addr, 0, 0]
        else:
            last_addr, stride, confidence = entry
            new_stride = addr - last_addr
            if new_stride == stride and stride != 0:
                confidence = min(confidence + 1, self.confidence_threshold + 1)
            else:
                confidence = 0
            self._table[pc] = [addr, new_stride, confidence]
            if confidence >= self.confidence_threshold and new_stride != 0:
                targets = [addr + new_stride * (i + 1) for i in range(self.degree)]
                self.stats.prefetches_issued += len(targets)
        self._touch(pc)
        return targets
