"""The narrow core <-> memory seam.

``OoOCore`` used to construct and own a whole :class:`MemoryHierarchy` and
call into it freely; the multi-core work split the hierarchy into a per-core
:class:`~repro.memory.hierarchy.PrivateHierarchy` front half and a
:class:`~repro.memory.hierarchy.SharedUncore` back half.  The surface the
core is allowed to touch is pinned down here:

* :class:`MemoryPort` — the full data+instruction request surface a core
  drives (request, admission, drain, wake-up), carrying a ``core_id`` so the
  uncore can attribute shared-resource usage (L3 space, DRAM queue delay,
  bus occupancy) to the requesting core;
* :class:`InstructionPort` — the strict subset the front end needs: the
  fetch-line geometry plus ``access_instruction``.  The front end sees
  nothing else of the hierarchy.

Everything a core reads across the seam is part of these types; anything
else (MSHR internals, fill queues, prefetcher state) stays private to
``repro.memory``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hierarchy import AccessResult, PrivateHierarchy


class MemoryPort(Protocol):
    """What a core may ask of its memory system.

    :class:`~repro.memory.hierarchy.PrivateHierarchy` (and therefore the
    single-core :class:`~repro.memory.hierarchy.MemoryHierarchy`) implements
    this protocol; the core holds the port and never reaches past it.
    """

    #: Identity stamped on every request, for per-core uncore attribution.
    core_id: int

    def access_data(
        self,
        addr: int,
        cycle: int,
        is_write: bool = False,
        is_prefetch: bool = False,
        pc: int = 0,
    ) -> "AccessResult":
        """Issue a data-side request for the line containing ``addr``."""
        ...

    def access_instruction(self, pc: int, cycle: int) -> "AccessResult":
        """Issue an instruction-side request for the line containing ``pc``."""
        ...

    def can_accept(self, cycle: int) -> bool:
        """Whether a new demand miss could be admitted at ``cycle``."""
        ...

    def earliest_completion(self, cycle: int) -> Optional[int]:
        """Completion cycle of the earliest outstanding fill, or ``None``.

        The core's idle-skip scheduler uses this as a wake-up candidate when
        it is blocked on memory (e.g. a committed store waiting for an MSHR
        entry to free).
        """
        ...

    def drain(self, cycle: int) -> None:
        """Settle every fill due by ``cycle`` (end-of-run statistics)."""
        ...


class InstructionPort:
    """The instruction-side slice of a :class:`MemoryPort`.

    The front end fetches along cache lines and charges I-miss penalties; it
    needs exactly the L1I geometry and ``access_instruction`` — so that is
    all it gets.  A ``__slots__`` value class: one per core, but its
    attributes are read on the per-cycle fetch path.
    """

    __slots__ = ("line_bytes", "latency", "access_instruction")

    def __init__(self, hierarchy: "PrivateHierarchy") -> None:
        config = hierarchy.config.l1i
        #: L1I line size, for the front end's same-line fetch fast path.
        self.line_bytes = config.line_bytes
        #: L1I hit latency, already charged by the fetch pipeline depth; the
        #: front end charges only the excess of a miss over this.
        self.latency = config.latency
        #: Bound method straight off the hierarchy: the port adds no
        #: indirection on the per-fetch-line access path.
        self.access_instruction = hierarchy.access_instruction
