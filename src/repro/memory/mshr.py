"""Miss Status Holding Registers (MSHRs).

The MSHR file bounds the number of distinct cache lines that may be in flight
from the memory system at once — i.e. it bounds the memory-level parallelism
the core (and runahead execution) can expose.  Requests to a line that is
already outstanding merge with the existing entry and observe only the
remaining latency.

Since the fill-on-completion rewrite of the hierarchy, the MSHR file is the
*single book of record* for outstanding lines: every miss transaction —
demand load or store, instruction fetch, hardware prefetch, runahead
prefetch — allocates exactly one entry here, and the entry lives exactly as
long as the fill is outstanding.  Entries carry the metadata merging requests
need (:attr:`MSHREntry.is_dram` marks off-chip fills, the class of loads that
cause full-window stalls in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class MSHRStats:
    """Counters describing MSHR behaviour."""

    allocations: int = 0
    merges: int = 0
    full_rejections: int = 0
    peak_occupancy: int = 0


@dataclass
class MSHREntry:
    """One outstanding line fill.

    Attributes
    ----------
    completion_cycle:
        Cycle at which the fill's data is available (and the entry frees).
    is_dram:
        Whether the fill is being serviced off-chip; merging requests inherit
        this as their ``is_long_latency``.
    """

    completion_cycle: int
    is_dram: bool = False


class MSHRFile:
    """Tracks outstanding line fills, with merging and a capacity limit."""

    def __init__(self, num_entries: int = 32, line_bytes: int = 64) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.line_bytes = line_bytes
        self.stats = MSHRStats()
        # line number -> outstanding fill record
        self._inflight: Dict[int, MSHREntry] = {}

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def _expire(self, cycle: int) -> None:
        expired = [
            line
            for line, entry in self._inflight.items()
            if entry.completion_cycle <= cycle
        ]
        for line in expired:
            del self._inflight[line]

    def occupancy(self, cycle: int) -> int:
        """Number of fills still outstanding at ``cycle``."""
        self._expire(cycle)
        return len(self._inflight)

    def is_full(self, cycle: int) -> bool:
        """Whether a new (non-merging) miss would be rejected at ``cycle``."""
        return self.occupancy(cycle) >= self.num_entries

    def lookup(self, addr: int, cycle: int) -> Optional[MSHREntry]:
        """The outstanding fill covering ``addr``, without counting a merge."""
        self._expire(cycle)
        return self._inflight.get(self._line(addr))

    def outstanding_completion(self, addr: int, cycle: int) -> Optional[int]:
        """Completion cycle of an in-flight fill covering ``addr``, or ``None``."""
        entry = self.lookup(addr, cycle)
        return entry.completion_cycle if entry is not None else None

    def earliest_completion(self, cycle: int) -> Optional[int]:
        """Completion cycle of the next entry to free, or ``None`` when empty."""
        self._expire(cycle)
        if not self._inflight:
            return None
        return min(entry.completion_cycle for entry in self._inflight.values())

    def allocate(
        self,
        addr: int,
        completion_cycle: int,
        cycle: int,
        is_dram: bool = False,
        limit: Optional[int] = None,
    ) -> bool:
        """Record a new outstanding fill.

        ``limit`` caps the occupancy this request may grow the file to;
        prefetches pass ``num_entries - demand_reserve`` so speculative
        traffic can never take the entries reserved for demand misses.

        Returns False (and counts a rejection) if the applicable limit is
        reached and the line is not already outstanding; the caller must
        retry later.
        """
        self._expire(cycle)
        line = self._line(addr)
        if line in self._inflight:
            self.stats.merges += 1
            return True
        cap = self.num_entries if limit is None else min(limit, self.num_entries)
        if len(self._inflight) >= cap:
            self.stats.full_rejections += 1
            return False
        self._inflight[line] = MSHREntry(completion_cycle, is_dram)
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._inflight))
        return True

    def update(self, addr: int, completion_cycle: int, is_dram: bool) -> None:
        """Finalise a provisional entry once the miss path has its latency."""
        entry = self._inflight.get(self._line(addr))
        if entry is None:
            raise KeyError(f"no outstanding MSHR entry for address {addr:#x}")
        entry.completion_cycle = completion_cycle
        entry.is_dram = is_dram

    def merge(self, addr: int, cycle: int) -> Optional[MSHREntry]:
        """Merge a request with an outstanding fill; return its entry."""
        entry = self.lookup(addr, cycle)
        if entry is not None:
            self.stats.merges += 1
        return entry

    def clear(self) -> None:
        """Drop all outstanding entries (used when resetting the hierarchy)."""
        self._inflight.clear()
