"""Miss Status Holding Registers (MSHRs).

The MSHR file bounds the number of distinct cache lines that may be in flight
from the memory system at once — i.e. it bounds the memory-level parallelism
the core (and runahead execution) can expose.  Requests to a line that is
already outstanding merge with the existing entry and observe only the
remaining latency.

Since the fill-on-completion rewrite of the hierarchy, the MSHR file is the
*single book of record* for outstanding lines: every miss transaction —
demand load or store, instruction fetch, hardware prefetch, runahead
prefetch — allocates exactly one entry here, and the entry lives exactly as
long as the fill is outstanding.  Entries carry the metadata merging requests
need (:attr:`MSHREntry.is_dram` marks off-chip fills, the class of loads that
cause full-window stalls in the paper).

Expiry is driven by a completion-ordered heap rather than a full scan of the
entry dictionary: the file is consulted on *every* memory access (the vast
majority of which are L1 hits with nothing outstanding), so the common case
must be a single heap-top comparison, not an O(entries) sweep.  Heap items
may be stale — :meth:`allocate` records a provisional completion that
:meth:`update` later finalises — and are lazily re-queued when popped, which
preserves the invariant of exactly one live heap item per outstanding line.
"""

from __future__ import annotations

from heapq import heappop, heappush
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class MSHRStats:
    """Counters describing MSHR behaviour."""

    allocations: int = 0
    merges: int = 0
    full_rejections: int = 0
    peak_occupancy: int = 0


class MSHREntry:
    """One outstanding line fill.

    Attributes
    ----------
    completion_cycle:
        Cycle at which the fill's data is available (and the entry frees).
    is_dram:
        Whether the fill is being serviced off-chip; merging requests inherit
        this as their ``is_long_latency``.
    """

    __slots__ = ("completion_cycle", "is_dram")

    def __init__(self, completion_cycle: int, is_dram: bool = False) -> None:
        self.completion_cycle = completion_cycle
        self.is_dram = is_dram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MSHREntry(completion_cycle={self.completion_cycle}, is_dram={self.is_dram})"


class MSHRFile:
    """Tracks outstanding line fills, with merging and a capacity limit."""

    def __init__(self, num_entries: int = 32, line_bytes: int = 64) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.line_bytes = line_bytes
        self.stats = MSHRStats()
        # line number -> outstanding fill record
        self._inflight: dict = {}
        # (recorded completion, line) — possibly stale; exactly one live item
        # per outstanding line (stale items re-queue when popped).
        self._expiry: List[Tuple[int, int]] = []

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def _expire(self, cycle: int) -> None:
        """Drop every entry whose fill completed by ``cycle``.

        Completion cycles only ever move *forward* (a provisional entry is
        finalised to its real, later completion by :meth:`update`), so a
        popped heap item whose entry is still live is simply re-queued at
        the entry's current completion.
        """
        heap = self._expiry
        if not heap or heap[0][0] > cycle:
            return
        inflight = self._inflight
        while heap and heap[0][0] <= cycle:
            _, line = heappop(heap)
            entry = inflight.get(line)
            if entry is None:
                continue
            if entry.completion_cycle <= cycle:
                del inflight[line]
            else:
                heappush(heap, (entry.completion_cycle, line))

    def occupancy(self, cycle: int) -> int:
        """Number of fills still outstanding at ``cycle``."""
        self._expire(cycle)
        return len(self._inflight)

    def is_full(self, cycle: int) -> bool:
        """Whether a new (non-merging) miss would be rejected at ``cycle``."""
        return self.occupancy(cycle) >= self.num_entries

    def lookup(self, addr: int, cycle: int) -> Optional[MSHREntry]:
        """The outstanding fill covering ``addr``, without counting a merge."""
        self._expire(cycle)
        return self._inflight.get(addr // self.line_bytes)

    def outstanding_completion(self, addr: int, cycle: int) -> Optional[int]:
        """Completion cycle of an in-flight fill covering ``addr``, or ``None``."""
        entry = self.lookup(addr, cycle)
        return entry.completion_cycle if entry is not None else None

    def earliest_completion(self, cycle: int) -> Optional[int]:
        """Completion cycle of the next entry to free, or ``None`` when empty."""
        self._expire(cycle)
        heap = self._expiry
        inflight = self._inflight
        while heap:
            completion, line = heap[0]
            entry = inflight.get(line)
            if entry is None:
                heappop(heap)
                continue
            if entry.completion_cycle != completion:
                heappop(heap)
                heappush(heap, (entry.completion_cycle, line))
                continue
            return completion
        return None

    def allocate(
        self,
        addr: int,
        completion_cycle: int,
        cycle: int,
        is_dram: bool = False,
        limit: Optional[int] = None,
    ) -> bool:
        """Record a new outstanding fill.

        ``limit`` caps the occupancy this request may grow the file to;
        prefetches pass ``num_entries - demand_reserve`` so speculative
        traffic can never take the entries reserved for demand misses.

        Returns False (and counts a rejection) if the applicable limit is
        reached and the line is not already outstanding; the caller must
        retry later.
        """
        self._expire(cycle)
        line = addr // self.line_bytes
        inflight = self._inflight
        stats = self.stats
        if line in inflight:
            stats.merges += 1
            return True
        cap = self.num_entries if limit is None else min(limit, self.num_entries)
        if len(inflight) >= cap:
            stats.full_rejections += 1
            return False
        inflight[line] = MSHREntry(completion_cycle, is_dram)
        heappush(self._expiry, (completion_cycle, line))
        stats.allocations += 1
        if len(inflight) > stats.peak_occupancy:
            stats.peak_occupancy = len(inflight)
        return True

    def update(self, addr: int, completion_cycle: int, is_dram: bool) -> None:
        """Finalise a provisional entry once the miss path has its latency."""
        line = addr // self.line_bytes
        entry = self._inflight.get(line)
        if entry is None:
            raise KeyError(f"no outstanding MSHR entry for address {addr:#x}")
        if completion_cycle < entry.completion_cycle:
            # Completions normally only move later (provisional -> real), but
            # a zero-latency cache configuration can finalise *earlier* than
            # the provisional heap item; queue a fresh item so expiry never
            # runs late.  Duplicate heap items are tolerated by the lazy pops.
            heappush(self._expiry, (completion_cycle, line))
        entry.completion_cycle = completion_cycle
        entry.is_dram = is_dram

    def merge(self, addr: int, cycle: int) -> Optional[MSHREntry]:
        """Merge a request with an outstanding fill; return its entry."""
        entry = self.lookup(addr, cycle)
        if entry is not None:
            self.stats.merges += 1
        return entry

    def clear(self) -> None:
        """Drop all outstanding entries (used when resetting the hierarchy)."""
        self._inflight.clear()
        self._expiry.clear()
