"""Miss Status Holding Registers (MSHRs).

The MSHR file bounds the number of distinct cache lines that may be in flight
from the memory system at once — i.e. it bounds the memory-level parallelism
the core (and runahead execution) can expose.  Requests to a line that is
already outstanding merge with the existing entry and observe only the
remaining latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class MSHRStats:
    """Counters describing MSHR behaviour."""

    allocations: int = 0
    merges: int = 0
    full_rejections: int = 0
    peak_occupancy: int = 0


class MSHRFile:
    """Tracks outstanding line fills, with merging and a capacity limit."""

    def __init__(self, num_entries: int = 32, line_bytes: int = 64) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        self.line_bytes = line_bytes
        self.stats = MSHRStats()
        # line number -> cycle at which the fill completes
        self._inflight: Dict[int, int] = {}

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    def _expire(self, cycle: int) -> None:
        expired = [line for line, done in self._inflight.items() if done <= cycle]
        for line in expired:
            del self._inflight[line]

    def occupancy(self, cycle: int) -> int:
        """Number of fills still outstanding at ``cycle``."""
        self._expire(cycle)
        return len(self._inflight)

    def is_full(self, cycle: int) -> bool:
        """Whether a new (non-merging) miss would be rejected at ``cycle``."""
        return self.occupancy(cycle) >= self.num_entries

    def outstanding_completion(self, addr: int, cycle: int) -> Optional[int]:
        """Completion cycle of an in-flight fill covering ``addr``, or ``None``."""
        self._expire(cycle)
        return self._inflight.get(self._line(addr))

    def allocate(self, addr: int, completion_cycle: int, cycle: int) -> bool:
        """Record a new outstanding fill.

        Returns False (and counts a rejection) if the MSHR file is full and the
        line is not already outstanding; the caller must retry later.
        """
        self._expire(cycle)
        line = self._line(addr)
        if line in self._inflight:
            self.stats.merges += 1
            return True
        if len(self._inflight) >= self.num_entries:
            self.stats.full_rejections += 1
            return False
        self._inflight[line] = completion_cycle
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._inflight))
        return True

    def merge(self, addr: int, cycle: int) -> Optional[int]:
        """Merge a request with an outstanding fill; return its completion cycle."""
        completion = self.outstanding_completion(addr, cycle)
        if completion is not None:
            self.stats.merges += 1
        return completion

    def clear(self) -> None:
        """Drop all outstanding entries (used when resetting the hierarchy)."""
        self._inflight.clear()
