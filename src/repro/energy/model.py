"""The composed energy model: core + DRAM + runahead structures.

``EnergyModel.evaluate`` converts a finished simulation (its
:class:`~repro.uarch.stats.CoreStats` event counts, the memory hierarchy's
access counts, and the runahead structures configured for the variant) into an
:class:`EnergyReport`.  Energy savings relative to the baseline core — the
quantity Figure 3 of the paper reports — are then simple ratios of report
totals, computed by :mod:`repro.simulation.experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.energy.cacti import SRAMModel
from repro.energy.mcpat import EnergyBreakdown, EnergyParameters
from repro.memory.hierarchy import MemoryHierarchy
from repro.serde import JSONSerializable
from repro.uarch.config import CoreConfig
from repro.uarch.stats import CoreStats


@dataclass
class EnergyReport(JSONSerializable):
    """Total energy of one run plus its component breakdown."""

    variant: str
    cycles: int
    frequency_ghz: float
    breakdown: EnergyBreakdown

    @property
    def seconds(self) -> float:
        """Execution time in seconds."""
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def total_nj(self) -> float:
        """Total core + DRAM energy in nanojoules."""
        return self.breakdown.total_nj

    @property
    def average_power_w(self) -> float:
        """Average power over the run."""
        if self.seconds == 0:
            return 0.0
        return self.total_nj * 1e-9 / self.seconds

    def savings_relative_to(self, baseline: "EnergyReport") -> float:
        """Fractional energy saving relative to ``baseline`` (positive = less energy)."""
        if baseline.total_nj == 0:
            return 0.0
        return 1.0 - self.total_nj / baseline.total_nj


class EnergyModel:
    """Event-count energy model for the core, the memory system and PRE's structures."""

    def __init__(self, parameters: Optional[EnergyParameters] = None) -> None:
        self.parameters = parameters or EnergyParameters()

    def evaluate(
        self,
        variant: str,
        stats: CoreStats,
        hierarchy: MemoryHierarchy,
        config: CoreConfig,
        extra_sram: Optional[Dict[str, SRAMModel]] = None,
        extra_sram_accesses: Optional[Dict[str, int]] = None,
    ) -> EnergyReport:
        """Compute the energy of one finished simulation run.

        ``extra_sram`` maps structure names (``"sst"``, ``"prdq"``, ``"emq"``,
        ``"runahead_buffer"``) to their SRAM models; ``extra_sram_accesses``
        maps the same names to total access counts.
        """
        params = self.parameters
        events = stats.events
        breakdown = EnergyBreakdown()

        breakdown.frontend_nj = (
            events.fetched_uops * params.fetch_pj
            + events.decoded_uops * params.decode_pj
            + events.branch_predictions * params.branch_prediction_pj
        ) / 1000.0
        breakdown.rename_dispatch_nj = (
            events.renamed_uops * params.rename_pj
            + events.rob_writes * params.rob_write_pj
            + events.rob_reads * params.rob_read_pj
            + events.iq_writes * params.iq_write_pj
            + events.iq_wakeups * params.iq_wakeup_pj
        ) / 1000.0

        breakdown.issue_execute_nj = (
            events.executed_uops * params.int_op_pj
        ) / 1000.0
        breakdown.regfile_nj = (
            events.regfile_reads * params.regfile_read_pj
            + events.regfile_writes * params.regfile_write_pj
        ) / 1000.0
        breakdown.lsq_nj = events.lsq_accesses * params.lsq_access_pj / 1000.0

        breakdown.cache_nj = (
            (hierarchy.l1d.stats.accesses + hierarchy.l1i.stats.accesses) * params.l1_access_pj
            + hierarchy.l2.stats.accesses * params.l2_access_pj
            + hierarchy.l3.stats.accesses * params.l3_access_pj
        ) / 1000.0
        # Reads and writes are billed separately: writeback propagation means
        # DRAM write counts now reflect every dirty victim that reaches main
        # memory, not just L3 victims.
        breakdown.dram_dynamic_nj = (
            hierarchy.dram.stats.reads * params.dram_access_pj
            + hierarchy.dram.stats.writes * params.dram_write_pj
        ) / 1000.0

        breakdown.runahead_structures_nj = self._runahead_structures_nj(
            stats, extra_sram or {}, extra_sram_accesses or {}
        )

        seconds = stats.cycles / (config.frequency_ghz * 1e9)
        static_w = params.core_static_w + params.llc_static_w
        static_w += sum(model.leakage_mw for model in (extra_sram or {}).values()) * 1e-3
        breakdown.core_static_nj = static_w * seconds * 1e9
        breakdown.dram_static_nj = params.dram_static_w * seconds * 1e9

        return EnergyReport(
            variant=variant,
            cycles=stats.cycles,
            frequency_ghz=config.frequency_ghz,
            breakdown=breakdown,
        )

    @staticmethod
    def _runahead_structures_nj(
        stats: CoreStats,
        extra_sram: Dict[str, SRAMModel],
        extra_accesses: Dict[str, int],
    ) -> float:
        total_pj = 0.0
        events = stats.events
        default_accesses = {
            "sst": events.sst_lookups + events.sst_inserts,
            "prdq": events.prdq_writes + events.prdq_deallocations,
            "emq": events.emq_writes + events.emq_reads,
            "runahead_buffer": events.runahead_buffer_reads + events.runahead_buffer_writes,
        }
        for name, model in extra_sram.items():
            accesses = extra_accesses.get(name, default_accesses.get(name, 0))
            total_pj += accesses * model.read_energy_pj
        return total_pj / 1000.0
