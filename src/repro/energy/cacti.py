"""CACTI-like analytic SRAM energy model.

CACTI 6.5 estimates per-access energy and leakage power of SRAM arrays from
their geometry.  This module provides a small analytic stand-in with the same
interface role: given a structure's capacity and port count it returns a
per-access dynamic energy (picojoules) and a leakage power (milliwatts) with
magnitudes representative of small 22 nm SRAM arrays.  The paper uses this
only for the runahead-specific structures (SST, PRDQ, EMQ), whose total
storage is a few kilobytes, so the absolute numbers are small compared to the
core; what matters is that they are accounted for at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def sram_access_energy_pj(capacity_bytes: int, ports: int = 1) -> float:
    """Per-access dynamic energy (pJ) of a small SRAM array.

    The energy grows roughly with the square root of capacity (bitline and
    wordline length) and linearly with the number of ports.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity_bytes must be positive")
    if ports <= 0:
        raise ValueError("ports must be positive")
    kilobytes = capacity_bytes / 1024.0
    return 0.35 * math.sqrt(max(kilobytes, 1.0 / 64.0)) * (0.6 + 0.4 * ports)


def sram_leakage_mw(capacity_bytes: int) -> float:
    """Leakage power (mW) of a small SRAM array at 22 nm."""
    if capacity_bytes <= 0:
        raise ValueError("capacity_bytes must be positive")
    kilobytes = capacity_bytes / 1024.0
    return 0.08 * kilobytes


@dataclass(frozen=True)
class SRAMModel:
    """Energy characteristics of one SRAM structure."""

    name: str
    capacity_bytes: int
    read_ports: int = 1
    write_ports: int = 1

    @property
    def read_energy_pj(self) -> float:
        """Dynamic energy of one read access."""
        return sram_access_energy_pj(self.capacity_bytes, self.read_ports)

    @property
    def write_energy_pj(self) -> float:
        """Dynamic energy of one write access."""
        return sram_access_energy_pj(self.capacity_bytes, self.write_ports)

    @property
    def leakage_mw(self) -> float:
        """Leakage power of the array."""
        return sram_leakage_mw(self.capacity_bytes)

    def dynamic_energy_nj(self, reads: int, writes: int) -> float:
        """Total dynamic energy (nanojoules) for the given access counts."""
        return (reads * self.read_energy_pj + writes * self.write_energy_pj) / 1000.0

    def static_energy_nj(self, seconds: float) -> float:
        """Leakage energy (nanojoules) over ``seconds`` of execution."""
        return self.leakage_mw * 1e-3 * seconds * 1e9
