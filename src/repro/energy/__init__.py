"""Energy modelling substrate.

The paper evaluates energy with McPAT (core + DRAM, 22 nm) and CACTI 6.5 (the
SST, PRDQ and EMQ SRAM structures).  Neither tool is available here, so this
package provides an event-based equivalent: the core counts per-structure
dynamic events (:class:`repro.uarch.stats.EventCounts`), this package
multiplies them by per-access energies representative of a 22 nm core, adds
leakage proportional to execution time, and adds the runahead structures'
energy from an analytic SRAM model.  The paper's energy argument is structural
(re-fetching and re-executing whole windows versus small extra SRAM
structures), which this accounting captures; see DESIGN.md section 2.
"""

from repro.energy.cacti import SRAMModel, sram_access_energy_pj, sram_leakage_mw
from repro.energy.mcpat import EnergyParameters, EnergyBreakdown
from repro.energy.model import EnergyModel, EnergyReport

__all__ = [
    "SRAMModel",
    "sram_access_energy_pj",
    "sram_leakage_mw",
    "EnergyParameters",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyReport",
]
