"""McPAT-like per-event core and DRAM energy parameters.

McPAT computes core power from per-structure activity counts.  This module
fixes a set of per-event energies (picojoules per access) representative of a
22 nm, ~2.7 GHz out-of-order core, and a breakdown container.  Absolute values
are approximate; the evaluation only uses energy *relative to the baseline
out-of-order core*, which depends on the ratio of extra runahead activity to
total activity and on execution time (leakage), both of which the simulator
measures directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.serde import JSONSerializable


@dataclass(frozen=True)
class EnergyParameters(JSONSerializable):
    """Per-event dynamic energies (pJ) and static powers (W) of the modelled core."""

    # Front end
    fetch_pj: float = 14.0
    decode_pj: float = 8.0
    branch_prediction_pj: float = 2.0
    # Rename / dispatch
    rename_pj: float = 6.0
    rob_write_pj: float = 4.0
    rob_read_pj: float = 3.0
    iq_write_pj: float = 4.0
    iq_wakeup_pj: float = 2.5
    # Register files and execution
    regfile_read_pj: float = 1.6
    regfile_write_pj: float = 2.4
    int_op_pj: float = 6.0
    fp_op_pj: float = 12.0
    lsq_access_pj: float = 3.5
    # Memory hierarchy
    l1_access_pj: float = 22.0
    l2_access_pj: float = 90.0
    l3_access_pj: float = 260.0
    #: Energy of one DRAM read (demand/prefetch fill).
    dram_access_pj: float = 2600.0
    #: Energy of one DRAM write (cache writeback); writes skip the read
    #: sense/restore path but drive the bus and array similarly.
    dram_write_pj: float = 2600.0
    # Static power
    core_static_w: float = 1.15
    llc_static_w: float = 0.35
    dram_static_w: float = 0.55

    def as_dict(self) -> Dict[str, float]:
        """All parameters as a plain dictionary."""
        return dict(self.__dict__)


@dataclass
class EnergyBreakdown(JSONSerializable):
    """Energy of one simulation run, broken down by component (nanojoules)."""

    frontend_nj: float = 0.0
    rename_dispatch_nj: float = 0.0
    issue_execute_nj: float = 0.0
    regfile_nj: float = 0.0
    lsq_nj: float = 0.0
    cache_nj: float = 0.0
    dram_dynamic_nj: float = 0.0
    runahead_structures_nj: float = 0.0
    core_static_nj: float = 0.0
    dram_static_nj: float = 0.0

    @property
    def dynamic_nj(self) -> float:
        """Total dynamic energy."""
        return (
            self.frontend_nj
            + self.rename_dispatch_nj
            + self.issue_execute_nj
            + self.regfile_nj
            + self.lsq_nj
            + self.cache_nj
            + self.dram_dynamic_nj
            + self.runahead_structures_nj
        )

    @property
    def static_nj(self) -> float:
        """Total static (leakage) energy."""
        return self.core_static_nj + self.dram_static_nj

    @property
    def total_nj(self) -> float:
        """Total core + DRAM energy."""
        return self.dynamic_nj + self.static_nj

    def as_dict(self) -> Dict[str, float]:
        """The breakdown as a dictionary, including the totals."""
        data = dict(self.__dict__)
        data["dynamic_nj"] = self.dynamic_nj
        data["static_nj"] = self.static_nj
        data["total_nj"] = self.total_nj
        return data
