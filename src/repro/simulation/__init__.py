"""Simulation drivers: single runs, variant comparisons, sweeps, and metrics."""

from repro.simulation.simulator import (
    CoreResult,
    SimPointIntervalResult,
    SimPointRunResult,
    SimulationRequest,
    SimulationResult,
    Simulator,
    UncoreReport,
    run_simpoints,
    run_simulation,
    run_variant,
)
from repro.simulation.multicore import (
    CoreAssignment,
    MultiCoreSimulator,
    MultiCoreSpec,
    run_multicore,
)
from repro.simulation.experiment import (
    BenchmarkResult,
    ComparisonResult,
    run_comparison,
    run_performance_comparison,
)
from repro.simulation.engine import (
    EngineRunStats,
    ExperimentEngine,
    ResultCache,
    SweepCell,
    SweepResult,
    SweepSpec,
)
from repro.simulation.metrics import (
    arithmetic_mean,
    geometric_mean,
    interval_length_histogram,
    invocation_ratio,
    normalized_performance,
    speedup_percent,
)

__all__ = [
    "CoreAssignment",
    "CoreResult",
    "MultiCoreSimulator",
    "MultiCoreSpec",
    "SimPointIntervalResult",
    "SimPointRunResult",
    "SimulationRequest",
    "SimulationResult",
    "Simulator",
    "UncoreReport",
    "run_multicore",
    "run_simpoints",
    "run_simulation",
    "run_variant",
    "BenchmarkResult",
    "ComparisonResult",
    "run_comparison",
    "run_performance_comparison",
    "EngineRunStats",
    "ExperimentEngine",
    "ResultCache",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "arithmetic_mean",
    "geometric_mean",
    "interval_length_histogram",
    "invocation_ratio",
    "normalized_performance",
    "speedup_percent",
]
