"""Simulation drivers: single runs, variant comparisons, and derived metrics."""

from repro.simulation.simulator import SimulationResult, Simulator, run_variant
from repro.simulation.experiment import (
    BenchmarkResult,
    ComparisonResult,
    run_comparison,
    run_performance_comparison,
)
from repro.simulation.metrics import (
    arithmetic_mean,
    geometric_mean,
    interval_length_histogram,
    invocation_ratio,
    normalized_performance,
    speedup_percent,
)

__all__ = [
    "SimulationResult",
    "Simulator",
    "run_variant",
    "BenchmarkResult",
    "ComparisonResult",
    "run_comparison",
    "run_performance_comparison",
    "arithmetic_mean",
    "geometric_mean",
    "interval_length_histogram",
    "invocation_ratio",
    "normalized_performance",
    "speedup_percent",
]
