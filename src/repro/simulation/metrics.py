"""Derived metrics shared by experiments, reports and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.uarch.stats import CoreStats


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average.

    Raises
    ------
    ValueError
        If ``values`` is empty — an empty mean almost always means every
        input was filtered out upstream, which callers should surface rather
        than silently average to zero.
    """
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean() requires at least one value")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean.  All values must be positive.

    Raises
    ------
    ValueError
        If ``values`` is empty or contains a non-positive value.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() requires at least one value")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalized_performance(variant_stats: CoreStats, baseline_stats: CoreStats) -> float:
    """Performance of a variant normalised to the baseline (Figure 2's y-axis).

    Both runs commit the same trace, so the ratio of cycle counts equals the
    ratio of IPCs.
    """
    if variant_stats.cycles == 0:
        return 0.0
    return baseline_stats.cycles / variant_stats.cycles


def speedup_percent(variant_stats: CoreStats, baseline_stats: CoreStats) -> float:
    """Percentage performance improvement over the baseline."""
    return (normalized_performance(variant_stats, baseline_stats) - 1.0) * 100.0


def invocation_ratio(variant_stats: CoreStats, reference_stats: CoreStats) -> float:
    """Ratio of runahead invocations between two variants (Section 5.1 statistic)."""
    if reference_stats.runahead_invocations == 0:
        return float("inf") if variant_stats.runahead_invocations else 0.0
    return variant_stats.runahead_invocations / reference_stats.runahead_invocations


def interval_length_histogram(
    stats: CoreStats, bin_edges: Iterable[int] = (20, 50, 100, 200, 500)
) -> Dict[str, int]:
    """Histogram of runahead interval lengths (Section 2.4 characterisation).

    Returns a mapping from human-readable bin label to interval count, with
    one final open-ended bin.
    """
    edges: List[int] = sorted(bin_edges)
    labels = [f"<{edges[0]}"]
    labels += [f"{low}-{high - 1}" for low, high in zip(edges, edges[1:])]
    labels += [f">={edges[-1]}"]
    counts = {label: 0 for label in labels}
    for interval in stats.intervals:
        if interval.exit_cycle < 0:
            continue
        length = interval.length
        placed = False
        if length < edges[0]:
            counts[labels[0]] += 1
            placed = True
        else:
            for index, (low, high) in enumerate(zip(edges, edges[1:])):
                if low <= length < high:
                    counts[labels[index + 1]] += 1
                    placed = True
                    break
        if not placed:
            counts[labels[-1]] += 1
    return counts


def energy_savings_percent(variant_total_nj: float, baseline_total_nj: float) -> float:
    """Percentage energy saving relative to the baseline (Figure 3's y-axis)."""
    if baseline_total_nj == 0:
        return 0.0
    return (1.0 - variant_total_nj / baseline_total_nj) * 100.0
