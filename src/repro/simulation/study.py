"""Declarative sensitivity studies: ``python -m repro study``.

The paper's headline comparison (Figure 2) is one point in a much larger
design space; its sensitivity analyses ask how PRE's gains move with ROB
size, EMQ capacity, MSHR count, DRAM latency, and hardware-prefetcher
interaction.  This module turns each such analysis into a *declarative*
:class:`StudySpec`: a base configuration plus named axes of configuration
overrides, expanded into the cartesian product of axis points, where every
point runs the full workloads x variants grid through the cached parallel
:class:`~repro.simulation.engine.ExperimentEngine` — so a study is
reproducible (the spec serialises), incremental (cells hit the result
cache), and CI-checkable (a re-run with a warm cache simulates nothing).

Axes override two configuration layers:

* ``core`` overrides are :class:`~repro.uarch.config.CoreConfig` fields
  (``rob_size``, ``emq_entries``, ...), validated by ``with_overrides``;
* ``hierarchy`` overrides address :class:`~repro.memory.hierarchy.HierarchyConfig`
  fields by dotted path (``mshr_entries``, ``prefetcher``,
  ``dram.controller_latency_cycles``), applied through the serde layer so
  nested dataclasses revalidate.

Studies register by name in :data:`STUDY_REGISTRY` (the same decorator
pattern as workloads/variants/probes) and run from the CLI::

    python -m repro study list
    python -m repro study run rob-scaling --uops 600 --workers 2 \
        --cache-dir .repro-cache
    python -m repro study report rob_scaling_study.json --csv curves.csv
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

import dataclasses

from repro.memory.hierarchy import HierarchyConfig
from repro.registry import Registry
from repro.serde import JSONSerializable
from repro.simulation.engine import (
    EngineRunStats,
    ExperimentEngine,
    JobSpec,
    assemble_comparison,
    resolve_variants,
    resolve_workloads,
)
from repro.simulation.multicore import CoreAssignment, MultiCoreSpec
from repro.simulation.experiment import ComparisonResult
from repro.uarch.config import CoreConfig

#: Memory-sensitive trio used by the registered studies: small enough for CI,
#: varied enough (pointer-chasing, streaming, mixed) for the curves to move.
DEFAULT_STUDY_WORKLOADS = ("mcf", "milc", "sphinx3")

#: Default micro-ops per cell for registered studies (CLI ``--uops`` overrides).
DEFAULT_STUDY_UOPS = 2_000


# ----------------------------------------------------------------- spec model


@dataclass
class AxisPoint(JSONSerializable):
    """One value of a study axis: a label plus the overrides it implies."""

    label: str
    #: :class:`~repro.uarch.config.CoreConfig` field overrides.
    core: Dict[str, Any] = field(default_factory=dict)
    #: :class:`~repro.memory.hierarchy.HierarchyConfig` overrides, keyed by
    #: dotted field path (e.g. ``"dram.controller_latency_cycles"``).
    hierarchy: Dict[str, Any] = field(default_factory=dict)
    #: Multi-core co-runner overrides (see :func:`build_multicore_spec`):
    #: ``co_runners``, ``co_workload``, ``co_variant``, ``address_stride``.
    multicore: Dict[str, Any] = field(default_factory=dict)


@dataclass
class StudyAxis(JSONSerializable):
    """A named axis: an ordered list of points the study sweeps through."""

    name: str
    points: List[AxisPoint]

    @staticmethod
    def core_field(name: str, values: Sequence[Any]) -> "StudyAxis":
        """An axis sweeping one ``CoreConfig`` field through ``values``."""
        return StudyAxis(
            name=name,
            points=[AxisPoint(label=str(value), core={name: value}) for value in values],
        )

    @staticmethod
    def hierarchy_field(name: str, values: Sequence[Any]) -> "StudyAxis":
        """An axis sweeping one ``HierarchyConfig`` dotted path through ``values``."""
        return StudyAxis(
            name=name,
            points=[
                AxisPoint(label=str(value), hierarchy={name: value}) for value in values
            ],
        )


@dataclass
class StudyPoint(JSONSerializable):
    """One cell of the expanded cartesian product: coordinates + merged overrides."""

    #: axis name -> point label, in axis order (the report's row key).
    coordinates: Dict[str, str]
    core_overrides: Dict[str, Any] = field(default_factory=dict)
    hierarchy_overrides: Dict[str, Any] = field(default_factory=dict)
    multicore_overrides: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Human-readable ``axis=value`` coordinate string."""
        return ", ".join(f"{axis}={value}" for axis, value in self.coordinates.items())


@dataclass
class StudySpec(JSONSerializable):
    """A declarative sensitivity study: base config + axes of overrides.

    ``variants`` follows sweep semantics: the ``ooo`` baseline is always
    added (every per-point table normalises against it).  ``base_core`` /
    ``base_hierarchy`` apply to *every* point; axis overrides stack on top.
    """

    name: str
    description: str = ""
    workloads: List[str] = field(default_factory=lambda: list(DEFAULT_STUDY_WORKLOADS))
    variants: List[str] = field(default_factory=lambda: ["pre"])
    axes: List[StudyAxis] = field(default_factory=list)
    num_uops: int = DEFAULT_STUDY_UOPS
    max_cycles: Optional[int] = None
    base_core: Dict[str, Any] = field(default_factory=dict)
    base_hierarchy: Dict[str, Any] = field(default_factory=dict)
    probes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------ validation

    def resolved_workloads(self) -> List[str]:
        """The workload list, validated against the registry."""
        if not self.workloads:
            raise ValueError(f"study {self.name!r} selects no workloads")
        return resolve_workloads(self.workloads)

    def resolved_variants(self) -> List[str]:
        """The variant list with the ``ooo`` baseline prepended, validated."""
        return resolve_variants(self.variants)

    # ------------------------------------------------------------- expansion

    def expand(self) -> List[StudyPoint]:
        """The cartesian product of axis points, in deterministic axis order.

        Axis order is significant (earlier axes vary slowest, matching
        ``itertools.product``), and two axes overriding the same field is a
        spec bug reported here rather than silently last-writer-wins.
        """
        if not self.axes:
            raise ValueError(f"study {self.name!r} declares no axes")
        for axis in self.axes:
            if not axis.points:
                raise ValueError(
                    f"study {self.name!r}: axis {axis.name!r} has no points"
                )
        # Validate core override names here (hierarchy paths are checked by
        # apply_hierarchy_overrides): a typo'd field must be a clean spec
        # error, not a TypeError from dataclasses.replace at run time.
        valid_core = {f.name for f in dataclasses.fields(CoreConfig)}
        for source, overrides in [("base_core", self.base_core)] + [
            (f"axis {axis.name!r}", point.core)
            for axis in self.axes
            for point in axis.points
        ]:
            unknown = sorted(set(overrides) - valid_core)
            if unknown:
                raise KeyError(
                    f"study {self.name!r}: unknown CoreConfig field(s) "
                    f"{', '.join(map(repr, unknown))} in {source}; valid fields: "
                    f"{', '.join(sorted(valid_core))}"
                )
        points: List[StudyPoint] = []
        for combo in itertools.product(*(axis.points for axis in self.axes)):
            core: Dict[str, Any] = dict(self.base_core)
            hierarchy: Dict[str, Any] = dict(self.base_hierarchy)
            multicore: Dict[str, Any] = {}
            seen_core: Dict[str, str] = {}
            seen_hier: Dict[str, str] = {}
            seen_multicore: Dict[str, str] = {}
            for axis, point in zip(self.axes, combo):
                for key, value in point.core.items():
                    if key in seen_core:
                        raise ValueError(
                            f"study {self.name!r}: axes {seen_core[key]!r} and "
                            f"{axis.name!r} both override core field {key!r}"
                        )
                    seen_core[key] = axis.name
                    core[key] = value
                for key, value in point.hierarchy.items():
                    if key in seen_hier:
                        raise ValueError(
                            f"study {self.name!r}: axes {seen_hier[key]!r} and "
                            f"{axis.name!r} both override hierarchy field {key!r}"
                        )
                    seen_hier[key] = axis.name
                    hierarchy[key] = value
                for key, value in point.multicore.items():
                    if key in seen_multicore:
                        raise ValueError(
                            f"study {self.name!r}: axes {seen_multicore[key]!r} and "
                            f"{axis.name!r} both override multicore key {key!r}"
                        )
                    seen_multicore[key] = axis.name
                    multicore[key] = value
            # Validate merged co-runner keys eagerly: a typo must be a clean
            # spec error at expansion, not a worker-side failure.
            build_multicore_spec(multicore)
            points.append(
                StudyPoint(
                    coordinates={
                        axis.name: point.label for axis, point in zip(self.axes, combo)
                    },
                    core_overrides=core,
                    hierarchy_overrides=hierarchy,
                    multicore_overrides=multicore,
                )
            )
        return points


# -------------------------------------------------------- config construction


def apply_hierarchy_overrides(
    base: Optional[HierarchyConfig], overrides: Dict[str, Any]
) -> Optional[HierarchyConfig]:
    """A new :class:`HierarchyConfig` with dotted-path ``overrides`` applied.

    Goes through the serde dict representation so nested dataclasses
    (``dram.controller_latency_cycles``, ``l1d.latency``) rebuild and
    revalidate; ``base`` is never mutated.  Returns ``base`` unchanged (which
    may be ``None``, meaning "simulator default") when there is nothing to
    apply.
    """
    if not overrides:
        return base
    data = (base or HierarchyConfig()).to_dict()
    for path, value in overrides.items():
        cursor = data
        *parents, leaf = path.split(".")
        walked: List[str] = []
        for part in parents:
            if not isinstance(cursor, dict) or part not in cursor:
                raise KeyError(
                    f"unknown hierarchy override path {path!r} "
                    f"(no field {part!r} under {'.'.join(walked) or 'HierarchyConfig'})"
                )
            walked.append(part)
            cursor = cursor[part]
        if not isinstance(cursor, dict) or leaf not in cursor:
            raise KeyError(
                f"unknown hierarchy override path {path!r} "
                f"(no field {leaf!r} under {'.'.join(walked) or 'HierarchyConfig'})"
            )
        cursor[leaf] = value
    return HierarchyConfig.from_dict(data)


#: Recognised keys of an :class:`AxisPoint`'s ``multicore`` override dict.
_MULTICORE_KEYS = ("co_runners", "co_workload", "co_variant", "address_stride")


def build_multicore_spec(overrides: Dict[str, Any]) -> Optional[MultiCoreSpec]:
    """Turn a study point's multicore override dict into a co-runner spec.

    Recognised keys:

    * ``co_workload`` — registry name of the neighbour workload;
    * ``co_variant`` — the neighbours' core variant (default ``"ooo"``);
    * ``co_runners`` — how many identical neighbours (default ``1`` when a
      ``co_workload`` is given; ``0`` means *no* neighbours but still runs
      through the multi-core path, the natural no-contention baseline inside
      a contention study);
    * ``address_stride`` — per-core address-space spacing.

    An empty dict returns ``None``: the classic single-core path.
    """
    if not overrides:
        return None
    unknown = sorted(set(overrides) - set(_MULTICORE_KEYS))
    if unknown:
        raise KeyError(
            f"unknown multicore override key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(_MULTICORE_KEYS)}"
        )
    co_workload = overrides.get("co_workload", "")
    co_runners = overrides.get(
        "co_runners", 1 if co_workload else 0
    )
    if co_runners < 0:
        raise ValueError(f"co_runners must be >= 0, got {co_runners}")
    if co_runners and not co_workload:
        raise ValueError("co_runners > 0 needs a co_workload")
    if not co_runners and "co_variant" in overrides:
        raise ValueError("co_variant without any co-runner core")
    cores = [
        CoreAssignment(
            workload=co_workload, variant=overrides.get("co_variant", "ooo")
        )
        for _ in range(co_runners)
    ]
    if "address_stride" in overrides:
        return MultiCoreSpec(cores=cores, address_stride=overrides["address_stride"])
    return MultiCoreSpec(cores=cores)


# --------------------------------------------------------------- result model


@dataclass
class StudyPointResult(JSONSerializable):
    """One study point's full workloads x variants comparison grid."""

    point: StudyPoint
    comparison: ComparisonResult


@dataclass
class StudyResult(JSONSerializable):
    """Everything a study run produced, serialisable for ``study report``."""

    spec: StudySpec
    points: List[StudyPointResult]
    total_jobs: int = 0
    simulated: int = 0
    cache_hits: int = 0

    def variants(self) -> List[str]:
        """Variant columns, baseline first."""
        return self.spec.resolved_variants()

    def geomean_ipc(self, point: StudyPointResult, variant: str) -> float:
        """Geometric-mean IPC of ``variant`` across the study's workloads."""
        from repro.simulation.metrics import geometric_mean

        return geometric_mean(
            [bench.results[variant].ipc for bench in point.comparison.benchmarks]
        )

    def mean_speedup_percent(self, point: StudyPointResult, variant: str) -> float:
        """Suite-geomean speedup of ``variant`` over the baseline at ``point``."""
        return point.comparison.mean_speedup_percent(variant, geometric=True)

    def mean_energy_savings_percent(
        self, point: StudyPointResult, variant: str
    ) -> float:
        """Suite-average energy saving of ``variant`` at ``point``."""
        return point.comparison.mean_energy_savings_percent(variant)


# ----------------------------------------------------------------- execution


def study_jobs(spec: StudySpec, engine: ExperimentEngine) -> List[JobSpec]:
    """Expand ``spec``'s cartesian product into fully-configured engine jobs.

    The spec-to-job adapter shared by :func:`run_study` and the experiment
    service: the service expands a submitted study document through this,
    turns the jobs into payloads (``engine.expand_job_payloads``) and probes
    the result cache to report dedupe accounting *at admission time*, before
    anything is scheduled.  Base configs come from ``engine`` so both callers
    resolve overrides identically.
    """
    points = spec.expand()
    workloads = spec.resolved_workloads()
    variants = spec.resolved_variants()
    jobs: List[JobSpec] = []
    for point in points:
        config = engine.config.with_overrides(**point.core_overrides)
        hierarchy = apply_hierarchy_overrides(
            engine.hierarchy_config, point.hierarchy_overrides
        )
        multicore = build_multicore_spec(point.multicore_overrides)
        for workload in workloads:
            for variant in variants:
                jobs.append(
                    JobSpec(
                        workload=workload,
                        variant=variant,
                        num_uops=spec.num_uops,
                        config=config,
                        hierarchy_config=hierarchy,
                        max_cycles=spec.max_cycles,
                        probes=list(spec.probes),
                        multicore=multicore,
                    )
                )
    return jobs


def run_study(
    spec: StudySpec,
    engine: Optional[ExperimentEngine] = None,
    progress=None,
    cell_progress=None,
    executor=None,
) -> StudyResult:
    """Expand ``spec`` and run every cell through ``engine`` in one pass.

    All points' cells go to the engine as a single job batch, so parallelism
    spans the whole cartesian product (not one pool per point) and
    ``engine.last_run_stats`` accounts for the entire study — which is how
    the CLI (and CI) asserts that a warm-cache re-run simulates nothing.
    ``progress`` (optional) is called with one descriptive line per phase;
    ``cell_progress`` is the engine's per-cell callback
    (``(done, total, kind)``), which the service streams as job events.
    """
    engine = engine or ExperimentEngine()
    points = spec.expand()
    workloads = spec.resolved_workloads()
    variants = spec.resolved_variants()
    jobs = study_jobs(spec, engine)
    if progress is not None:
        progress(
            f"study {spec.name!r}: {len(points)} points x {len(workloads)} workloads "
            f"x {len(variants)} variants = {len(jobs)} cells "
            f"({spec.num_uops} micro-ops each)"
        )
    results = engine.run_jobs(jobs, progress=cell_progress, executor=executor)
    stats: EngineRunStats = engine.last_run_stats
    per_point = len(workloads) * len(variants)
    point_results: List[StudyPointResult] = []
    for index, point in enumerate(points):
        chunk = results[index * per_point : (index + 1) * per_point]
        point_results.append(
            StudyPointResult(
                point=point,
                comparison=assemble_comparison(workloads, variants, chunk),
            )
        )
    return StudyResult(
        spec=spec,
        points=point_results,
        total_jobs=stats.total_jobs,
        simulated=stats.simulated,
        cache_hits=stats.cache_hits,
    )


# ------------------------------------------------------------------- registry

#: Named sensitivity studies: factories return a fresh :class:`StudySpec`.
STUDY_REGISTRY = Registry("study", plural="studies")


def register_study(
    name: str,
    *,
    label: Optional[str] = None,
    description: str = "",
    replace: bool = False,
    **metadata: Any,
):
    """Decorator registering a :class:`StudySpec` factory as a named study."""
    return STUDY_REGISTRY.register(
        name, label=label, description=description, replace=replace, **metadata
    )


def build_study(
    name: str,
    num_uops: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
) -> StudySpec:
    """Build a registered study's spec, optionally narrowing it for smoke runs."""
    spec: StudySpec = STUDY_REGISTRY.get(name).create()
    overrides: Dict[str, Any] = {}
    if num_uops is not None:
        overrides["num_uops"] = num_uops
    if workloads is not None:
        overrides["workloads"] = list(workloads)
    if variants is not None:
        overrides["variants"] = list(variants)
    return replace(spec, **overrides) if overrides else spec


# ----------------------------------------------------- paper-grounded studies


@register_study(
    "rob-scaling",
    description="PRE speedup vs reorder-buffer depth (128..384 entries)",
)
def _rob_scaling_study() -> StudySpec:
    # Section 5's premise is that full-window stalls dominate as the window
    # grows; the PRDQ mirrors the ROB (one recycled-register slot per ROB
    # entry), so both scale together on this axis.
    return StudySpec(
        name="rob-scaling",
        description=(
            "How runahead's benefit moves with out-of-order window depth: "
            "each point scales the ROB (and the PRDQ that shadows it)."
        ),
        variants=["runahead", "pre"],
        axes=[
            StudyAxis(
                name="rob_size",
                points=[
                    AxisPoint(
                        label=str(size),
                        core={"rob_size": size, "prdq_entries": size},
                    )
                    for size in (128, 192, 256, 384)
                ],
            )
        ],
    )


@register_study(
    "emq-sensitivity",
    description="PRE vs PRE+EMQ across EMQ capacities (96..768 entries)",
)
def _emq_sensitivity_study() -> StudySpec:
    # Section 3.6/4: the EMQ decouples runahead issue from the issue queue;
    # the paper sizes it at 768 entries and reports diminishing returns.
    return StudySpec(
        name="emq-sensitivity",
        description=(
            "Whether the enhanced memorisation queue pays for its SRAM: "
            "sweeps EMQ capacity under both PRE variants."
        ),
        variants=["pre", "pre_emq"],
        axes=[StudyAxis.core_field("emq_entries", [96, 192, 384, 768])],
    )


@register_study(
    "mshr-prefetch-interaction",
    description="MSHR capacity x hardware prefetcher (2-axis cartesian grid)",
)
def _mshr_prefetch_study() -> StudySpec:
    # Section 5.3 discusses runahead alongside conventional prefetching; the
    # MSHR file bounds the memory-level parallelism either mechanism can
    # expose, so the two knobs interact and get a full cartesian grid.
    return StudySpec(
        name="mshr-prefetch-interaction",
        description=(
            "Does PRE still win when a hardware prefetcher competes for "
            "MSHRs?  8/16/32 entries x none/nextline/stride."
        ),
        variants=["pre"],
        axes=[
            StudyAxis.hierarchy_field("mshr_entries", [8, 16, 32]),
            StudyAxis.hierarchy_field("prefetcher", ["none", "nextline", "stride"]),
        ],
    )


@register_study(
    "multicore-contention",
    description="PRE vs shared-L3/DRAM contention from an mcf neighbour core",
)
def _multicore_contention_study() -> StudySpec:
    # The paper evaluates single-core PRE; the natural multi-core question is
    # whether its prefetch-like runahead traffic hurts a neighbour (and how
    # much a neighbour's traffic hurts it).  bwaves is the streaming,
    # bandwidth-hungry victim; mcf the pointer-chasing, DRAM-bound neighbour.
    # The "none" point runs the degenerate one-core multi-core path, so all
    # three points are directly comparable by construction.
    return StudySpec(
        name="multicore-contention",
        description=(
            "Per-core IPC and shared-bus/DRAM-queue attribution for a bwaves "
            "focus core running alone, next to an OoO neighbour, and next to "
            "a PRE neighbour (both running mcf)."
        ),
        workloads=["bwaves"],
        variants=["pre"],
        axes=[
            StudyAxis(
                name="neighbor",
                points=[
                    AxisPoint(label="none", multicore={"co_runners": 0}),
                    AxisPoint(
                        label="ooo",
                        multicore={"co_workload": "mcf", "co_variant": "ooo"},
                    ),
                    AxisPoint(
                        label="pre",
                        multicore={"co_workload": "mcf", "co_variant": "pre"},
                    ),
                ],
            )
        ],
    )


@register_study(
    "dram-latency",
    description="Runahead benefit vs DRAM controller latency (20..160 cycles)",
)
def _dram_latency_study() -> StudySpec:
    # Runahead exists to hide off-chip latency: the longer the miss, the more
    # cycles there are to prefetch under.  Sweeps the fixed controller +
    # interconnect overhead on top of the banked timing model.
    return StudySpec(
        name="dram-latency",
        description=(
            "Scaling the off-chip round trip: runahead's gain should grow "
            "with memory latency while the baseline IPC collapses."
        ),
        variants=["runahead", "pre"],
        axes=[
            StudyAxis.hierarchy_field(
                "dram.controller_latency_cycles", [20, 40, 80, 160]
            )
        ],
    )


__all__ = [
    "AxisPoint",
    "DEFAULT_STUDY_UOPS",
    "DEFAULT_STUDY_WORKLOADS",
    "STUDY_REGISTRY",
    "StudyAxis",
    "StudyPoint",
    "StudyPointResult",
    "StudyResult",
    "StudySpec",
    "apply_hierarchy_overrides",
    "build_multicore_spec",
    "build_study",
    "register_study",
    "run_study",
    "study_jobs",
]
