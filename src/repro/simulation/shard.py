"""Sharded single-trace replay: split one trace into windows, stitch the stats.

A full-detail replay of a long recorded trace is embarrassingly serial — one
core model, one commit stream.  This module trades a little accuracy for
wall-clock: it splits the trace into ``N`` contiguous shards, runs each shard
as an independent :class:`~repro.workloads.source.WindowedSource` job through
the :class:`~repro.simulation.engine.ExperimentEngine` (process pool + result
cache), and combines the per-shard statistics into whole-trace estimates with
the same weighting rule the SimPoint path uses
(:func:`~repro.simulation.simulator._weighted_core_stats`).

Each shard after the first starts from a cold core, which is not how those
micro-ops execute in an unsharded run.  Two mitigations keep the estimate
honest:

* a **warmup prefix**: each shard first simulates up to ``warmup_uops``
  micro-ops *preceding* its window — warming caches, branch predictors and
  queues — and the stats-reset seam in the core excludes those commits from
  the shard's statistics;
* **exactness by construction** for the degenerate plan: one shard with zero
  warmup covers the whole trace, bypasses stitching entirely, and is
  bit-identical to an ordinary :func:`~repro.simulation.simulator.run_variant`
  call (it even shares the same result-cache key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.memory.hierarchy import HierarchyConfig
from repro.serde import JSONSerializable
from repro.simulation.engine import ExperimentEngine
from repro.simulation.simulator import (
    SimulationResult,
    _weighted_core_stats,
)
from repro.uarch.config import CoreConfig
from repro.uarch.stats import CoreStats
from repro.workloads.source import TraceSource, as_source
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class Shard(JSONSerializable):
    """One contiguous slice of a trace: warmup prefix plus measured window.

    The measured micro-ops are ``[start, end)``; the shard's simulation
    actually begins at ``warmup_start`` (``<= start``), and the commits in
    ``[warmup_start, start)`` warm the core without being counted.
    """

    index: int
    start: int
    end: int
    warmup_start: int

    def __post_init__(self) -> None:
        if not 0 <= self.warmup_start <= self.start < self.end:
            raise ValueError(
                f"invalid shard bounds: warmup_start={self.warmup_start}, "
                f"start={self.start}, end={self.end}"
            )

    @property
    def measured_uops(self) -> int:
        """Micro-ops whose execution counts in this shard's statistics."""
        return self.end - self.start

    @property
    def warmup_uops(self) -> int:
        """Micro-ops simulated before the window purely to warm the core."""
        return self.start - self.warmup_start


@dataclass(frozen=True)
class ShardPlan(JSONSerializable):
    """A deterministic split of a known-length trace into measured windows.

    The shards partition ``[0, total_uops)`` exactly: contiguous,
    non-overlapping, in order.  ``warmup_uops`` is the *requested* warmup;
    each shard's actual prefix is clamped so it never reaches before the
    trace's beginning (shard 0 always has zero warmup).
    """

    total_uops: int
    warmup_uops: int
    shards: Tuple[Shard, ...]

    @property
    def exact(self) -> bool:
        """Whether this plan reproduces an unsharded run bit-for-bit.

        True only for the single-shard, zero-warmup plan: the one window
        covers the whole trace and the stitching step is skipped entirely.
        """
        return (
            len(self.shards) == 1
            and self.shards[0].warmup_uops == 0
            and self.shards[0].start == 0
            and self.shards[0].end == self.total_uops
        )

    def weights(self) -> List[float]:
        """Each shard's share of the trace (sums to 1.0)."""
        return [shard.measured_uops / self.total_uops for shard in self.shards]


def plan_shards(total_uops: int, num_shards: int, warmup_uops: int = 0) -> ShardPlan:
    """Split ``total_uops`` micro-ops into ``num_shards`` contiguous windows.

    Windows are as equal as possible (the remainder goes to the earliest
    shards, so sizes differ by at most one micro-op) and each shard's warmup
    prefix is ``warmup_uops`` clamped at the trace's beginning.  More shards
    than micro-ops is quietly clamped rather than an error — tiny traces
    still shard.
    """
    if total_uops <= 0:
        raise ValueError(f"cannot shard an empty trace (total_uops={total_uops})")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if warmup_uops < 0:
        raise ValueError(f"warmup_uops must be >= 0, got {warmup_uops}")
    num_shards = min(num_shards, total_uops)
    base, remainder = divmod(total_uops, num_shards)
    shards: List[Shard] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < remainder else 0)
        end = start + size
        shards.append(
            Shard(
                index=index,
                start=start,
                end=end,
                warmup_start=max(0, start - warmup_uops),
            )
        )
        start = end
    return ShardPlan(
        total_uops=total_uops, warmup_uops=warmup_uops, shards=tuple(shards)
    )


@dataclass
class ShardResult(JSONSerializable):
    """One shard's window run and its stitching weight."""

    shard: Shard
    weight: float
    result: SimulationResult


@dataclass
class ShardedRunResult(JSONSerializable):
    """A sharded replay: per-shard runs plus stitched whole-trace estimates."""

    variant: str
    trace_name: str
    total_uops: int
    warmup_uops: int
    shards: List[ShardResult]
    stitched_stats: CoreStats
    #: True when the plan was the degenerate exact one (single shard, no
    #: warmup): ``stitched_stats`` is then *the* whole-run statistics, not an
    #: estimate.
    exact: bool = False

    @property
    def stitched_ipc(self) -> float:
        """Whole-trace IPC estimated from the stitched statistics."""
        return self.stitched_stats.ipc

    @property
    def simulated_uops(self) -> int:
        """Total micro-ops simulated, warmup prefixes included."""
        return sum(
            entry.shard.measured_uops + entry.shard.warmup_uops
            for entry in self.shards
        )


def run_sharded(
    trace: Union[Trace, TraceSource],
    variant: str = "pre",
    shards: int = 1,
    warmup_uops: int = 0,
    *,
    engine: Optional[ExperimentEngine] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    max_cycles: Optional[int] = None,
    probes: Sequence[str] = (),
    progress=None,
    executor=None,
) -> ShardedRunResult:
    """Replay one trace as ``shards`` parallel windows and stitch the stats.

    The trace's length must be discoverable: recorded trace files and
    in-memory traces know theirs; an unbounded generator source is
    materialised first (at which point sharding it is pointless but legal).
    ``probes`` must be registry names — every shard gets fresh instances, and
    windowed jobs cross the engine's process/serde boundary.

    ``shards=1`` with ``warmup_uops=0`` is the exact path: the single window
    is normalised to an un-windowed job (same cache key as a plain replay)
    and its statistics are returned as-is, skipping the weighted stitch and
    its float round-off entirely.
    """
    for probe in probes:
        if not isinstance(probe, str):
            raise TypeError(
                "run_sharded accepts probe registry names only (got "
                f"{type(probe).__name__}): shard jobs cross a process "
                "boundary and each shard needs fresh probe instances"
            )
    source = as_source(trace)
    total = source.length
    if total is None:
        source = source.materialized()
        total = source.length
    plan = plan_shards(total, shards, warmup_uops)
    if engine is None:
        engine = ExperimentEngine(
            workers=workers,
            cache_dir=cache_dir,
            config=config,
            hierarchy_config=hierarchy_config,
        )
    results = engine.run_trace_windows(
        source,
        variant=variant,
        windows=[
            (shard.start, shard.end, shard.warmup_uops) for shard in plan.shards
        ],
        config=config,
        hierarchy_config=hierarchy_config,
        max_cycles=max_cycles,
        probes=list(probes),
        progress=progress,
        executor=executor,
    )
    weights = plan.weights()
    shard_results = [
        ShardResult(shard=shard, weight=weight, result=result)
        for shard, weight, result in zip(plan.shards, weights, results)
    ]
    if plan.exact:
        # The single whole-trace window *is* the run; no weighting, no
        # rounding — bit-identical to run_variant on the same source.
        stitched = shard_results[0].result.stats
    else:
        stitched = _weighted_core_stats(
            [(entry.result.stats, entry.weight) for entry in shard_results],
            plan.total_uops,
        )
    return ShardedRunResult(
        variant=variant,
        trace_name=source.name,
        total_uops=plan.total_uops,
        warmup_uops=plan.warmup_uops,
        shards=shard_results,
        stitched_stats=stitched,
        exact=plan.exact,
    )


# ------------------------------------------------------- declarative replays


@dataclass
class ReplaySpec(JSONSerializable):
    """A serde-round-trippable description of one sharded trace replay.

    The spec-to-job adapter for the experiment service: a submitted
    ``{"kind": "replay"}`` document parses into this, expands into engine
    window payloads (for admission-time cache dedupe) and executes via
    :func:`run_replay_spec` — the same path ``trace replay --shards`` takes,
    minus the CLI.  ``trace_file`` must be a recorded trace path readable by
    the server; its *content digest* (not the path) keys the cache.
    """

    trace_file: str
    variant: str = "pre"
    shards: int = 1
    warmup_uops: int = 0
    max_cycles: Optional[int] = None
    probes: List[str] = field(default_factory=list)

    def validate(self) -> None:
        """Raise ``ValueError`` on bounds the planner would reject anyway."""
        if not self.trace_file:
            raise ValueError("replay spec needs a trace_file path")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.warmup_uops < 0:
            raise ValueError(f"warmup_uops must be >= 0, got {self.warmup_uops}")

    def plan(self, total_uops: int) -> ShardPlan:
        """The shard plan this spec implies for a trace of ``total_uops``."""
        self.validate()
        return plan_shards(total_uops, self.shards, self.warmup_uops)

    def windows(self, total_uops: int) -> List[Tuple[int, int, int]]:
        """``(start, end, warmup)`` triples for the engine's window API."""
        return [
            (shard.start, shard.end, shard.warmup_uops)
            for shard in self.plan(total_uops).shards
        ]


def run_replay_spec(
    spec: ReplaySpec,
    engine: Optional[ExperimentEngine] = None,
    progress=None,
    executor=None,
) -> ShardedRunResult:
    """Execute a :class:`ReplaySpec` through ``engine`` (the service path)."""
    from repro.workloads.source import FileTraceSource

    spec.validate()
    return run_sharded(
        FileTraceSource(spec.trace_file),
        variant=spec.variant,
        shards=spec.shards,
        warmup_uops=spec.warmup_uops,
        engine=engine,
        max_cycles=spec.max_cycles,
        probes=list(spec.probes),
        progress=progress,
        executor=executor,
    )


__all__ = [
    "ReplaySpec",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "ShardedRunResult",
    "plan_shards",
    "run_replay_spec",
    "run_sharded",
]
