"""Single-run simulation driver.

``run_variant`` (or the :class:`Simulator` convenience wrapper) builds a fresh
memory hierarchy and core for one (trace, variant) pair, runs it to
completion, evaluates the energy model, and returns everything an experiment
needs in a :class:`SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core import VARIANT_LABELS, VARIANTS, build_controller
from repro.core.pre import PreciseRunaheadController
from repro.core.runahead_buffer import RunaheadBufferController
from repro.energy.cacti import SRAMModel
from repro.energy.model import EnergyModel, EnergyReport
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.registry import VARIANT_REGISTRY
from repro.serde import JSONSerializable
from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore
from repro.uarch.stats import CoreStats
from repro.workloads.trace import Trace


@dataclass
class SimulationResult(JSONSerializable):
    """Everything measured from one (trace, variant) simulation."""

    variant: str
    trace_name: str
    stats: CoreStats
    energy: EnergyReport
    config: CoreConfig

    @property
    def label(self) -> str:
        """The paper's label for this variant (OoO, RA, RA-buffer, PRE, PRE+EMQ)."""
        return VARIANT_LABELS.get(self.variant, self.variant)

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle."""
        return self.stats.ipc

    @property
    def total_energy_nj(self) -> float:
        """Total core + DRAM energy in nanojoules."""
        return self.energy.total_nj


def _runahead_sram_models(core: OoOCore) -> Dict[str, SRAMModel]:
    """SRAM models for the runahead structures present in ``core``'s controller."""
    models: Dict[str, SRAMModel] = {}
    controller = core.controller
    if isinstance(controller, PreciseRunaheadController):
        if controller.sst is not None:
            models["sst"] = SRAMModel(
                "sst", controller.sst.storage_bytes, read_ports=8, write_ports=2
            )
        if controller.prdq is not None:
            models["prdq"] = SRAMModel(
                "prdq", controller.prdq.storage_bytes, read_ports=4, write_ports=4
            )
        if controller.emq is not None:
            models["emq"] = SRAMModel(
                "emq", controller.emq.storage_bytes, read_ports=4, write_ports=4
            )
    if isinstance(controller, RunaheadBufferController):
        models["runahead_buffer"] = SRAMModel("runahead_buffer", controller.storage_bytes)
    return models


def run_variant(
    trace: Trace,
    variant: str = "pre",
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    energy_model: Optional[EnergyModel] = None,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Simulate ``trace`` on one runahead variant and return its results."""
    if variant not in VARIANT_REGISTRY:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of "
            f"{', '.join(VARIANT_REGISTRY.names())}"
        )
    config = config or CoreConfig()
    hierarchy = MemoryHierarchy(hierarchy_config)
    controller = build_controller(variant)
    core = OoOCore(trace, config=config, hierarchy=hierarchy, controller=controller)
    stats = core.run(max_cycles=max_cycles)
    model = energy_model or EnergyModel()
    report = model.evaluate(
        variant=variant,
        stats=stats,
        hierarchy=hierarchy,
        config=config,
        extra_sram=_runahead_sram_models(core),
    )
    return SimulationResult(
        variant=variant,
        trace_name=trace.name,
        stats=stats,
        energy=report,
        config=config,
    )


class Simulator:
    """Convenience wrapper that reuses one configuration across many runs."""

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        hierarchy_config: Optional[HierarchyConfig] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.config = config or CoreConfig()
        self.hierarchy_config = hierarchy_config
        self.energy_model = energy_model or EnergyModel()

    def run(
        self, trace: Trace, variant: str = "pre", max_cycles: Optional[int] = None
    ) -> SimulationResult:
        """Simulate one trace on one variant."""
        return run_variant(
            trace,
            variant=variant,
            config=self.config,
            hierarchy_config=self.hierarchy_config,
            energy_model=self.energy_model,
            max_cycles=max_cycles,
        )

    def run_all_variants(
        self, trace: Trace, variants=VARIANTS, max_cycles: Optional[int] = None
    ) -> Dict[str, SimulationResult]:
        """Simulate one trace on every requested variant."""
        return {
            variant: self.run(trace, variant=variant, max_cycles=max_cycles)
            for variant in variants
        }
