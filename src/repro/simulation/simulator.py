"""Single-run simulation driver.

``run_variant`` (or the :class:`Simulator` convenience wrapper) builds a fresh
memory hierarchy and core for one (trace, variant) pair, runs it to
completion, evaluates the energy model, and returns everything an experiment
needs in a :class:`SimulationResult`.

Workloads are accepted either as an in-memory
:class:`~repro.workloads.trace.Trace` (the original, backward-compatible
path) or as any :class:`~repro.workloads.source.TraceSource` — streaming
generator, recorded trace file, SimPoint window — which the core consumes
lazily.  Instrumentation probes (registry names or
:class:`~repro.uarch.probes.Probe` instances) can be attached per run; their
findings land in :attr:`SimulationResult.probe_reports`.

:func:`run_simpoints` is the SimPoint execution path the paper's methodology
implies: cluster a workload's intervals, simulate only the representative
windows, and report weighted whole-trace statistics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core import VARIANT_LABELS, VARIANTS, build_controller
from repro.core.pre import PreciseRunaheadController
from repro.core.runahead_buffer import RunaheadBufferController
from repro.energy.cacti import SRAMModel
from repro.energy.model import EnergyModel, EnergyReport
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.registry import VARIANT_REGISTRY
from repro.serde import JSONSerializable
from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore
from repro.uarch.probes import Probe, build_probe, default_probes
from repro.uarch.stats import CoreStats
from repro.workloads.simpoint import SimPointSampler
from repro.workloads.source import TraceSource, as_source
from repro.workloads.trace import Trace

#: Accepted workload argument: an eager trace or any streaming source.
TraceLike = Union[Trace, TraceSource]

#: Accepted probe argument: registry names or ready-made instances.
ProbeLike = Union[str, Probe]


@dataclass
class SimulationRequest(JSONSerializable):
    """Everything that defines one simulation run, as one serialisable value.

    This is the request side of :func:`run_simulation`: a single dataclass
    that round-trips through serde, so experiment infrastructure (engine
    jobs, shards, SimPoint windows) can build, hash and ship run parameters
    without keyword-argument drift.  ``probes`` holds registry *names* only —
    fresh instances are built per run, which keeps requests serialisable and
    probe state per-run; ready-made :class:`~repro.uarch.probes.Probe`
    instances go through ``run_simulation``'s ``extra_probes`` argument
    instead.
    """

    variant: str = "pre"
    config: Optional[CoreConfig] = None
    hierarchy_config: Optional[HierarchyConfig] = None
    max_cycles: Optional[int] = None
    #: Probe registry names (instances are deliberately not representable).
    probes: List[str] = field(default_factory=list)
    #: Committed micro-ops excluded from the returned statistics (state kept).
    warmup_uops: int = 0


@dataclass
class CoreResult(JSONSerializable):
    """One core's slice of a multi-core simulation."""

    core_id: int = 0
    variant: str = "ooo"
    trace_name: str = ""
    stats: CoreStats = field(default_factory=CoreStats)

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle on this core."""
        return self.stats.ipc


@dataclass
class UncoreReport(JSONSerializable):
    """Shared L3/DRAM/bus usage of a multi-core run, attributed per core.

    Each list has one entry per core (index = ``core_id``); the counters are
    copied off the :class:`~repro.memory.hierarchy.SharedUncore` at the end of
    the run.  Queue-delay and bus-busy cycles attribute *contention*: how long
    each core's DRAM requests waited on busy banks/bus, and how long its
    transfers occupied the shared data bus.
    """

    l3_hits: List[int] = field(default_factory=list)
    l3_misses: List[int] = field(default_factory=list)
    dram_reads: List[int] = field(default_factory=list)
    dram_writes: List[int] = field(default_factory=list)
    dram_queue_delay_cycles: List[int] = field(default_factory=list)
    bus_busy_cycles: List[int] = field(default_factory=list)

    @property
    def num_cores(self) -> int:
        """Number of cores sharing the uncore."""
        return len(self.l3_hits)


@dataclass
class SimulationResult(JSONSerializable):
    """Everything measured from one (trace, variant) simulation."""

    variant: str
    trace_name: str
    stats: CoreStats
    energy: EnergyReport
    config: CoreConfig
    #: Findings of explicitly attached probes, keyed by probe name.
    probe_reports: Dict[str, Any] = field(default_factory=dict)
    #: Per-core results of a multi-core run (empty for single-core runs).
    #: Core 0 is the focus core; its stats also fill the top-level fields.
    cores: List[CoreResult] = field(default_factory=list)
    #: Shared-resource usage attributed per core (multi-core runs only).
    uncore: Optional[UncoreReport] = None

    @property
    def label(self) -> str:
        """The paper's label for this variant (OoO, RA, RA-buffer, PRE, PRE+EMQ)."""
        return VARIANT_LABELS.get(self.variant, self.variant)

    @property
    def cycles(self) -> int:
        """Total simulated cycles."""
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle."""
        return self.stats.ipc

    @property
    def total_energy_nj(self) -> float:
        """Total core + DRAM energy in nanojoules."""
        return self.energy.total_nj


def _runahead_sram_models(core: OoOCore) -> Dict[str, SRAMModel]:
    """SRAM models for the runahead structures present in ``core``'s controller."""
    models: Dict[str, SRAMModel] = {}
    controller = core.controller
    if isinstance(controller, PreciseRunaheadController):
        if controller.sst is not None:
            models["sst"] = SRAMModel(
                "sst", controller.sst.storage_bytes, read_ports=8, write_ports=2
            )
        if controller.prdq is not None:
            models["prdq"] = SRAMModel(
                "prdq", controller.prdq.storage_bytes, read_ports=4, write_ports=4
            )
        if controller.emq is not None:
            models["emq"] = SRAMModel(
                "emq", controller.emq.storage_bytes, read_ports=4, write_ports=4
            )
    if isinstance(controller, RunaheadBufferController):
        models["runahead_buffer"] = SRAMModel("runahead_buffer", controller.storage_bytes)
    return models


def resolve_probes(probes: Optional[Sequence[ProbeLike]]) -> List[Probe]:
    """Materialise a probe argument list (registry names become fresh instances)."""
    return [build_probe(probe) for probe in (probes or ())]


def run_simulation(
    trace: TraceLike,
    request: Optional[SimulationRequest] = None,
    *,
    energy_model: Optional[EnergyModel] = None,
    extra_probes: Sequence[ProbeLike] = (),
) -> SimulationResult:
    """Simulate a trace or source as described by a :class:`SimulationRequest`.

    ``warmup_uops`` (on the request) excludes the first that-many committed
    micro-ops from the returned statistics (microarchitectural state is kept —
    that is the point): shard runs use it so stats describe only the measured
    window while caches, predictors and queues enter it warm.  ``0`` (the
    default) is the exact, bit-identical whole-run path.

    ``energy_model`` and ``extra_probes`` sit outside the request because they
    carry live objects that cannot (and should not) serialise: a custom model
    and ready-made probe instances are an in-process affair.
    """
    request = request or SimulationRequest()
    if request.variant not in VARIANT_REGISTRY:
        raise ValueError(
            f"unknown variant {request.variant!r}; expected one of "
            f"{', '.join(VARIANT_REGISTRY.names())}"
        )
    if request.warmup_uops < 0:
        raise ValueError(f"warmup_uops must be >= 0, got {request.warmup_uops}")
    source = as_source(trace)
    config = request.config or CoreConfig()
    hierarchy = MemoryHierarchy(request.hierarchy_config)
    controller = build_controller(request.variant)
    attached = resolve_probes(request.probes) + resolve_probes(extra_probes)
    core = OoOCore(
        source,
        config=config,
        hierarchy=hierarchy,
        controller=controller,
        probes=default_probes() + attached,
    )
    stats = core.run(
        max_cycles=request.max_cycles,
        stats_start_uop=request.warmup_uops or None,
    )
    model = energy_model or EnergyModel()
    report = model.evaluate(
        variant=request.variant,
        stats=stats,
        hierarchy=hierarchy,
        config=config,
        extra_sram=_runahead_sram_models(core),
    )
    return SimulationResult(
        variant=request.variant,
        trace_name=source.name,
        stats=stats,
        energy=report,
        config=config,
        # Default probes report None, so this is exactly the extras' findings.
        probe_reports=core.probes.reports(),
    )


def run_variant(
    trace: TraceLike,
    variant: str = "pre",
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    energy_model: Optional[EnergyModel] = None,
    max_cycles: Optional[int] = None,
    probes: Optional[Sequence[ProbeLike]] = None,
    warmup_uops: int = 0,
) -> SimulationResult:
    """Simulate a trace or source on one runahead variant and return its results.

    Deprecated keyword-argument spelling of :func:`run_simulation`: the run
    parameters now live in a :class:`SimulationRequest`, and this shim simply
    builds one.  Kept (indefinitely) because half the test suite and every
    notebook calls it; new call sites should construct a request.
    """
    request = SimulationRequest(
        variant=variant,
        config=config,
        hierarchy_config=hierarchy_config,
        max_cycles=max_cycles,
        warmup_uops=warmup_uops,
    )
    # All probes ride through ``extra_probes`` (names resolve identically
    # there, and mixed name/instance lists keep their relative order).
    return run_simulation(
        trace,
        request,
        energy_model=energy_model,
        extra_probes=list(probes or ()),
    )


class Simulator:
    """Convenience wrapper that reuses one configuration across many runs."""

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        hierarchy_config: Optional[HierarchyConfig] = None,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        self.config = config or CoreConfig()
        self.hierarchy_config = hierarchy_config
        self.energy_model = energy_model or EnergyModel()

    def run(
        self,
        trace: TraceLike,
        variant: str = "pre",
        max_cycles: Optional[int] = None,
        probes: Optional[Sequence[ProbeLike]] = None,
    ) -> SimulationResult:
        """Simulate one trace (or source) on one variant."""
        return run_variant(
            trace,
            variant=variant,
            config=self.config,
            hierarchy_config=self.hierarchy_config,
            energy_model=self.energy_model,
            max_cycles=max_cycles,
            probes=probes,
        )

    def run_all_variants(
        self, trace: TraceLike, variants=VARIANTS, max_cycles: Optional[int] = None
    ) -> Dict[str, SimulationResult]:
        """Simulate one trace (or source) on every requested variant."""
        return {
            variant: self.run(trace, variant=variant, max_cycles=max_cycles)
            for variant in variants
        }


# ---------------------------------------------------------- SimPoint execution


@dataclass
class SimPointIntervalResult(JSONSerializable):
    """One representative interval's window run."""

    start: int
    end: int
    weight: float
    result: SimulationResult

    @property
    def length(self) -> int:
        """Micro-ops in the interval."""
        return self.end - self.start


@dataclass
class SimPointRunResult(JSONSerializable):
    """A SimPoint-sampled simulation: window runs plus weighted whole-trace stats."""

    variant: str
    trace_name: str
    total_uops: int
    simulated_uops: int
    intervals: List[SimPointIntervalResult]
    weighted_stats: CoreStats

    @property
    def weighted_ipc(self) -> float:
        """Whole-trace IPC estimated from the weighted interval runs."""
        return self.weighted_stats.ipc

    @property
    def sampling_fraction(self) -> float:
        """Fraction of the trace actually simulated."""
        return self.simulated_uops / self.total_uops if self.total_uops else 0.0


def _weighted_core_stats(
    weighted: Sequence[Tuple[CoreStats, float]], total_uops: int
) -> CoreStats:
    """Scale per-interval stats to whole-trace estimates (SimPoint weighting).

    Every integer counter is treated as a per-committed-uop rate, combined
    across intervals by weight and scaled to ``total_uops``; the classic
    ``CPI = sum(w_i * CPI_i)`` falls out of the ``cycles`` field.  List-valued
    fields (intervals, snapshots) are per-window artifacts and stay empty.
    Intervals that committed nothing (e.g. a ``max_cycles`` budget expired
    mid-miss) carry no rate information, so the remaining weights are
    renormalised rather than silently shrinking every estimate.
    """
    aggregate = CoreStats()
    usable = [(stats, weight) for stats, weight in weighted if stats.committed_uops]
    total_weight = sum(weight for _, weight in usable)
    if not usable or not total_uops or not total_weight:
        return aggregate
    for stats_field in dataclasses.fields(CoreStats):
        if stats_field.name == "events":
            continue
        if not isinstance(getattr(aggregate, stats_field.name), int):
            continue
        rate = sum(
            weight * getattr(stats, stats_field.name) / stats.committed_uops
            for stats, weight in usable
        )
        setattr(aggregate, stats_field.name, round(rate / total_weight * total_uops))
    for event_field in dataclasses.fields(type(aggregate.events)):
        rate = sum(
            weight * getattr(stats.events, event_field.name) / stats.committed_uops
            for stats, weight in usable
        )
        setattr(aggregate.events, event_field.name, round(rate / total_weight * total_uops))
    aggregate.committed_uops = total_uops
    return aggregate


def run_simpoints(
    trace: TraceLike,
    variant: str = "pre",
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    energy_model: Optional[EnergyModel] = None,
    max_cycles: Optional[int] = None,
    probes: Optional[Sequence[ProbeLike]] = None,
    interval_size: int = 2_000,
    max_clusters: int = 4,
    seed: int = 0,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[Any] = None,
) -> SimPointRunResult:
    """Simulate only a workload's representative SimPoint intervals.

    The sampler clusters fixed-size intervals in one streaming pass (no
    materialisation), each representative interval runs as a
    :class:`~repro.workloads.source.WindowedSource`, and the per-interval
    statistics are combined with the clusters' weights into whole-trace
    estimates — strictly fewer micro-ops simulated than a full run, one
    weighted answer out.

    Interval runs go through the
    :class:`~repro.simulation.engine.ExperimentEngine` window path: pass
    ``workers``/``cache_dir`` (or a ready-made ``engine``) and intervals run
    on the process pool and land in the shared
    :class:`~repro.simulation.engine.ResultCache` — a repeated SimPoint run
    re-simulates nothing.  A custom ``energy_model`` cannot cross the
    engine's process/serde boundary, so that case runs the windows serially
    in-process (the original path, identical results).

    ``probes`` must be registry *names*: each interval gets fresh probe
    instances, so per-interval ``probe_reports`` never accumulate state
    across windows.  (A shared ``Probe`` instance would silently sum all
    intervals into the later reports, so instances are rejected.)
    """
    for probe in probes or ():
        if not isinstance(probe, str):
            raise TypeError(
                "run_simpoints accepts probe registry names only (got "
                f"{type(probe).__name__}): a shared Probe instance would "
                "accumulate state across interval runs"
            )
    source = as_source(trace)
    sampler = SimPointSampler(
        interval_size=interval_size, max_clusters=max_clusters, seed=seed
    )
    intervals, total_uops = sampler.select_source(source)
    if energy_model is not None and engine is None:
        request = SimulationRequest(
            variant=variant,
            config=config,
            hierarchy_config=hierarchy_config,
            max_cycles=max_cycles,
            probes=list(probes or ()),
        )
        results = [
            run_simulation(
                source.window(interval.start, interval.end, name=source.name),
                request,
                energy_model=energy_model,
            )
            for interval in intervals
        ]
    else:
        if engine is None:
            # Local import: engine.py imports this module at load time.
            from repro.simulation.engine import ExperimentEngine

            engine = ExperimentEngine(workers=workers, cache_dir=cache_dir)
        results = engine.run_trace_windows(
            source,
            variant=variant,
            windows=[(interval.start, interval.end, 0) for interval in intervals],
            config=config,
            hierarchy_config=hierarchy_config,
            max_cycles=max_cycles,
            probes=list(probes or ()),
        )
    interval_results = [
        SimPointIntervalResult(
            start=interval.start,
            end=interval.end,
            weight=interval.weight,
            result=result,
        )
        for interval, result in zip(intervals, results)
    ]
    weighted_stats = _weighted_core_stats(
        [(entry.result.stats, entry.weight) for entry in interval_results],
        total_uops,
    )
    return SimPointRunResult(
        variant=variant,
        trace_name=source.name,
        total_uops=total_uops,
        simulated_uops=sum(entry.length for entry in interval_results),
        intervals=interval_results,
        weighted_stats=weighted_stats,
    )
