"""Parallel experiment engine with an on-disk result cache.

The paper's evaluation is a cross-product of workloads x core variants
(optionally x configuration overrides).  Every cell of that grid is an
independent simulation, so this module expands a sweep into *jobs* and runs
them:

* **in parallel** across processes (``workers > 1``) via
  ``concurrent.futures.ProcessPoolExecutor``, with a **serial fallback**
  (``workers = 1``, or when the platform cannot spawn processes);
* **deterministically** — jobs are expanded and reassembled in a fixed order,
  and both execution paths funnel each cell through the same worker function
  and the same JSON round-trip, so parallel and serial sweeps produce
  bit-identical :class:`~repro.simulation.experiment.ComparisonResult` tables;
* **incrementally** — with a ``cache_dir``, each finished cell is written to
  disk keyed by a content hash of (workload, variant, configuration), so
  re-running a sweep only simulates cells whose inputs changed.

Workloads are referenced *by name* through
:data:`repro.registry.WORKLOAD_REGISTRY` (worker processes rebuild the trace
locally rather than unpickling megabytes of micro-ops), and variants through
:data:`repro.registry.VARIANT_REGISTRY`; anything registered with
``@register_workload`` / ``@register_variant`` can be swept.  Pre-built
:class:`~repro.workloads.trace.Trace` objects are also accepted
(:meth:`ExperimentEngine.run_traces`) and cached by a digest of their content.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro.workloads  # noqa: F401  (imported for its workload registrations)
from repro.errors import JobCancelled
from repro.memory.hierarchy import HierarchyConfig
from repro.registry import PROBE_REGISTRY, VARIANT_REGISTRY, WORKLOAD_REGISTRY, build_workload
from repro.serde import JSONSerializable, canonical_json
from repro.simulation.experiment import BenchmarkResult, ComparisonResult
from repro.simulation.multicore import MultiCoreSpec, run_multicore
from repro.simulation.simulator import (
    SimulationRequest,
    SimulationResult,
    run_simulation,
)
from repro.uarch.config import CoreConfig
from repro.workloads.source import (
    FileTraceSource,
    TraceSource,
    as_source,
    trace_file_digest,
)
from repro.workloads.trace import Trace

#: Bump when the simulator or result schema changes incompatibly; invalidates
#: every cached result.  v5: multi-core co-runner specs joined the job
#: descriptor and results grew per-core/uncore sections.
CACHE_SCHEMA_VERSION = 5


# --------------------------------------------------------------------- sweeps


@dataclass
class SweepSpec(JSONSerializable):
    """Declarative description of a sweep: benchmarks x variants x configs.

    ``workloads`` are registry names; ``variants`` defaults to every
    registered variant (in figure order); ``configs`` is a list of
    :class:`~repro.uarch.config.CoreConfig` override dicts — one comparison
    grid is produced per entry, enabling ablation sweeps in a single run.
    """

    workloads: Sequence[str]
    variants: Sequence[str] = ()
    num_uops: Optional[int] = None
    max_cycles: Optional[int] = None
    configs: Sequence[Dict[str, Any]] = field(default_factory=lambda: [{}])
    #: Instrumentation probes (registry names) attached to every cell; their
    #: reports land in each result's ``probe_reports``.  A list (not a tuple)
    #: so JSON round-trips compare equal.
    probes: Sequence[str] = field(default_factory=list)
    #: Co-runner cores sharing the uncore with every cell's own (workload,
    #: variant) pair; ``None`` keeps the classic single-core path.
    multicore: Optional[MultiCoreSpec] = None

    def resolved_probes(self) -> List[str]:
        """The probe list, validated against the registry."""
        probes = list(self.probes)
        for name in probes:
            PROBE_REGISTRY.get(name)  # raises KeyError on unknown names
        return probes

    def resolved_variants(self) -> List[str]:
        """The variant list with the baseline prepended, validated early."""
        return resolve_variants(self.variants)

    def resolved_workloads(self) -> List[str]:
        """The workload list, validated against the registry."""
        return resolve_workloads(self.workloads)


def resolve_variants(variants: Sequence[str]) -> List[str]:
    """A validated variant list with the ``ooo`` baseline always present.

    An empty selection means every registered variant (in figure order); the
    baseline is prepended when missing because every comparison normalises
    against it.  Shared by sweep and study specs so the two layers can never
    disagree about grid columns.
    """
    variant_list = list(variants) or VARIANT_REGISTRY.names()
    if "ooo" not in variant_list:
        variant_list.insert(0, "ooo")
    for variant in variant_list:
        VARIANT_REGISTRY.get(variant)  # raises KeyError on unknown names
    return variant_list


def resolve_workloads(workloads: Sequence[str]) -> List[str]:
    """The workload list, validated against the registry."""
    workload_list = list(workloads)
    for name in workload_list:
        WORKLOAD_REGISTRY.get(name)  # raises KeyError on unknown names
    return workload_list


def assemble_comparison(
    benchmarks: Sequence[str],
    variants: Sequence[str],
    results: Sequence[SimulationResult],
) -> ComparisonResult:
    """Fold a flat benchmark-major/variant-minor result list into a grid.

    ``results[i * len(variants) + j]`` must be benchmark ``i`` on variant
    ``j`` — the order every engine entry point expands jobs in.  Centralised
    so sweeps and studies can never drift apart on the index arithmetic.
    """
    return ComparisonResult(
        benchmarks=[
            BenchmarkResult(
                benchmark=name,
                results={
                    variants[j]: results[i * len(variants) + j]
                    for j in range(len(variants))
                },
            )
            for i, name in enumerate(benchmarks)
        ],
        variants=list(variants),
    )


@dataclass
class SweepCell(JSONSerializable):
    """One configuration point of a sweep and its full comparison grid."""

    overrides: Dict[str, Any]
    comparison: ComparisonResult


@dataclass
class SweepResult(JSONSerializable):
    """Everything a sweep produced, serialisable for ``python -m repro report``."""

    spec: SweepSpec
    cells: List[SweepCell]

    @property
    def comparison(self) -> ComparisonResult:
        """The comparison grid of a single-configuration sweep."""
        if len(self.cells) != 1:
            raise ValueError(
                f"sweep has {len(self.cells)} configuration cells; "
                "pick one explicitly via .cells"
            )
        return self.cells[0].comparison


@dataclass
class EngineRunStats:
    """Accounting for one engine run (exposed for logs and tests)."""

    total_jobs: int = 0
    cache_hits: int = 0
    simulated: int = 0


@dataclass
class JobSpec(JSONSerializable):
    """One fully-specified simulation cell for :meth:`ExperimentEngine.run_jobs`.

    Unlike :class:`SweepSpec` — which applies one configuration to a whole
    benchmarks x variants grid — a ``JobSpec`` pins its *own* core and
    hierarchy configuration, which is what lets the sensitivity-study layer
    (:mod:`repro.simulation.study`) run an entire cartesian product of
    configurations through one engine call (one process pool, one cache pass).
    ``config``/``hierarchy_config`` default to the engine's own.

    The trace comes from exactly one of two places: ``workload`` (a registry
    name, rebuilt locally by each worker) or ``trace_file`` (a recorded trace
    path, streamed locally and cache-keyed by content digest).  ``window``
    restricts the run to the micro-ops in ``[start, end)`` and
    ``warmup_uops`` additionally simulates that many micro-ops *before*
    ``start`` without counting them in the returned statistics — the shard
    execution path (:mod:`repro.simulation.shard`).  Both fold into the
    content-hash cache key.
    """

    workload: str = ""
    variant: str = "pre"
    num_uops: Optional[int] = None
    config: Optional[CoreConfig] = None
    hierarchy_config: Optional[HierarchyConfig] = None
    max_cycles: Optional[int] = None
    probes: Sequence[str] = field(default_factory=list)
    trace_file: Optional[str] = None
    window: Optional[Tuple[int, int]] = None
    warmup_uops: int = 0
    #: Co-runner cores sharing the uncore with this job's own (workload,
    #: variant) pair as core 0.  Requires a ``workload`` source (co-runner
    #: traces are rebuilt by name in each worker) and is incompatible with
    #: ``window``/``warmup_uops``.
    multicore: Optional[MultiCoreSpec] = None


# ----------------------------------------------------------------- job model


def _trace_digest(trace: Union[Trace, TraceSource]) -> str:
    """Content hash of a trace: every micro-op field contributes."""
    hasher = hashlib.sha256()
    for uop in trace:
        hasher.update(
            repr(
                (
                    uop.pc,
                    uop.uop_class.value,
                    uop.srcs,
                    uop.dst,
                    uop.mem_addr,
                    uop.mem_size,
                    uop.branch_taken,
                    uop.branch_target,
                )
            ).encode()
        )
    return hasher.hexdigest()


def _job_payload(
    benchmark: str,
    variant: str,
    source: Dict[str, Any],
    trace: Optional[Union[Trace, "TraceSource"]],
    config: CoreConfig,
    hierarchy_config: Optional[HierarchyConfig],
    max_cycles: Optional[int],
    probes: Sequence[str] = (),
    window: Optional[Tuple[int, int]] = None,
    warmup_uops: int = 0,
    multicore: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    if window is not None:
        start, end = window
        if start < 0 or end < start:
            raise ValueError(f"invalid window [{start}, {end})")
        if warmup_uops > start:
            raise ValueError(
                f"warmup_uops {warmup_uops} exceeds the {start} micro-ops "
                "before the window (clamp it first)"
            )
    elif warmup_uops:
        raise ValueError("warmup_uops requires a window")
    if multicore is not None and (window is not None or warmup_uops):
        raise ValueError("multicore jobs do not support window/warmup replay")
    return {
        "benchmark": benchmark,
        "variant": variant,
        "source": source,
        "trace": trace,
        "config": config.to_dict(),
        "hierarchy": hierarchy_config.to_dict() if hierarchy_config else None,
        "max_cycles": max_cycles,
        "probes": list(probes),
        "window": list(window) if window is not None else None,
        "warmup_uops": warmup_uops,
        "multicore": multicore,
    }


def _job_cache_key(payload: Dict[str, Any]) -> str:
    """Content hash identifying a job's full input.

    Trace-backed jobs (pre-built or recorded files) key on a digest of the
    trace *content*, never just its name, so edited or re-recorded traces can
    never serve stale cached cells.
    """
    source = payload["source"]
    if source["kind"] == "trace" and "digest" not in source:
        source = dict(source)
        source["digest"] = _trace_digest(payload["trace"])
    if source["kind"] == "file":
        # Drop the path: the same recorded trace must hit the cache from any
        # location.  The benchmark name stays (it appears in the result) but
        # normally comes from the file header, which the digest covers.
        source = {"kind": "file", "digest": source["digest"], "name": source["name"]}
    descriptor = {
        "schema": CACHE_SCHEMA_VERSION,
        "variant": payload["variant"],
        "source": source,
        "config": payload["config"],
        "hierarchy": payload["hierarchy"],
        "max_cycles": payload["max_cycles"],
        "probes": payload.get("probes", []),
        "window": payload.get("window"),
        "warmup_uops": payload.get("warmup_uops", 0),
        # Co-runner spec *and* co-runner workload tokens: editing a
        # neighbour's generator invalidates the cell just like editing the
        # primary workload does.
        "multicore": payload.get("multicore"),
    }
    return hashlib.sha256(canonical_json(descriptor).encode()).hexdigest()


def _workload_token(entry: Any) -> Any:
    """Cache-token for a registered workload.

    An explicit ``cache_token`` in the registry metadata wins.  Otherwise a
    best-effort digest of the factory's code object and defaults is derived,
    so editing a custom workload's generator invalidates its cached cells
    instead of silently serving stale results.
    """
    token = entry.metadata.get("cache_token")
    if token is not None:
        return token
    factory = entry.factory
    func = getattr(factory, "__func__", factory)  # unwrap bound methods
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    return {
        "qualname": getattr(func, "__qualname__", entry.name),
        "code": hashlib.sha256(code.co_code).hexdigest(),
        "consts": repr(code.co_consts),
        "defaults": repr(getattr(func, "__defaults__", None)),
    }


def _multicore_payload(spec: MultiCoreSpec) -> Dict[str, Any]:
    """Validate a co-runner spec and build its cache-keyable payload entry.

    Co-runner workloads/variants are validated against the registries up
    front (before any worker spawns), and each co-runner workload contributes
    its :func:`_workload_token` so editing a neighbour's trace generator
    invalidates the cached cell.
    """
    tokens = []
    for assignment in spec.cores:
        if not assignment.workload:
            raise ValueError("multicore co-runner needs a workload name")
        VARIANT_REGISTRY.get(assignment.variant)
        if assignment.num_uops is not None and assignment.num_uops <= 0:
            raise ValueError(
                f"co-runner num_uops must be positive, got {assignment.num_uops}"
            )
        tokens.append(_workload_token(WORKLOAD_REGISTRY.get(assignment.workload)))
    return {"spec": spec.to_dict(), "tokens": tokens}


def _execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one (benchmark, variant, config) cell; returns a JSON-able result.

    Top-level so it pickles into worker processes.  Both the serial and the
    parallel path call exactly this function, which is what makes them
    equivalent by construction.
    """
    source = payload["source"]
    if source["kind"] == "workload":
        trace = build_workload(source["name"], num_uops=source.get("num_uops"))
    elif source["kind"] == "file":
        # Rebuilt locally so worker processes stream the file instead of
        # unpickling megabytes of micro-ops.
        trace = FileTraceSource(source["path"], name=source.get("name"))
    else:
        trace = payload["trace"]
    config = CoreConfig.from_dict(payload["config"])
    hierarchy_config = (
        HierarchyConfig.from_dict(payload["hierarchy"]) if payload["hierarchy"] else None
    )
    multicore = payload.get("multicore")
    if multicore is not None:
        spec = MultiCoreSpec.from_dict(multicore["spec"])
        primary_uops = source.get("num_uops")
        pairs = [(trace, payload["variant"])]
        for assignment in spec.cores:
            num_uops = (
                assignment.num_uops
                if assignment.num_uops is not None
                else primary_uops
            )
            pairs.append(
                (build_workload(assignment.workload, num_uops=num_uops),
                 assignment.variant)
            )
        result = run_multicore(
            pairs,
            config=config,
            hierarchy_config=hierarchy_config,
            max_cycles=payload["max_cycles"],
            probes=payload.get("probes") or (),
            address_stride=spec.address_stride,
        )
        return result.to_dict()
    window = payload.get("window")
    warmup_uops = 0
    if window is not None:
        # The window is the *measured* [start, end); the warmup prefix is
        # simulated before it (warm caches/predictors/queues) but excluded
        # from the returned stats by run_simulation's stats_start seam.
        warmup_uops = payload.get("warmup_uops") or 0
        start, end = window
        base = as_source(trace)
        trace = base.window(start - warmup_uops, end, name=base.name)
    request = SimulationRequest(
        variant=payload["variant"],
        config=config,
        hierarchy_config=hierarchy_config,
        max_cycles=payload["max_cycles"],
        probes=list(payload.get("probes") or ()),
        warmup_uops=warmup_uops,
    )
    result = run_simulation(trace, request)
    return result.to_dict()


def _execute_batch(payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Run a batch of jobs in one worker (jobs sharing a pickled trace)."""
    return [_execute_job(payload) for payload in payloads]


def execute_cell_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Public cell-execution seam: run one expanded job payload locally.

    This is exactly what the engine's own serial path and process-pool
    workers run per cell — exposed so *remote* executors (the fleet worker of
    :mod:`repro.service.worker`, the coordinator's local fallback) funnel
    through the same single function and stay bit-identical by construction.
    The payload must be JSON-shaped (``trace`` is ``None``; sources are
    ``workload``/``file`` descriptors), which every service-submitted
    document guarantees.
    """
    return _execute_job(payload)


def job_cache_key(payload: Dict[str, Any]) -> str:
    """Public content-hash seam for one expanded job payload.

    The fleet layer uses this as the *cell identity*: stable across daemon
    restarts (it hashes the cell's full input, not its position in a run),
    so journaled per-cell attempt counts survive a crash and a poisoned cell
    stays quarantined after recovery.
    """
    return _job_cache_key(payload)


# --------------------------------------------------------------- result cache


@dataclass
class CacheStats(JSONSerializable):
    """A point-in-time snapshot of a :class:`ResultCache` directory."""

    directory: str
    entries: int
    total_bytes: int
    max_bytes: Optional[int] = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0


@dataclass
class PruneResult(JSONSerializable):
    """What one :meth:`ResultCache.prune` pass removed and what remains."""

    evicted: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class ResultCache:
    """On-disk cache of finished simulation cells, keyed by content hash.

    One JSON file per cell.  Corrupt or unreadable entries degrade to cache
    misses; writes go through a temp file + atomic rename so a crashed run —
    or a second engine/server sharing the directory — never observes a
    half-written entry.

    With ``max_bytes`` set, the cache is size-bounded: every write is
    followed by a least-recently-*used* eviction pass (hits refresh an
    entry's mtime, so recency means last use, not last write).  ``prune``
    can also be invoked explicitly — the ``repro cache prune`` CLI and the
    service's ``POST /v1/cache/prune`` endpoint do exactly that.
    """

    def __init__(
        self, directory: Union[str, Path], max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path_for(self, key: str) -> Path:
        """The file that does or would hold ``key``'s result."""
        return self.directory / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Whether ``key`` has a cached entry (no counters, no payload read).

        The admission-time dedupe probe: the service counts how many of a
        submitted document's cells are already cached without perturbing the
        hit/miss accounting of the run that will actually consume them.
        """
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            os.utime(path)  # refresh recency so LRU eviction spares hot entries
        except OSError:
            pass  # entry may have raced with another process's prune
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically."""
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self.prune()

    def _entries(self) -> List[Tuple[Path, int, float]]:
        """Every live entry as ``(path, size, mtime)``; racing deletes skipped."""
        entries: List[Tuple[Path, int, float]] = []
        for path in self.directory.glob("*.json"):
            # pathlib's "*" matches dotfiles, so exclude in-flight temp files.
            if path.name.startswith("."):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted/removed by a concurrent process
            entries.append((path, stat.st_size, stat.st_mtime))
        return entries

    def stats(self) -> CacheStats:
        """Entry count and on-disk footprint, plus this instance's counters."""
        entries = self._entries()
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
            max_bytes=self.max_bytes,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
        )

    def prune(self, max_bytes: Optional[int] = None) -> PruneResult:
        """Evict least-recently-used entries until the cache fits ``max_bytes``.

        ``max_bytes`` defaults to the cache's own bound; passing an explicit
        value (including ``0``, meaning "empty the cache") does a one-off
        pass without changing the configured bound.  Entries another process
        already removed are skipped, so concurrent prunes are safe.
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            raise ValueError("prune needs max_bytes (no bound configured)")
        if bound < 0:
            raise ValueError(f"max_bytes must be >= 0, got {bound}")
        entries = sorted(self._entries(), key=lambda entry: entry[2])  # oldest first
        total = sum(size for _, size, _ in entries)
        evicted = 0
        freed = 0
        for path, size, _ in entries:
            if total <= bound:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # already gone: someone else evicted it
            total -= size
            freed += size
            evicted += 1
        self.evictions += evicted
        return PruneResult(
            evicted=evicted,
            freed_bytes=freed,
            remaining_entries=len(entries) - evicted,
            remaining_bytes=total,
        )

    def __len__(self) -> int:
        return len(self._entries())


# --------------------------------------------------------------------- engine


class ExperimentEngine:
    """Expands sweeps into jobs and runs them in parallel, serially, or from cache.

    Parameters
    ----------
    workers:
        Process count for the pool; ``1`` runs everything in-process (the
        serial fallback).  Results are identical either way.
    cache_dir:
        Directory for the :class:`ResultCache`; ``None`` disables caching.
    config:
        Base :class:`~repro.uarch.config.CoreConfig` for every job (sweep
        configuration overrides are applied on top of it).
    hierarchy_config:
        Optional memory-hierarchy configuration shared by every job.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        config: Optional[CoreConfig] = None,
        hierarchy_config: Optional[HierarchyConfig] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.config = config or CoreConfig()
        self.hierarchy_config = hierarchy_config
        self.last_run_stats = EngineRunStats()

    # ----------------------------------------------------------- public API

    def expand_sweep_payloads(self, spec: SweepSpec) -> List[Dict[str, Any]]:
        """Expand a sweep spec into engine job payloads without running them.

        The admission seam for the experiment service: expanding first lets a
        caller compute cache keys (:meth:`cache_probe`) and report how much of
        a submitted sweep is already deduped *before* scheduling anything.
        """
        variants = spec.resolved_variants()
        workloads = spec.resolved_workloads()
        probes = spec.resolved_probes()
        override_sets = [dict(overrides) for overrides in spec.configs] or [{}]
        multicore = (
            _multicore_payload(spec.multicore) if spec.multicore is not None else None
        )

        payloads: List[Dict[str, Any]] = []
        for overrides in override_sets:
            config = self.config.with_overrides(**overrides) if overrides else self.config
            for name in workloads:
                entry = WORKLOAD_REGISTRY.get(name)
                source = {
                    "kind": "workload",
                    "name": name,
                    "num_uops": spec.num_uops,
                    "token": _workload_token(entry),
                }
                for variant in variants:
                    payloads.append(
                        _job_payload(
                            benchmark=name,
                            variant=variant,
                            source=source,
                            trace=None,
                            config=config,
                            hierarchy_config=self.hierarchy_config,
                            max_cycles=spec.max_cycles,
                            probes=probes,
                            multicore=multicore,
                        )
                    )
        return payloads

    def cache_probe(self, payloads: Sequence[Dict[str, Any]]) -> Tuple[int, int]:
        """``(cached, total)`` cells among ``payloads``, without running them.

        Uses :meth:`ResultCache.contains`, so the probe never perturbs
        hit/miss accounting.  With no cache configured everything counts as
        uncached.
        """
        if self.cache is None:
            return 0, len(payloads)
        cached = sum(
            1 for payload in payloads if self.cache.contains(_job_cache_key(payload))
        )
        return cached, len(payloads)

    def run_sweep(self, spec: SweepSpec, progress=None, executor=None) -> SweepResult:
        """Run a full sweep spec and return one comparison grid per config."""
        variants = spec.resolved_variants()
        workloads = spec.resolved_workloads()
        override_sets = [dict(overrides) for overrides in spec.configs] or [{}]
        results = self._run_jobs(
            self.expand_sweep_payloads(spec), progress=progress, executor=executor
        )
        cells: List[SweepCell] = []
        cursor = 0
        grid = len(workloads) * len(variants)
        for overrides in override_sets:
            chunk = results[cursor : cursor + grid]
            cursor += grid
            cells.append(
                SweepCell(
                    overrides=overrides,
                    comparison=assemble_comparison(workloads, variants, chunk),
                )
            )
        return SweepResult(spec=spec, cells=cells)

    def _run_benchmark_grid(
        self,
        jobs: Sequence[Tuple[str, Dict[str, Any], Optional[Trace]]],
        variant_list: Sequence[str],
        max_cycles: Optional[int],
        probes: Sequence[str],
    ) -> ComparisonResult:
        """Run (benchmark, source, trace?) x variants and assemble the grid."""
        for name in probes:
            PROBE_REGISTRY.get(name)  # fail on typos before any worker spawns
        payloads: List[Dict[str, Any]] = []
        for benchmark, source, trace in jobs:
            for variant in variant_list:
                payloads.append(
                    _job_payload(
                        benchmark=benchmark,
                        variant=variant,
                        source=source,
                        trace=trace,
                        config=self.config,
                        hierarchy_config=self.hierarchy_config,
                        max_cycles=max_cycles,
                        probes=probes,
                    )
                )
        results = self._run_jobs(payloads)
        return assemble_comparison(
            [benchmark for benchmark, _, _ in jobs], variant_list, results
        )

    def run_traces(
        self,
        traces: Iterable[Trace],
        variants: Sequence[str] = (),
        max_cycles: Optional[int] = None,
        probes: Sequence[str] = (),
    ) -> ComparisonResult:
        """Run pre-built traces on every variant (the ``run_comparison`` path)."""
        jobs = []
        for trace in traces:
            source = {"kind": "trace", "name": trace.name}
            if self.cache is not None:
                # Hash the trace once here rather than once per variant job.
                source["digest"] = _trace_digest(trace)
            jobs.append((trace.name, source, trace))
        return self._run_benchmark_grid(
            jobs, resolve_variants(variants), max_cycles, probes
        )

    def run_trace_files(
        self,
        paths: Sequence[Union[str, Path, FileTraceSource]],
        variants: Sequence[str] = (),
        max_cycles: Optional[int] = None,
        probes: Sequence[str] = (),
    ) -> ComparisonResult:
        """Replay recorded trace files on every variant.

        Accepts paths or ready-made :class:`FileTraceSource` objects (so
        callers that already opened a file do not parse its header twice).
        Cache keys incorporate a digest of each file's *content* (not its
        path), so re-recording or editing a trace file always invalidates its
        cached cells while moved/copied files still hit, and worker processes
        stream the file locally instead of receiving pickled micro-ops.
        """
        jobs = []
        for path in paths:
            file_source = (
                path if isinstance(path, FileTraceSource) else FileTraceSource(path)
            )
            source = {
                "kind": "file",
                "name": file_source.name,
                "path": str(file_source.path),
            }
            if self.cache is not None:
                # Only the cache key consumes the digest; skip hashing a
                # potentially huge file when no cache is configured.
                source["digest"] = trace_file_digest(file_source.path)
            jobs.append((file_source.name, source, None))
        return self._run_benchmark_grid(
            jobs, resolve_variants(variants), max_cycles, probes
        )

    def run_jobs(
        self, jobs: Sequence[JobSpec], progress=None, executor=None
    ) -> List[SimulationResult]:
        """Run heterogeneous, individually-configured cells in one engine pass.

        Jobs are validated up front (unknown workload/variant/probe names fail
        before anything simulates), expanded in the given order, and funnelled
        through the same cache + pool machinery as sweeps, so results come
        back in job order and ``last_run_stats`` accounts for the whole batch.
        """
        return self._run_jobs(
            self.expand_job_payloads(jobs), progress=progress, executor=executor
        )

    def expand_job_payloads(self, jobs: Sequence[JobSpec]) -> List[Dict[str, Any]]:
        """Validate and expand :class:`JobSpec`\\ s into engine job payloads."""
        payloads: List[Dict[str, Any]] = []
        file_digests: Dict[str, str] = {}
        for job in jobs:
            VARIANT_REGISTRY.get(job.variant)
            for name in job.probes:
                PROBE_REGISTRY.get(name)
            if bool(job.workload) == bool(job.trace_file):
                raise ValueError(
                    "JobSpec needs exactly one of workload= or trace_file="
                )
            if job.multicore is not None and job.trace_file is not None:
                raise ValueError(
                    "multicore jobs need a workload= source (co-runner traces "
                    "are rebuilt by registry name in each worker)"
                )
            if job.trace_file is not None:
                benchmark, source = self._file_source(job.trace_file, file_digests)
            else:
                benchmark = job.workload
                entry = WORKLOAD_REGISTRY.get(job.workload)
                source = {
                    "kind": "workload",
                    "name": job.workload,
                    "num_uops": job.num_uops,
                    "token": _workload_token(entry),
                }
            payloads.append(
                _job_payload(
                    benchmark=benchmark,
                    variant=job.variant,
                    source=source,
                    trace=None,
                    config=job.config if job.config is not None else self.config,
                    hierarchy_config=(
                        job.hierarchy_config
                        if job.hierarchy_config is not None
                        else self.hierarchy_config
                    ),
                    max_cycles=job.max_cycles,
                    probes=job.probes,
                    window=job.window,
                    warmup_uops=job.warmup_uops,
                    multicore=(
                        _multicore_payload(job.multicore)
                        if job.multicore is not None
                        else None
                    ),
                )
            )
        return payloads

    def _file_source(
        self, path: Union[str, Path], digests: Dict[str, str]
    ) -> Tuple[str, Dict[str, Any]]:
        """A ``"file"``-kind source descriptor, digesting each file once."""
        file_source = (
            path if isinstance(path, FileTraceSource) else FileTraceSource(path)
        )
        source = {
            "kind": "file",
            "name": file_source.name,
            "path": str(file_source.path),
        }
        if self.cache is not None:
            key = str(file_source.path)
            if key not in digests:
                digests[key] = trace_file_digest(file_source.path)
            source["digest"] = digests[key]
        return file_source.name, source

    def run_trace_windows(
        self,
        trace: Union[Trace, TraceSource],
        variant: str,
        windows: Sequence[Tuple[int, int, int]],
        config: Optional[CoreConfig] = None,
        hierarchy_config: Optional[HierarchyConfig] = None,
        max_cycles: Optional[int] = None,
        probes: Sequence[str] = (),
        progress=None,
        executor=None,
    ) -> List[SimulationResult]:
        """Run windows of one trace as independent cells (the shard path).

        ``windows`` is a sequence of ``(start, end, warmup_uops)`` triples:
        each cell simulates ``[start - warmup, end)`` of ``trace`` but only
        the micro-ops from ``start`` onward count in its statistics.  A single
        window covering the whole trace with zero warmup is normalised to a
        plain (un-windowed) job, so it shares cache entries — and bit-exact
        results — with ordinary full-trace replays of the same source.
        """
        payloads = self.expand_trace_window_payloads(
            trace,
            variant,
            windows,
            config=config,
            hierarchy_config=hierarchy_config,
            max_cycles=max_cycles,
            probes=probes,
        )
        return self._run_jobs(payloads, progress=progress, executor=executor)

    def expand_trace_window_payloads(
        self,
        trace: Union[Trace, TraceSource],
        variant: str,
        windows: Sequence[Tuple[int, int, int]],
        config: Optional[CoreConfig] = None,
        hierarchy_config: Optional[HierarchyConfig] = None,
        max_cycles: Optional[int] = None,
        probes: Sequence[str] = (),
    ) -> List[Dict[str, Any]]:
        """Expand trace windows into engine job payloads without running them."""
        VARIANT_REGISTRY.get(variant)
        for name in probes:
            PROBE_REGISTRY.get(name)
        source_obj = as_source(trace)
        if isinstance(source_obj, FileTraceSource):
            _, source = self._file_source(source_obj, {})
            trace_payload: Optional[Union[Trace, TraceSource]] = None
        else:
            source = {"kind": "trace", "name": source_obj.name}
            if self.cache is not None:
                # _trace_digest only iterates micro-ops, which any source does.
                source["digest"] = _trace_digest(source_obj)
            trace_payload = trace if isinstance(trace, Trace) else source_obj
        total = source_obj.length
        payloads = []
        for start, end, warmup in windows:
            window: Optional[Tuple[int, int]] = (start, end)
            if start == 0 and warmup == 0 and total is not None and end >= total:
                window = None  # whole trace: identical to an un-windowed job
            payloads.append(
                _job_payload(
                    benchmark=source_obj.name,
                    variant=variant,
                    source=source,
                    trace=trace_payload,
                    config=config if config is not None else self.config,
                    hierarchy_config=(
                        hierarchy_config
                        if hierarchy_config is not None
                        else self.hierarchy_config
                    ),
                    max_cycles=max_cycles,
                    probes=probes,
                    window=window,
                    warmup_uops=0 if window is None else warmup,
                )
            )
        return payloads

    def run_workloads(
        self,
        workloads: Sequence[str],
        variants: Sequence[str] = (),
        num_uops: Optional[int] = None,
        max_cycles: Optional[int] = None,
        probes: Sequence[str] = (),
    ) -> ComparisonResult:
        """Run registered workloads by name on every variant."""
        sweep = self.run_sweep(
            SweepSpec(
                workloads=list(workloads),
                variants=list(variants),
                num_uops=num_uops,
                max_cycles=max_cycles,
                probes=list(probes),
            )
        )
        return sweep.comparison

    # ------------------------------------------------------------ execution

    def _run_jobs(
        self, payloads: List[Dict[str, Any]], progress=None, executor=None
    ) -> List[SimulationResult]:
        """Run jobs in their given order; cache first, then pool or serial.

        ``progress`` (optional) is called as ``progress(done, total, kind)``
        with ``kind`` in ``{"cached", "simulated"}`` after every resolved
        cell — the service streams these as job events.  Simulated cells are
        written to the cache *as they complete* (not after the whole batch),
        so a killed run resumes from every cell that finished.  A ``progress``
        callback may raise :class:`~repro.errors.JobCancelled` to abort the
        run between cells; outstanding pool work is then cancelled.

        ``executor`` (optional) is the cell-batch execution seam: a callable
        ``executor(payloads, on_result)`` that replaces the pool/serial path
        for the *uncached* cells — the experiment service installs its fleet
        coordinator here to farm cells out to remote workers.  It must invoke
        ``on_result(offset, result_dict)`` exactly once per payload (any
        order); cache writes and progress accounting stay on this side, so a
        distributed run is cache-accounted identically to a local one.
        """
        stats = EngineRunStats(total_jobs=len(payloads))
        outputs: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(payloads)
        done = 0

        for index, payload in enumerate(payloads):
            if self.cache is not None:
                keys[index] = _job_cache_key(payload)
                cached = self.cache.get(keys[index])
                if cached is not None:
                    outputs[index] = cached
                    stats.cache_hits += 1
                    done += 1
                    if progress is not None:
                        progress(done, len(payloads), "cached")
                    continue
            pending.append(index)

        if pending:

            def on_result(offset: int, produced: Dict[str, Any]) -> None:
                nonlocal done
                index = pending[offset]
                outputs[index] = produced
                stats.simulated += 1
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], produced)
                done += 1
                if progress is not None:
                    progress(done, len(payloads), "simulated")

            self._execute_pending(
                [payloads[i] for i in pending], on_result, executor=executor
            )

        self.last_run_stats = stats
        return [SimulationResult.from_dict(output) for output in outputs]

    def _execute_pending(
        self, payloads: List[Dict[str, Any]], on_result, executor=None
    ) -> None:
        """Execute uncached payloads, delivering each result via ``on_result``.

        ``on_result(offset, produced)`` is invoked in submission order.  On
        SIGINT/SIGTERM (or a cancellation raised by the caller's callback),
        outstanding futures are cancelled and worker processes terminated
        before the exception propagates — a Ctrl-C no longer tracebacks out
        of ``ProcessPoolExecutor``'s shutdown machinery with workers leaked.

        With ``executor`` set, the whole pending batch is handed to it
        instead (see :meth:`_run_jobs`); the executor owns scheduling,
        retries, and fallback, and delivers results through ``on_result``.
        """
        if executor is not None:
            executor(payloads, on_result)
            return
        batches = self._batch_payloads(payloads)
        delivered = 0
        if self.workers > 1 and len(batches) > 1:
            pool: Optional[ProcessPoolExecutor] = None
            futures: List[Any] = []
            try:
                max_workers = min(self.workers, len(batches))
                pool = ProcessPoolExecutor(max_workers=max_workers)
                futures = [pool.submit(_execute_batch, batch) for batch in batches]
                for future in futures:
                    for result in future.result():
                        on_result(delivered, result)
                        delivered += 1
                pool.shutdown(wait=True)
                return
            except (KeyboardInterrupt, SystemExit, JobCancelled):
                self._abort_pool(pool, futures)
                raise
            except (OSError, PermissionError, BrokenProcessPool):
                # Process pools are unavailable or the workers were killed
                # (restricted sandbox, missing /dev/shm, OOM killer, ...):
                # fall back to in-process execution, which produces identical
                # results.
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
            except KeyError:
                # A worker could not resolve a registry name that the parent
                # validated before submission: the platform's process start
                # method (spawn) did not inherit runtime registrations.  The
                # in-process fallback has them.
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
        # Serial path, also the pool's fallback: skip results a partially
        # successful pool run already delivered (they are cached/recorded).
        for offset, payload in enumerate(payloads):
            if offset < delivered:
                continue
            on_result(offset, _execute_job(payload))

    @staticmethod
    def _abort_pool(pool: Optional[ProcessPoolExecutor], futures: List[Any]) -> None:
        """Best-effort immediate teardown of an interrupted process pool."""
        if pool is None:
            return
        for future in futures:
            future.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
        # cancel_futures only stops *pending* work; running workers would
        # otherwise keep simulating until their current batch finishes.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass

    @staticmethod
    def _batch_payloads(payloads: List[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
        """Group consecutive jobs sharing one pre-built trace into one batch.

        Trace jobs are expanded trace-major, so batching by identity ships
        each (potentially large) trace to a worker once instead of once per
        variant.  Registry-named jobs stay singleton batches for maximum
        scheduling freedom — and so do windowed jobs: a sharded replay's
        whole point is to spread one trace's windows across workers, so they
        must never collapse into a single worker's batch.
        """
        batches: List[List[Dict[str, Any]]] = []
        for payload in payloads:
            if (
                batches
                and payload["trace"] is not None
                and payload.get("window") is None
                and batches[-1][-1].get("window") is None
                and batches[-1][-1]["trace"] is payload["trace"]
            ):
                batches[-1].append(payload)
            else:
                batches.append([payload])
        return batches


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "EngineRunStats",
    "ExperimentEngine",
    "JobSpec",
    "PruneResult",
    "ResultCache",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "execute_cell_payload",
    "job_cache_key",
]
