"""Multi-core simulation: N cores in lockstep over a shared uncore.

The paper evaluates runahead variants on a single core, but the interesting
question for precise runahead is what its extra memory traffic does to a
*neighbour*: PRE issues prefetch-like fills during stalls, and on a real chip
those fills contend for the shared L3, the DRAM banks and the data bus.  This
module builds that experiment: each core keeps its own private L1/L2 hierarchy
(:class:`~repro.memory.hierarchy.PrivateHierarchy`), all cores share one
:class:`~repro.memory.hierarchy.SharedUncore` (L3 + DRAM + bus), and a
:class:`MultiCoreSimulator` steps them in lockstep so every DRAM access lands
on the shared bank/bus state in global-cycle order.

Cores run *disjoint address spaces* (each core's trace addresses are offset by
``address_stride``): contention is therefore purely about capacity and
bandwidth — L3 lines evicted by the neighbour, DRAM requests queued behind the
neighbour's — never about data sharing, which the trace format cannot express
honestly.

Lockstep equivalence: a core inside :class:`MultiCoreSimulator` executes the
exact public stepping sequence of :meth:`~repro.uarch.core.OoOCore.run`
(``begin_run`` / ``step_cycle`` / ``skip_to`` / ``finish_run``), and a
one-core simulation shares its clock with nobody, so ``run_multicore`` with a
single core is bit-identical to :func:`~repro.simulation.simulator.run_variant`
— the committed goldens pin this down.

:class:`CoreAssignment` and :class:`MultiCoreSpec` are the serialisable spec
side, used by engine jobs, sweeps and studies to describe co-runner mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core import build_controller
from repro.energy.model import EnergyModel
from repro.memory.hierarchy import HierarchyConfig, PrivateHierarchy, SharedUncore
from repro.registry import VARIANT_REGISTRY
from repro.serde import JSONSerializable
from repro.simulation.simulator import (
    CoreResult,
    ProbeLike,
    SimulationResult,
    TraceLike,
    UncoreReport,
    _runahead_sram_models,
    resolve_probes,
)
from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore, SimulationDeadlock
from repro.uarch.probes import default_probes
from repro.uarch.stats import CoreStats
from repro.workloads.source import as_source

#: Default spacing between per-core address spaces: far larger than any
#: workload footprint, so cores never alias the same lines (contention is
#: capacity and bandwidth, not false sharing), yet small enough that XOR-fold
#: bank hashing still spreads each core's pages over all DRAM banks.
DEFAULT_ADDRESS_STRIDE = 1 << 30


@dataclass
class CoreAssignment(JSONSerializable):
    """One co-runner core in a multi-core spec: which workload, which variant."""

    workload: str = ""
    variant: str = "ooo"
    #: Trace length for this core; ``None`` inherits the primary job's length.
    num_uops: Optional[int] = None


@dataclass
class MultiCoreSpec(JSONSerializable):
    """Serialisable description of a multi-core run's co-runners.

    ``cores`` lists the *co-runners only* (cores ``1..N-1``); core 0 is the
    owning job's own workload/variant.  An empty list still means "run through
    the multi-core path" — a degenerate one-core run, useful as the
    no-contention baseline inside a study whose other points add neighbours.
    """

    cores: List[CoreAssignment] = field(default_factory=list)
    address_stride: int = DEFAULT_ADDRESS_STRIDE

    def __post_init__(self) -> None:
        if self.address_stride <= 0:
            raise ValueError(
                f"address_stride must be positive, got {self.address_stride}"
            )

    @property
    def num_cores(self) -> int:
        """Total cores in the run (co-runners plus the primary core 0)."""
        return len(self.cores) + 1


class MultiCoreSimulator:
    """Steps N prepared cores in lockstep on one shared global clock.

    The loop is the multi-core generalisation of
    :meth:`~repro.uarch.core.OoOCore.run`: every active core performs one
    :meth:`step_cycle` per global cycle, the clock advances one cycle whenever
    *any* core made progress, and a globally idle cycle fast-forwards all
    cores to the earliest wake-up event among them.  A core that commits its
    whole trace is finalised (:meth:`finish_run`) and leaves the pool; the
    survivors keep running — and keep the shared bank/bus state busy.
    """

    def __init__(
        self, cores: Sequence[OoOCore], max_cycles: Optional[int] = None
    ) -> None:
        if not cores:
            raise ValueError("MultiCoreSimulator needs at least one core")
        self.cores = list(cores)
        self.max_cycles = max_cycles

    def run(self) -> List[CoreStats]:
        """Run every core to completion; return their stats in core order."""
        max_cycles = self.max_cycles
        finished_stats = {}
        active = list(self.cores)
        for core in active:
            core.begin_run()
        while active:
            # Finalise cores that committed everything (or ran out of budget)
            # during the previous global cycle, then drop them from lockstep.
            still_running = []
            for core in active:
                if core.finished or (
                    max_cycles is not None and core.cycle >= max_cycles
                ):
                    finished_stats[id(core)] = core.finish_run()
                else:
                    still_running.append(core)
            active = still_running
            if not active:
                break

            # One cycle of work everywhere; shared-uncore accesses interleave
            # in core order within the cycle (deterministic tie-break).
            progress = [core.step_cycle() for core in active]

            if any(progress):
                # The global clock moves one cycle.  A core whose own step made
                # progress always advances (a finishing step's cycle is part of
                # its run, exactly as in the single-core loop); a stalled core
                # advances too — in lockstep it cannot sleep while a neighbour
                # works — unless it just finished, which mirrors the
                # single-core loop finalising at the no-progress cycle.
                for core, progressed in zip(active, progress):
                    if progressed or not core.finished:
                        core.cycle += 1
                continue

            # Globally idle cycle: every core is stalled (or just finished).
            waiting = [core for core in active if not core.finished]
            if not waiting:
                continue
            wakes = [core.next_wake_cycle() for core in waiting]
            if all(wake is None for wake in wakes):
                reports = "\n\n".join(
                    f"[core {core.core_id}]\n{core.deadlock_report()}"
                    for core in waiting
                )
                raise SimulationDeadlock(reports)
            wake = min(wake for wake in wakes if wake is not None)
            if max_cycles is not None:
                wake = min(wake, max_cycles)
            for core in waiting:
                core.skip_to(wake)
        return [finished_stats[id(core)] for core in self.cores]


def run_multicore(
    cores: Sequence[Tuple[TraceLike, str]],
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    energy_model: Optional[EnergyModel] = None,
    max_cycles: Optional[int] = None,
    probes: Optional[Sequence[ProbeLike]] = None,
    address_stride: int = DEFAULT_ADDRESS_STRIDE,
) -> SimulationResult:
    """Simulate ``(trace, variant)`` pairs sharing one uncore, in lockstep.

    Core 0 is the *focus* core: its stats and energy fill the result's
    top-level fields (so a one-core call is a drop-in for
    :func:`~repro.simulation.simulator.run_variant`), and ``probes`` attach to
    it alone.  Every core's stats land in :attr:`SimulationResult.cores`, and
    the shared L3/DRAM/bus usage — attributed per core — in
    :attr:`SimulationResult.uncore`.  Cores may run *different* variants
    (e.g. core 0 PRE, core 1 plain OoO), which is the whole point: measure
    what one core's runahead traffic costs the neighbour.
    """
    if not cores:
        raise ValueError("run_multicore needs at least one (trace, variant) pair")
    for _, variant in cores:
        if variant not in VARIANT_REGISTRY:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of "
                f"{', '.join(VARIANT_REGISTRY.names())}"
            )
    if address_stride <= 0:
        raise ValueError(f"address_stride must be positive, got {address_stride}")
    config = config or CoreConfig()
    hierarchy_config = hierarchy_config or HierarchyConfig()
    uncore = SharedUncore(config=hierarchy_config, num_cores=len(cores))
    built = []
    for core_id, (trace, variant) in enumerate(cores):
        source = as_source(trace)
        hierarchy = PrivateHierarchy(
            config=hierarchy_config,
            uncore=uncore,
            core_id=core_id,
            addr_offset=core_id * address_stride,
        )
        attached = resolve_probes(probes) if core_id == 0 else []
        core = OoOCore(
            source,
            config=config,
            hierarchy=hierarchy,
            controller=build_controller(variant),
            probes=default_probes() + attached,
        )
        built.append((core, source, variant))

    simulator = MultiCoreSimulator(
        [core for core, _, _ in built], max_cycles=max_cycles
    )
    all_stats = simulator.run()

    focus_core, focus_source, focus_variant = built[0]
    model = energy_model or EnergyModel()
    report = model.evaluate(
        variant=focus_variant,
        stats=all_stats[0],
        hierarchy=focus_core.hierarchy,
        config=config,
        extra_sram=_runahead_sram_models(focus_core),
    )
    return SimulationResult(
        variant=focus_variant,
        trace_name=focus_source.name,
        stats=all_stats[0],
        energy=report,
        config=config,
        probe_reports=focus_core.probes.reports(),
        cores=[
            CoreResult(
                core_id=core_id,
                variant=variant,
                trace_name=source.name,
                stats=all_stats[core_id],
            )
            for core_id, (core, source, variant) in enumerate(built)
        ],
        uncore=UncoreReport(
            l3_hits=list(uncore.l3_hits),
            l3_misses=list(uncore.l3_misses),
            dram_reads=list(uncore.dram_reads),
            dram_writes=list(uncore.dram_writes),
            dram_queue_delay_cycles=list(uncore.dram_queue_delay_cycles),
            bus_busy_cycles=list(uncore.bus_busy_cycles),
        ),
    )
