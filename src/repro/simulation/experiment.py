"""Experiment runner: compare runahead variants across a workload suite.

``run_comparison`` simulates every (benchmark, variant) pair and returns a
:class:`ComparisonResult` that can answer the questions the paper's evaluation
asks: per-benchmark and mean performance normalised to the baseline core
(Figure 2), per-benchmark and mean energy savings (Figure 3), runahead
invocation ratios (Section 5.1), interval-length statistics (Section 2.4) and
free-resource statistics (Section 3.4).

Since the engine refactor, ``run_comparison`` is a thin wrapper over
:class:`repro.simulation.engine.ExperimentEngine`: pass ``workers`` to fan the
(benchmark, variant) grid out across processes and ``cache_dir`` to reuse
results across sessions.  Both paths produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import VARIANT_LABELS, VARIANTS
from repro.serde import JSONSerializable
from repro.simulation.metrics import (
    arithmetic_mean,
    energy_savings_percent,
    geometric_mean,
    invocation_ratio,
    normalized_performance,
)
from repro.simulation.simulator import SimulationResult
from repro.uarch.config import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.workloads.trace import Trace


@dataclass
class BenchmarkResult(JSONSerializable):
    """All variant results for one benchmark."""

    benchmark: str
    results: Dict[str, SimulationResult]

    @property
    def baseline(self) -> SimulationResult:
        """The out-of-order baseline run."""
        return self.results["ooo"]

    def normalized_performance(self, variant: str) -> float:
        """Performance of ``variant`` normalised to the baseline (Figure 2)."""
        return normalized_performance(self.results[variant].stats, self.baseline.stats)

    def speedup_percent(self, variant: str) -> float:
        """Speedup of ``variant`` over the baseline, in percent."""
        return (self.normalized_performance(variant) - 1.0) * 100.0

    def energy_savings_percent(self, variant: str) -> float:
        """Energy saving of ``variant`` relative to the baseline, in percent (Figure 3)."""
        return energy_savings_percent(
            self.results[variant].energy.total_nj, self.baseline.energy.total_nj
        )

    def invocation_ratio(self, variant: str, reference: str = "runahead") -> float:
        """Runahead invocation count of ``variant`` relative to ``reference``."""
        return invocation_ratio(self.results[variant].stats, self.results[reference].stats)


@dataclass
class ComparisonResult(JSONSerializable):
    """Results of a full suite x variants comparison."""

    benchmarks: List[BenchmarkResult]
    variants: Sequence[str]

    def __post_init__(self) -> None:
        # name -> position in ``benchmarks``; looking up the position (rather
        # than the object) keeps lookups correct when a list slot is replaced
        # in place, and the validity check below catches renames/reorders.
        self._name_index: Dict[str, int] = {}

    def _rebuild_index(self) -> Dict[str, int]:
        self._name_index = {
            result.benchmark: position
            for position, result in enumerate(self.benchmarks)
        }
        return self._name_index

    def benchmark(self, name: str) -> BenchmarkResult:
        """Result for one benchmark by name (O(1) via a name index)."""
        index = self._name_index
        if len(index) != len(self.benchmarks):
            index = self._rebuild_index()
        position = index.get(name)
        if position is None or self.benchmarks[position].benchmark != name:
            # The list was mutated (appended, renamed, reordered); rebuild
            # once before concluding the name is unknown.
            position = self._rebuild_index().get(name)
            if position is None:
                raise KeyError(f"no benchmark named {name!r}")
        return self.benchmarks[position]

    def benchmark_names(self) -> List[str]:
        """Names of all benchmarks in the comparison."""
        return [result.benchmark for result in self.benchmarks]

    # ------------------------------------------------------------ aggregates

    def mean_normalized_performance(self, variant: str, geometric: bool = False) -> float:
        """Suite-average normalised performance of ``variant`` (Figure 2's AVG bar)."""
        values = [result.normalized_performance(variant) for result in self.benchmarks]
        return geometric_mean(values) if geometric else arithmetic_mean(values)

    def mean_speedup_percent(self, variant: str, geometric: bool = False) -> float:
        """Suite-average speedup of ``variant`` in percent."""
        return (self.mean_normalized_performance(variant, geometric=geometric) - 1.0) * 100.0

    def mean_energy_savings_percent(self, variant: str) -> float:
        """Suite-average energy saving of ``variant`` in percent (Figure 3's AVG bar)."""
        values = [result.energy_savings_percent(variant) for result in self.benchmarks]
        return arithmetic_mean(values)

    def mean_invocation_ratio(self, variant: str, reference: str = "runahead") -> float:
        """Suite-average runahead invocation ratio (Section 5.1 statistic).

        Raises
        ------
        ValueError
            If every per-benchmark ratio is degenerate (0 or infinite), e.g.
            because neither variant ever entered runahead mode.
        """
        values = []
        for result in self.benchmarks:
            ratio = result.invocation_ratio(variant, reference)
            if ratio not in (0.0, float("inf")):
                values.append(ratio)
        if not values:
            raise ValueError(
                f"no usable invocation ratios for {variant!r} relative to "
                f"{reference!r}: every per-benchmark ratio was 0 or infinite"
            )
        return arithmetic_mean(values)

    # --------------------------------------------------------------- tables

    def performance_table(self) -> Dict[str, Dict[str, float]]:
        """Figure 2 as a nested dict: benchmark -> variant label -> normalised performance."""
        table: Dict[str, Dict[str, float]] = {}
        for result in self.benchmarks:
            table[result.benchmark] = {
                VARIANT_LABELS[variant]: result.normalized_performance(variant)
                for variant in self.variants
                if variant != "ooo"
            }
        table["average"] = {
            VARIANT_LABELS[variant]: self.mean_normalized_performance(variant)
            for variant in self.variants
            if variant != "ooo"
        }
        return table

    def energy_table(self) -> Dict[str, Dict[str, float]]:
        """Figure 3 as a nested dict: benchmark -> variant label -> energy saving (percent)."""
        table: Dict[str, Dict[str, float]] = {}
        for result in self.benchmarks:
            table[result.benchmark] = {
                VARIANT_LABELS[variant]: result.energy_savings_percent(variant)
                for variant in self.variants
                if variant != "ooo"
            }
        table["average"] = {
            VARIANT_LABELS[variant]: self.mean_energy_savings_percent(variant)
            for variant in self.variants
            if variant != "ooo"
        }
        return table


def run_comparison(
    traces: Iterable[Trace],
    variants: Sequence[str] = VARIANTS,
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    max_cycles: Optional[int] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    probes: Sequence[str] = (),
) -> ComparisonResult:
    """Simulate every trace on every variant and collect the results.

    The baseline variant ``"ooo"`` is always included (it is needed for
    normalisation) even if absent from ``variants``.  With ``workers > 1`` the
    (trace, variant) grid runs across that many processes; with ``cache_dir``
    set, finished cells are reused from (and written to) the on-disk result
    cache.  Results are identical regardless of ``workers``.  ``probes``
    (registry names) attach instrumentation to every cell; reports appear in
    each result's ``probe_reports``.
    """
    from repro.simulation.engine import ExperimentEngine

    engine = ExperimentEngine(
        workers=workers,
        cache_dir=cache_dir,
        config=config,
        hierarchy_config=hierarchy_config,
    )
    return engine.run_traces(traces, variants=variants, max_cycles=max_cycles, probes=probes)


def run_performance_comparison(
    traces: Iterable[Trace],
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    max_cycles: Optional[int] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> ComparisonResult:
    """Shorthand for :func:`run_comparison` over all five variants."""
    return run_comparison(
        traces,
        variants=VARIANTS,
        config=config,
        hierarchy_config=hierarchy_config,
        max_cycles=max_cycles,
        workers=workers,
        cache_dir=cache_dir,
    )
