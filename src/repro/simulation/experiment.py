"""Experiment runner: compare runahead variants across a workload suite.

``run_comparison`` simulates every (benchmark, variant) pair and returns a
:class:`ComparisonResult` that can answer the questions the paper's evaluation
asks: per-benchmark and mean performance normalised to the baseline core
(Figure 2), per-benchmark and mean energy savings (Figure 3), runahead
invocation ratios (Section 5.1), interval-length statistics (Section 2.4) and
free-resource statistics (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import VARIANT_LABELS, VARIANTS
from repro.simulation.metrics import (
    arithmetic_mean,
    energy_savings_percent,
    geometric_mean,
    invocation_ratio,
    normalized_performance,
)
from repro.simulation.simulator import SimulationResult, Simulator
from repro.uarch.config import CoreConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.workloads.trace import Trace


@dataclass
class BenchmarkResult:
    """All variant results for one benchmark."""

    benchmark: str
    results: Dict[str, SimulationResult]

    @property
    def baseline(self) -> SimulationResult:
        """The out-of-order baseline run."""
        return self.results["ooo"]

    def normalized_performance(self, variant: str) -> float:
        """Performance of ``variant`` normalised to the baseline (Figure 2)."""
        return normalized_performance(self.results[variant].stats, self.baseline.stats)

    def speedup_percent(self, variant: str) -> float:
        """Speedup of ``variant`` over the baseline, in percent."""
        return (self.normalized_performance(variant) - 1.0) * 100.0

    def energy_savings_percent(self, variant: str) -> float:
        """Energy saving of ``variant`` relative to the baseline, in percent (Figure 3)."""
        return energy_savings_percent(
            self.results[variant].energy.total_nj, self.baseline.energy.total_nj
        )

    def invocation_ratio(self, variant: str, reference: str = "runahead") -> float:
        """Runahead invocation count of ``variant`` relative to ``reference``."""
        return invocation_ratio(self.results[variant].stats, self.results[reference].stats)


@dataclass
class ComparisonResult:
    """Results of a full suite x variants comparison."""

    benchmarks: List[BenchmarkResult]
    variants: Sequence[str]

    def benchmark(self, name: str) -> BenchmarkResult:
        """Result for one benchmark by name."""
        for result in self.benchmarks:
            if result.benchmark == name:
                return result
        raise KeyError(f"no benchmark named {name!r}")

    def benchmark_names(self) -> List[str]:
        """Names of all benchmarks in the comparison."""
        return [result.benchmark for result in self.benchmarks]

    # ------------------------------------------------------------ aggregates

    def mean_normalized_performance(self, variant: str, geometric: bool = False) -> float:
        """Suite-average normalised performance of ``variant`` (Figure 2's AVG bar)."""
        values = [result.normalized_performance(variant) for result in self.benchmarks]
        return geometric_mean(values) if geometric else arithmetic_mean(values)

    def mean_speedup_percent(self, variant: str, geometric: bool = False) -> float:
        """Suite-average speedup of ``variant`` in percent."""
        return (self.mean_normalized_performance(variant, geometric=geometric) - 1.0) * 100.0

    def mean_energy_savings_percent(self, variant: str) -> float:
        """Suite-average energy saving of ``variant`` in percent (Figure 3's AVG bar)."""
        values = [result.energy_savings_percent(variant) for result in self.benchmarks]
        return arithmetic_mean(values)

    def mean_invocation_ratio(self, variant: str, reference: str = "runahead") -> float:
        """Suite-average runahead invocation ratio (Section 5.1 statistic)."""
        values = []
        for result in self.benchmarks:
            ratio = result.invocation_ratio(variant, reference)
            if ratio not in (0.0, float("inf")):
                values.append(ratio)
        return arithmetic_mean(values)

    # --------------------------------------------------------------- tables

    def performance_table(self) -> Dict[str, Dict[str, float]]:
        """Figure 2 as a nested dict: benchmark -> variant label -> normalised performance."""
        table: Dict[str, Dict[str, float]] = {}
        for result in self.benchmarks:
            table[result.benchmark] = {
                VARIANT_LABELS[variant]: result.normalized_performance(variant)
                for variant in self.variants
                if variant != "ooo"
            }
        table["average"] = {
            VARIANT_LABELS[variant]: self.mean_normalized_performance(variant)
            for variant in self.variants
            if variant != "ooo"
        }
        return table

    def energy_table(self) -> Dict[str, Dict[str, float]]:
        """Figure 3 as a nested dict: benchmark -> variant label -> energy saving (percent)."""
        table: Dict[str, Dict[str, float]] = {}
        for result in self.benchmarks:
            table[result.benchmark] = {
                VARIANT_LABELS[variant]: result.energy_savings_percent(variant)
                for variant in self.variants
                if variant != "ooo"
            }
        table["average"] = {
            VARIANT_LABELS[variant]: self.mean_energy_savings_percent(variant)
            for variant in self.variants
            if variant != "ooo"
        }
        return table


def run_comparison(
    traces: Iterable[Trace],
    variants: Sequence[str] = VARIANTS,
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    max_cycles: Optional[int] = None,
) -> ComparisonResult:
    """Simulate every trace on every variant and collect the results.

    The baseline variant ``"ooo"`` is always included (it is needed for
    normalisation) even if absent from ``variants``.
    """
    variant_list = list(variants)
    if "ooo" not in variant_list:
        variant_list.insert(0, "ooo")
    simulator = Simulator(config=config, hierarchy_config=hierarchy_config)
    benchmarks: List[BenchmarkResult] = []
    for trace in traces:
        results = {
            variant: simulator.run(trace, variant=variant, max_cycles=max_cycles)
            for variant in variant_list
        }
        benchmarks.append(BenchmarkResult(benchmark=trace.name, results=results))
    return ComparisonResult(benchmarks=benchmarks, variants=variant_list)


def run_performance_comparison(
    traces: Iterable[Trace],
    config: Optional[CoreConfig] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    max_cycles: Optional[int] = None,
) -> ComparisonResult:
    """Shorthand for :func:`run_comparison` over all five variants."""
    return run_comparison(
        traces,
        variants=VARIANTS,
        config=config,
        hierarchy_config=hierarchy_config,
        max_cycles=max_cycles,
    )
