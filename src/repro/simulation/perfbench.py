"""Simulator-throughput benchmarking: ``python -m repro bench``.

The ROADMAP's north star is a simulator that "runs as fast as the hardware
allows", which is only meaningful if simulated-micro-ops-per-second is a
*measured, recorded* quantity.  This module is the perf counterpart of the
golden-digest suite (:mod:`repro.simulation.golden`): it runs a fixed matrix
of registered workloads x variants, times each cell wall-clock, and writes a
``BENCH_<n>.json`` report at the repository root so every optimization PR
leaves a comparable data point behind.

Each cell records:

* wall-clock seconds (best of ``repeats`` runs, trace construction excluded),
* throughput in committed micro-ops per second and simulated cycles per
  second,
* the :func:`~repro.simulation.golden.stats_digest` of the run's
  ``CoreStats`` — so a perf comparison that accidentally changed *timing*
  is caught by the same report that celebrates the speedup.

``compare_reports`` prints per-cell deltas between two reports (the
``--compare`` CLI flag), flagging digest mismatches loudly.
"""

from __future__ import annotations

import json
import platform
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.serde import JSONSerializable
from repro.simulation.golden import (
    DEFAULT_GOLDEN_VARIANTS,
    DEFAULT_GOLDEN_WORKLOADS,
    stats_digest,
)
from repro.simulation.simulator import run_variant

#: Report schema; bump on incompatible field changes.
BENCH_SCHEMA_VERSION = 1

#: The default matrix is the golden suite's Figure-2 matrix — one canonical
#: definition, so the digest-pinned cells and the timed cells never drift.
DEFAULT_BENCH_WORKLOADS = DEFAULT_GOLDEN_WORKLOADS
DEFAULT_BENCH_VARIANTS = DEFAULT_GOLDEN_VARIANTS
DEFAULT_BENCH_UOPS = 3_000

#: The ``--quick`` matrix: a CI-friendly smoke subset.
QUICK_BENCH_WORKLOADS = ("mcf", "milc")
QUICK_BENCH_VARIANTS = ("ooo", "pre")
QUICK_BENCH_UOPS = 800

#: The ``--shards`` scenario: one long recorded trace replayed end to end,
#: the workload sharded replay exists for.  A single workload/variant cell —
#: the point is aggregate throughput on one trace, not a matrix.
SHARD_BENCH_WORKLOAD = "sphinx3"
SHARD_BENCH_VARIANT = "ooo"
SHARD_BENCH_UOPS = 60_000

_BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")


def _peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` when unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


@dataclass
class BenchCell(JSONSerializable):
    """One timed (workload, variant) simulation."""

    workload: str
    variant: str
    num_uops: int
    committed_uops: int
    cycles: int
    wall_seconds: float
    uops_per_second: float
    cycles_per_second: float
    stats_digest: str
    #: Shard count of a sharded-replay cell; 1 for ordinary serial cells.
    shards: int = 1


@dataclass
class BenchReport(JSONSerializable):
    """Everything one ``python -m repro bench`` run measured."""

    schema: int = BENCH_SCHEMA_VERSION
    python: str = ""
    platform: str = ""
    num_uops: int = 0
    repeats: int = 1
    workloads: List[str] = field(default_factory=list)
    variants: List[str] = field(default_factory=list)
    cells: List[BenchCell] = field(default_factory=list)
    total_wall_seconds: float = 0.0
    total_uops_per_second: float = 0.0
    total_cycles_per_second: float = 0.0
    peak_rss_bytes: Optional[int] = None

    def cell(self, workload: str, variant: str) -> Optional[BenchCell]:
        """The cell for (workload, variant), or ``None`` when absent."""
        for cell in self.cells:
            if cell.workload == workload and cell.variant == variant:
                return cell
        return None


def run_bench(
    workloads: Sequence[str] = DEFAULT_BENCH_WORKLOADS,
    variants: Sequence[str] = DEFAULT_BENCH_VARIANTS,
    num_uops: int = DEFAULT_BENCH_UOPS,
    repeats: int = 1,
    progress=None,
) -> BenchReport:
    """Time the workload x variant matrix; return the full report.

    Traces are built once per workload outside the timed region, so the
    numbers measure the simulation engine (core + hierarchy + energy model),
    not workload generation.  ``wall_seconds`` is the best of ``repeats``
    runs — the least-noise estimator for a deterministic computation.
    ``progress`` (optional) is called with a one-line string per cell.
    """
    from repro.registry import build_workload  # local: avoids import cycles

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    cells: List[BenchCell] = []
    for workload in workloads:
        trace = build_workload(workload, num_uops=num_uops)
        for variant in variants:
            best: Optional[float] = None
            result = None
            for _ in range(repeats):
                start = time.perf_counter()
                result = run_variant(trace, variant=variant)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            assert result is not None and best is not None
            wall = max(best, 1e-9)
            cell = BenchCell(
                workload=workload,
                variant=variant,
                num_uops=num_uops,
                committed_uops=result.stats.committed_uops,
                cycles=result.stats.cycles,
                wall_seconds=wall,
                uops_per_second=result.stats.committed_uops / wall,
                cycles_per_second=result.stats.cycles / wall,
                stats_digest=stats_digest(result.stats),
            )
            cells.append(cell)
            if progress is not None:
                progress(
                    f"{workload:12s} {variant:16s} {cell.wall_seconds:8.3f}s "
                    f"{cell.uops_per_second:12.0f} uops/s"
                )
    total_wall = sum(cell.wall_seconds for cell in cells)
    total_uops = sum(cell.committed_uops for cell in cells)
    total_cycles = sum(cell.cycles for cell in cells)
    return BenchReport(
        schema=BENCH_SCHEMA_VERSION,
        python=platform.python_version(),
        platform=platform.platform(),
        num_uops=num_uops,
        repeats=repeats,
        workloads=list(workloads),
        variants=list(variants),
        cells=cells,
        total_wall_seconds=total_wall,
        total_uops_per_second=(total_uops / total_wall) if total_wall else 0.0,
        total_cycles_per_second=(total_cycles / total_wall) if total_wall else 0.0,
        peak_rss_bytes=_peak_rss_bytes(),
    )


def run_sharded_bench(
    workload: str = SHARD_BENCH_WORKLOAD,
    variant: str = SHARD_BENCH_VARIANT,
    num_uops: int = SHARD_BENCH_UOPS,
    shards: int = 4,
    workers: int = 1,
    warmup_uops: int = 0,
    repeats: int = 1,
    progress=None,
) -> BenchReport:
    """Time one long-trace sharded replay end to end; return a one-cell report.

    The workload is recorded to a temporary trace file first (sharded replay
    targets recorded traces, and a file source lets worker processes stream
    their shards instead of unpickling micro-ops), and only the
    :func:`~repro.simulation.shard.run_sharded` call is timed — no result
    cache, so every repeat simulates.  ``committed_uops`` is the stitched
    whole-trace count; warmup commits cost wall-clock but are not credited,
    so throughput is conservative.
    """
    import tempfile

    from repro.registry import build_workload_source  # local: avoids import cycles
    from repro.simulation.shard import run_sharded
    from repro.workloads.source import FileTraceSource, write_trace_file

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp:
        trace_path = Path(tmp) / f"{workload}.trc"
        write_trace_file(
            trace_path, build_workload_source(workload, num_uops=num_uops), name=workload
        )
        source = FileTraceSource(trace_path)
        best: Optional[float] = None
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_sharded(
                source,
                variant=variant,
                shards=shards,
                warmup_uops=warmup_uops,
                workers=workers,
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
    assert result is not None and best is not None
    wall = max(best, 1e-9)
    stats = result.stitched_stats
    cell = BenchCell(
        workload=workload,
        variant=variant,
        num_uops=num_uops,
        committed_uops=stats.committed_uops,
        cycles=stats.cycles,
        wall_seconds=wall,
        uops_per_second=stats.committed_uops / wall,
        cycles_per_second=stats.cycles / wall,
        stats_digest=stats_digest(stats),
        shards=shards,
    )
    if progress is not None:
        progress(
            f"{workload:12s} {variant:16s} {cell.wall_seconds:8.3f}s "
            f"{cell.uops_per_second:12.0f} uops/s "
            f"({shards} shard(s), {workers} worker(s))"
        )
    return BenchReport(
        schema=BENCH_SCHEMA_VERSION,
        python=platform.python_version(),
        platform=platform.platform(),
        num_uops=num_uops,
        repeats=repeats,
        workloads=[workload],
        variants=[variant],
        cells=[cell],
        total_wall_seconds=wall,
        total_uops_per_second=cell.uops_per_second,
        total_cycles_per_second=cell.cycles_per_second,
        peak_rss_bytes=_peak_rss_bytes(),
    )


# ------------------------------------------------------------------- reports


def next_bench_path(directory: Union[str, Path] = ".") -> Path:
    """The next free ``BENCH_<n>.json`` path in ``directory`` (repo root)."""
    directory = Path(directory)
    taken = [
        int(match.group(1))
        for path in directory.glob("BENCH_*.json")
        if (match := _BENCH_FILE_RE.match(path.name))
    ]
    return directory / f"BENCH_{max(taken) + 1 if taken else 0}.json"


def write_report(report: BenchReport, path: Union[str, Path]) -> Path:
    """Write ``report`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: Union[str, Path]) -> BenchReport:
    """Load a report written by :func:`write_report`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return BenchReport.from_dict(json.load(handle))


def format_report(report: BenchReport) -> str:
    """Human-readable throughput table for one report."""
    lines = [
        f"Simulator throughput ({report.num_uops} uops/cell, "
        f"best of {report.repeats}, Python {report.python})",
        f"{'workload':12s} {'variant':16s} {'wall [s]':>10s} "
        f"{'uops/s':>12s} {'cycles/s':>12s}",
    ]
    for cell in report.cells:
        lines.append(
            f"{cell.workload:12s} {cell.variant:16s} {cell.wall_seconds:10.3f} "
            f"{cell.uops_per_second:12.0f} {cell.cycles_per_second:12.0f}"
        )
    lines.append(
        f"{'TOTAL':12s} {'':16s} {report.total_wall_seconds:10.3f} "
        f"{report.total_uops_per_second:12.0f} {report.total_cycles_per_second:12.0f}"
    )
    if report.peak_rss_bytes is not None:
        lines.append(f"peak RSS: {report.peak_rss_bytes / (1 << 20):.1f} MiB")
    return "\n".join(lines)


@dataclass
class CellDelta(JSONSerializable):
    """One matched cell of a report comparison.

    ``speedup`` is current over baseline throughput (``None`` for cells the
    baseline lacks).  ``digests_comparable`` is true only when both runs
    simulated the same ``num_uops``, in which case ``digest_diverged`` says
    whether the timing model changed between the reports.
    """

    workload: str
    variant: str
    baseline_uops_per_second: Optional[float]
    current_uops_per_second: float
    speedup: Optional[float]
    digests_comparable: bool = False
    digest_diverged: bool = False


def compare_cells(baseline: BenchReport, current: BenchReport) -> List[CellDelta]:
    """Match ``current``'s cells against ``baseline`` by (workload, variant)."""
    deltas: List[CellDelta] = []
    for cell in current.cells:
        base = baseline.cell(cell.workload, cell.variant)
        if base is None:
            deltas.append(
                CellDelta(
                    workload=cell.workload,
                    variant=cell.variant,
                    baseline_uops_per_second=None,
                    current_uops_per_second=cell.uops_per_second,
                    speedup=None,
                )
            )
            continue
        # Stitched (sharded) stats are estimates, so digests only gate cells
        # that ran the same uop count with the same shard plan.
        comparable = base.num_uops == cell.num_uops and base.shards == cell.shards
        deltas.append(
            CellDelta(
                workload=cell.workload,
                variant=cell.variant,
                baseline_uops_per_second=base.uops_per_second,
                current_uops_per_second=cell.uops_per_second,
                speedup=(
                    cell.uops_per_second / base.uops_per_second
                    if base.uops_per_second
                    else 0.0
                ),
                digests_comparable=comparable,
                digest_diverged=comparable and base.stats_digest != cell.stats_digest,
            )
        )
    return deltas


def comparison_failures(
    deltas: Sequence[CellDelta], max_slowdown_percent: Optional[float] = None
) -> List[str]:
    """Regression-gate verdicts for a comparison, one message per violation.

    Digest divergence on comparable cells always fails (a perf change must
    not alter timing).  With ``max_slowdown_percent`` set, any matched cell
    whose throughput dropped by more than that fraction fails too.
    """
    failures: List[str] = []
    for delta in deltas:
        if delta.digest_diverged:
            failures.append(
                f"{delta.workload}/{delta.variant}: stats digest diverged "
                f"(timing model changed at equal num_uops)"
            )
        if (
            max_slowdown_percent is not None
            and delta.speedup is not None
            and delta.speedup < 1.0 - max_slowdown_percent / 100.0
        ):
            failures.append(
                f"{delta.workload}/{delta.variant}: {delta.speedup:.2f}x of baseline "
                f"throughput (more than {max_slowdown_percent:.0f}% slowdown)"
            )
    return failures


def compare_reports(baseline: BenchReport, current: BenchReport) -> str:
    """Per-cell throughput deltas of ``current`` over ``baseline``.

    Cells are matched by (workload, variant).  A digest mismatch between
    matched cells run at the same ``num_uops`` means the *timing model*
    changed between the two reports, which a pure perf PR must not do —
    those rows are flagged (and fail :func:`comparison_failures`).
    """
    lines = [
        f"{'workload':12s} {'variant':16s} {'base uops/s':>12s} "
        f"{'now uops/s':>12s} {'speedup':>8s}"
    ]
    speedups: List[float] = []
    for delta in compare_cells(baseline, current):
        if delta.speedup is None or delta.baseline_uops_per_second is None:
            lines.append(
                f"{delta.workload:12s} {delta.variant:16s} {'-':>12s} "
                f"{delta.current_uops_per_second:12.0f} {'new':>8s}"
            )
            continue
        speedups.append(delta.speedup)
        flag = (
            "  !! stats digest diverged (timing changed)"
            if delta.digest_diverged
            else ""
        )
        lines.append(
            f"{delta.workload:12s} {delta.variant:16s} "
            f"{delta.baseline_uops_per_second:12.0f} "
            f"{delta.current_uops_per_second:12.0f} {delta.speedup:7.2f}x{flag}"
        )
    if speedups:
        geomean = 1.0
        for ratio in speedups:
            geomean *= ratio
        geomean **= 1.0 / len(speedups)
        total = (
            current.total_uops_per_second / baseline.total_uops_per_second
            if baseline.total_uops_per_second
            else 0.0
        )
        lines.append(f"geomean speedup: {geomean:.2f}x   aggregate: {total:.2f}x")
    return "\n".join(lines)


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "BenchReport",
    "CellDelta",
    "compare_cells",
    "comparison_failures",
    "DEFAULT_BENCH_UOPS",
    "DEFAULT_BENCH_VARIANTS",
    "DEFAULT_BENCH_WORKLOADS",
    "QUICK_BENCH_UOPS",
    "QUICK_BENCH_VARIANTS",
    "QUICK_BENCH_WORKLOADS",
    "compare_reports",
    "format_report",
    "load_report",
    "next_bench_path",
    "run_bench",
    "run_sharded_bench",
    "SHARD_BENCH_UOPS",
    "SHARD_BENCH_VARIANT",
    "SHARD_BENCH_WORKLOAD",
    "write_report",
]
