"""``python -m repro`` — the reproduction's command-line interface.

Six subcommands drive the experiment engine:

* ``python -m repro list`` — show every registered workload, core variant and
  instrumentation probe;
* ``python -m repro sweep`` — run a benchmarks x variants sweep (optionally in
  parallel and against a result cache) and print the paper's Figure 2/3
  tables; ``--output`` saves the full result for later reporting;
* ``python -m repro report`` — re-render figures/summary from a saved sweep
  without re-simulating anything;
* ``python -m repro trace record|info|replay`` — stream a workload into a
  compressed trace file, inspect it, and replay it through the engine;
* ``python -m repro bench`` — measure simulator throughput (wall-clock,
  uops/s, cycles/s, peak RSS) over a fixed workload x variant matrix, write
  a ``BENCH_<n>.json`` report, and optionally ``--compare`` against a
  previous report (exits nonzero on digest divergence, and on throughput
  regressions beyond ``--max-slowdown``);
* ``python -m repro study run|list|report`` — expand a registered
  sensitivity study (ROB scaling, EMQ capacity, MSHR x prefetcher, DRAM
  latency, ...) into its cartesian product of configurations, run every cell
  through the cached engine, and render markdown/CSV curves;
* ``python -m repro serve`` — run the always-on experiment service: a
  durable HTTP/JSON job queue in front of the engine with a shared result
  cache (see :mod:`repro.service`);
* ``python -m repro submit|status`` — the service's thin client: post a
  sweep/study/replay job document and follow its progress events;
* ``python -m repro cache stats|prune`` — inspect a result cache and
  LRU-evict it down to a byte bound, locally or through a running service;
* ``python -m repro lint`` — run the repo-invariant static-analysis pass
  (determinism sanitizer, cache-schema drift gate, hot-path lint, taxonomy /
  privacy / probe hygiene) over ``src/repro``.

Exit codes are a stable contract (``repro.errors``): 0 success, 1 regression
gate, 2 bad spec/arguments, 3 simulation failure, 4 lint findings, 75 service
busy (``EX_TEMPFAIL``), 130 interrupted.

Reproducing the paper end to end::

    python -m repro sweep --benchmarks all --uops 5000 \
        --workers 4 --cache-dir .repro-cache --output sweep.json
    python -m repro report sweep.json --figure 2
    python -m repro report sweep.json --figure 3

Record/replay round trip::

    python -m repro trace record --workload mcf --uops 5000 --output mcf.trc
    python -m repro trace info mcf.trc --stats
    python -m repro trace replay mcf.trc --variants pre,runahead

Tracking simulator performance::

    python -m repro bench                      # writes BENCH_<n>.json
    python -m repro bench --compare BENCH_0.json
    python -m repro bench --quick              # CI smoke subset
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import os
import signal
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import (
    format_energy_figure,
    format_performance_figure,
    summarize_comparison,
)
from repro.errors import (
    EXIT_BAD_SPEC,
    EXIT_BUSY,
    EXIT_INTERRUPTED,
    EXIT_LINT_FINDINGS,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SIM_FAILURE,
    BadSpecError,
    SimulationError,
)
from repro.service.client import DEFAULT_SERVICE_URL, ServiceClient, ServiceError
from repro.uarch.config import CoreConfig
from repro.registry import (
    PROBE_REGISTRY,
    VARIANT_REGISTRY,
    WORKLOAD_REGISTRY,
    build_workload_source,
)
from repro.simulation.engine import (
    ExperimentEngine,
    ResultCache,
    SweepResult,
    SweepSpec,
)
from repro.simulation.golden import DEFAULT_GOLDEN_WORKLOADS
from repro.workloads.source import (
    FileTraceSource,
    read_trace_header,
    streaming_trace_stats,
    trace_file_digest,
    write_trace_file,
)


def _parse_names(raw: str, available: Sequence[str], kind: str) -> List[str]:
    """Parse a comma-separated name list, with ``all`` meaning every name."""
    if raw.strip() == "all":
        return list(available)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise BadSpecError(f"no {kind} selected (got {raw!r})")
    return names


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--set key=value`` flags into CoreConfig overrides."""
    valid = {field.name for field in dataclasses.fields(CoreConfig)}
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep:
            raise BadSpecError(f"--set expects key=value, got {pair!r}")
        if key not in valid:
            raise BadSpecError(
                f"--set: unknown CoreConfig field {key!r}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        try:
            overrides[key] = ast.literal_eval(value.strip())
        except (ValueError, SyntaxError):
            # Every CoreConfig field is numeric, so an unparseable value is a
            # user error, not a string field.
            raise BadSpecError(
                f"--set: could not parse value {value.strip()!r} for {key!r} "
                f"(expected a number)"
            )
    return overrides


def _parse_co_runners(pairs: Sequence[str]):
    """Parse repeated ``--co-runner WORKLOAD[:VARIANT]`` flags into a spec."""
    from repro.simulation.multicore import CoreAssignment, MultiCoreSpec

    if not pairs:
        return None
    cores = []
    for pair in pairs:
        workload, sep, variant = pair.partition(":")
        workload = workload.strip()
        variant = variant.strip() if sep else "ooo"
        if not workload:
            raise BadSpecError(
                f"--co-runner expects WORKLOAD[:VARIANT], got {pair!r}"
            )
        if workload not in WORKLOAD_REGISTRY.names():
            raise BadSpecError(
                f"--co-runner: unknown workload {workload!r}; "
                f"see 'python -m repro list'"
            )
        if variant not in VARIANT_REGISTRY.names():
            raise BadSpecError(
                f"--co-runner: unknown variant {variant!r}; "
                f"see 'python -m repro list'"
            )
        cores.append(CoreAssignment(workload=workload, variant=variant))
    return MultiCoreSpec(cores=cores)


def _print_comparison(comparison, figure: str) -> None:
    if figure in ("2", "all"):
        print(format_performance_figure(comparison))
        print()
    if figure in ("3", "all"):
        print(format_energy_figure(comparison))
        print()
    if figure in ("summary", "all"):
        print("Headline comparison "
              "(paper: RA +14.5%, RA-buffer +14.4%, PRE +35.5%, PRE+EMQ +28.6%):")
        print(summarize_comparison(comparison))


def _cmd_list(args: argparse.Namespace) -> int:
    print("Variants (figure order):")
    for entry in VARIANT_REGISTRY.entries():
        print(f"  {entry.name:18s} {entry.label:10s} {entry.description}")
    print()
    print("Workloads:")
    for entry in WORKLOAD_REGISTRY.entries():
        print(f"  {entry.name:18s} {entry.description}")
    print()
    print("Probes (attach with --probe):")
    for entry in PROBE_REGISTRY.entries():
        print(f"  {entry.name:18s} {entry.description}")
    from repro.simulation.study import STUDY_REGISTRY

    print()
    print("Sensitivity studies (run with 'python -m repro study run'):")
    for entry in STUDY_REGISTRY.entries():
        print(f"  {entry.name:26s} {entry.description}")
    return EXIT_OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    workloads = _parse_names(args.benchmarks, WORKLOAD_REGISTRY.names(), "benchmarks")
    variants = _parse_names(args.variants, VARIANT_REGISTRY.names(), "variants")
    multicore = _parse_co_runners(args.co_runner or [])
    spec = SweepSpec(
        workloads=workloads,
        variants=variants,
        num_uops=args.uops,
        max_cycles=args.max_cycles,
        configs=[_parse_overrides(args.set or [])],
        probes=list(args.probe or []),
        multicore=multicore,
    )
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    print(
        f"sweeping {len(workloads)} benchmarks x {len(spec.resolved_variants())} variants "
        f"({args.uops} micro-ops each, {args.workers} worker(s)"
        + (f", cache: {args.cache_dir}" if args.cache_dir else "")
        + (
            f", {multicore.num_cores} cores/cell" if multicore is not None else ""
        )
        + ") ...",
        file=sys.stderr,
    )
    result = engine.run_sweep(spec)
    stats = engine.last_run_stats
    print(
        f"done: {stats.total_jobs} cells, {stats.simulated} simulated, "
        f"{stats.cache_hits} from cache\n",
        file=sys.stderr,
    )
    _print_comparison(result.comparison, args.figure)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle)
        print(f"\nfull sweep result written to {args.output}", file=sys.stderr)
    return EXIT_OK


def _cmd_report(args: argparse.Namespace) -> int:
    with open(args.result, "r", encoding="utf-8") as handle:
        result = SweepResult.from_dict(json.load(handle))
    for cell in result.cells:
        if cell.overrides:
            print(f"configuration overrides: {cell.overrides}")
            print()
        _print_comparison(cell.comparison, args.figure)
    return EXIT_OK


def _cmd_trace_record(args: argparse.Namespace) -> int:
    source = build_workload_source(args.workload, num_uops=args.uops)
    count = write_trace_file(args.output, source, name=args.name or args.workload)
    digest = trace_file_digest(args.output)
    size = os.path.getsize(args.output)
    print(f"recorded {count} micro-ops of {args.workload!r} to {args.output}")
    print(f"  file size : {size} bytes ({size / max(count, 1):.2f} B/uop compressed)")
    print(f"  digest    : {digest}")
    return EXIT_OK


def _cmd_trace_info(args: argparse.Namespace) -> int:
    header = read_trace_header(args.trace)
    print(f"trace file : {args.trace}")
    print(f"  name     : {header['name']}")
    print(f"  micro-ops: {header['count']}")
    print(f"  format   : {header['format']} v{header['version']}")
    print(f"  digest   : {trace_file_digest(args.trace)}")
    if args.stats:
        stats = streaming_trace_stats(FileTraceSource(args.trace))
        print(f"  loads    : {stats.num_loads} ({stats.load_fraction:.1%})")
        print(f"  stores   : {stats.num_stores}")
        print(f"  branches : {stats.num_branches}")
        print(f"  unique PCs: {stats.unique_pcs} ({stats.unique_load_pcs} load PCs)")
        print(f"  footprint: {stats.footprint_bytes} bytes")
    return EXIT_OK


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    variants = _parse_names(args.variants, VARIANT_REGISTRY.names(), "variants")
    if args.shards is not None:
        return _trace_replay_sharded(args, variants)
    if args.warmup_uops:
        raise BadSpecError("--warmup-uops only applies to sharded replay (--shards N)")
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    sources = [FileTraceSource(path) for path in args.traces]
    names = [source.name for source in sources]
    print(
        f"replaying {len(sources)} trace file(s) ({', '.join(names)}) x "
        f"{len(variants)} variants ({args.workers} worker(s)"
        + (f", cache: {args.cache_dir}" if args.cache_dir else "")
        + ") ...",
        file=sys.stderr,
    )
    comparison = engine.run_trace_files(
        sources,
        variants=variants,
        max_cycles=args.max_cycles,
        probes=list(args.probe or []),
    )
    stats = engine.last_run_stats
    print(
        f"done: {stats.total_jobs} cells, {stats.simulated} simulated, "
        f"{stats.cache_hits} from cache\n",
        file=sys.stderr,
    )
    _print_comparison(comparison, args.figure)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(comparison.to_dict(), handle)
        print(f"\nfull comparison written to {args.output}", file=sys.stderr)
    return EXIT_OK


def _trace_replay_sharded(args: argparse.Namespace, variants: List[str]) -> int:
    """``trace replay --shards N``: split each trace into windows and stitch."""
    from repro.simulation.shard import run_sharded

    if args.shards < 1:
        raise BadSpecError(f"--shards must be >= 1, got {args.shards}")
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    sources = [FileTraceSource(path) for path in args.traces]
    names = [source.name for source in sources]
    print(
        f"sharded replay of {len(sources)} trace file(s) ({', '.join(names)}) x "
        f"{len(variants)} variants ({args.shards} shard(s), "
        f"{args.warmup_uops} warmup uops, {args.workers} worker(s)"
        + (f", cache: {args.cache_dir}" if args.cache_dir else "")
        + ") ...",
        file=sys.stderr,
    )
    total_jobs = simulated = cache_hits = 0
    output: Dict[str, Dict[str, Any]] = {}
    print(
        f"{'trace':12s} {'variant':16s} {'shards':>6s} {'uops':>10s} "
        f"{'cycles':>10s} {'IPC':>8s}  exact"
    )
    for source in sources:
        per_variant: Dict[str, Any] = {}
        for variant in variants:
            result = run_sharded(
                source,
                variant=variant,
                shards=args.shards,
                warmup_uops=args.warmup_uops,
                engine=engine,
                max_cycles=args.max_cycles,
                probes=list(args.probe or []),
            )
            stats = engine.last_run_stats
            total_jobs += stats.total_jobs
            simulated += stats.simulated
            cache_hits += stats.cache_hits
            per_variant[variant] = result.to_dict()
            print(
                f"{result.trace_name:12s} {variant:16s} {len(result.shards):6d} "
                f"{result.stitched_stats.committed_uops:10d} "
                f"{result.stitched_stats.cycles:10d} "
                f"{result.stitched_ipc:8.3f}  {'yes' if result.exact else 'no'}"
            )
        output[source.name] = per_variant
    print(
        f"done: {total_jobs} cells, {simulated} simulated, "
        f"{cache_hits} from cache\n",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(output, handle)
        print(f"\nsharded results written to {args.output}", file=sys.stderr)
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.simulation import perfbench

    if args.max_slowdown is not None and not args.compare:
        # A gate with no baseline silently checks nothing; fail fast so a
        # CI job that drops --compare cannot turn permanently green.
        raise BadSpecError("--max-slowdown requires --compare PREV.json")
    if args.shards is not None:
        return _bench_sharded(args, perfbench)
    if args.quick:
        default_workloads = perfbench.QUICK_BENCH_WORKLOADS
        default_variants = perfbench.QUICK_BENCH_VARIANTS
        default_uops = perfbench.QUICK_BENCH_UOPS
    else:
        default_workloads = perfbench.DEFAULT_BENCH_WORKLOADS
        default_variants = perfbench.DEFAULT_BENCH_VARIANTS
        default_uops = perfbench.DEFAULT_BENCH_UOPS
    # Explicit selections always win; --quick only changes the defaults.
    workloads = _parse_names(
        args.benchmarks or ",".join(default_workloads),
        WORKLOAD_REGISTRY.names(),
        "benchmarks",
    )
    variants = _parse_names(
        args.variants or ",".join(default_variants),
        VARIANT_REGISTRY.names(),
        "variants",
    )
    num_uops = args.uops if args.uops is not None else default_uops
    for name in workloads:
        WORKLOAD_REGISTRY.get(name)  # fail on typos before any simulation
    for name in variants:
        VARIANT_REGISTRY.get(name)
    print(
        f"benchmarking {len(workloads)} workloads x {len(variants)} variants "
        f"({num_uops} micro-ops/cell, best of {args.repeats}) ...",
        file=sys.stderr,
    )
    report = perfbench.run_bench(
        workloads=workloads,
        variants=variants,
        num_uops=num_uops,
        repeats=args.repeats,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    print(perfbench.format_report(report))
    if not args.no_write:
        path = args.output or perfbench.next_bench_path(args.dir)
        perfbench.write_report(report, path)
        print(f"\nbench report written to {path}", file=sys.stderr)
    if args.compare:
        baseline = perfbench.load_report(args.compare)
        print(f"\nDelta vs {args.compare}:")
        print(perfbench.compare_reports(baseline, report))
        failures = perfbench.comparison_failures(
            perfbench.compare_cells(baseline, report),
            max_slowdown_percent=args.max_slowdown,
        )
        if failures:
            print(
                f"\nbench regression gate FAILED vs {args.compare}:", file=sys.stderr
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return EXIT_REGRESSION
    return EXIT_OK


def _bench_sharded(args: argparse.Namespace, perfbench) -> int:
    """``bench --shards N``: time one long-trace sharded replay end to end."""
    if args.shards < 1:
        raise BadSpecError(f"--shards must be >= 1, got {args.shards}")
    num_uops = args.uops if args.uops is not None else perfbench.SHARD_BENCH_UOPS
    print(
        f"benchmarking sharded replay: {perfbench.SHARD_BENCH_WORKLOAD}/"
        f"{perfbench.SHARD_BENCH_VARIANT} at {num_uops} micro-ops, "
        f"{args.shards} shard(s), {args.workers} worker(s), "
        f"best of {args.repeats} ...",
        file=sys.stderr,
    )
    report = perfbench.run_sharded_bench(
        num_uops=num_uops,
        shards=args.shards,
        workers=args.workers,
        warmup_uops=args.warmup_uops,
        repeats=args.repeats,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    print(perfbench.format_report(report))
    if not args.no_write:
        path = args.output or perfbench.next_bench_path(args.dir)
        perfbench.write_report(report, path)
        print(f"\nbench report written to {path}", file=sys.stderr)
    if args.compare:
        baseline = perfbench.load_report(args.compare)
        print(f"\nDelta vs {args.compare}:")
        print(perfbench.compare_reports(baseline, report))
        failures = perfbench.comparison_failures(
            perfbench.compare_cells(baseline, report),
            max_slowdown_percent=args.max_slowdown,
        )
        if failures:
            print(
                f"\nbench regression gate FAILED vs {args.compare}:", file=sys.stderr
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return EXIT_REGRESSION
    return EXIT_OK


def _cmd_study_list(args: argparse.Namespace) -> int:
    from repro.simulation.study import STUDY_REGISTRY

    if args.quiet:
        for name in STUDY_REGISTRY.names():
            print(name)
        return EXIT_OK
    print("Registered sensitivity studies (run with 'python -m repro study run'):")
    for entry in STUDY_REGISTRY.entries():
        spec = entry.create()
        points = len(spec.expand())
        cells = points * len(spec.resolved_workloads()) * len(spec.resolved_variants())
        print(f"  {entry.name:26s} {entry.description}")
        print(
            f"  {'':26s} axes: "
            + " x ".join(f"{axis.name}[{len(axis.points)}]" for axis in spec.axes)
            + f" -> {points} points, {cells} cells at {spec.num_uops} uops"
        )
    return EXIT_OK


def _cmd_study_run(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_study_markdown, write_study_csv
    from repro.simulation.study import build_study, run_study

    spec = build_study(
        args.study,
        num_uops=args.uops,
        workloads=(
            _parse_names(args.workloads, WORKLOAD_REGISTRY.names(), "workloads")
            if args.workloads
            else None
        ),
        variants=(
            _parse_names(args.variants, VARIANT_REGISTRY.names(), "variants")
            if args.variants
            else None
        ),
    )
    engine = ExperimentEngine(workers=args.workers, cache_dir=args.cache_dir)
    result = run_study(
        spec, engine=engine, progress=lambda line: print(line, file=sys.stderr)
    )
    print(
        f"done: {result.total_jobs} cells, {result.simulated} simulated, "
        f"{result.cache_hits} from cache\n",
        file=sys.stderr,
    )
    print(format_study_markdown(result))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle)
        print(f"\nfull study result written to {args.output}", file=sys.stderr)
    if args.csv:
        write_study_csv(result, args.csv)
        print(f"per-cell curve data written to {args.csv}", file=sys.stderr)
    return EXIT_OK


def _cmd_study_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_study_markdown, write_study_csv
    from repro.simulation.study import StudyResult

    with open(args.result, "r", encoding="utf-8") as handle:
        result = StudyResult.from_dict(json.load(handle))
    print(format_study_markdown(result))
    if args.csv:
        write_study_csv(result, args.csv)
        print(f"per-cell curve data written to {args.csv}", file=sys.stderr)
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import ExperimentService, serve

    service = ExperimentService(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache_dir,
        max_queue=args.max_queue,
        max_concurrent=args.max_concurrent,
        max_cache_bytes=args.max_cache_bytes,
        retry_after=args.retry_after,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        log=lambda line: print(line, file=sys.stderr),
    )
    return asyncio.run(serve(service))


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service.worker import FleetWorker

    worker = FleetWorker(
        args.url,
        name=args.name,
        max_cells=args.max_cells,
        poll_interval=args.poll_interval,
        max_batches=args.max_batches,
        backoff_seed=args.backoff_seed,
        log=lambda line: print(f"work: {line}", file=sys.stderr),
    )
    return worker.run()


def _load_document(path: str) -> Any:
    """Read a job document from a file path, or ``-`` for stdin."""
    try:
        if path == "-":
            return json.load(sys.stdin)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except ValueError as exc:
        raise BadSpecError(f"document is not valid JSON: {exc}") from exc


def _job_failure_exit(summary: Dict[str, Any]) -> int:
    """Map a failed job's stored HTTP status class to the CLI exit code."""
    print(
        f"error: job {summary['id']} failed: {summary.get('error')}",
        file=sys.stderr,
    )
    return EXIT_BAD_SPEC if summary.get("error_status") == 400 else EXIT_SIM_FAILURE


def _cmd_submit(args: argparse.Namespace) -> int:
    document = _load_document(args.document)
    client = ServiceClient(args.url)
    response = client.submit(document)
    cells = response.get("cells", {})
    print(
        f"job {response['id']} queued: {cells.get('cached', 0)}/"
        f"{cells.get('total', 0)} cells already cached",
        file=sys.stderr,
    )
    print(response["id"])
    if args.no_wait:
        return EXIT_OK

    def on_event(event: Dict[str, Any]) -> None:
        if event.get("type") == "cell":
            print(
                f"  cell {event['done']}/{event['total']} ({event['source']})",
                file=sys.stderr,
            )

    final = client.wait(response["id"], on_event=on_event)
    if final["state"] == "failed":
        return _job_failure_exit(final)
    accounting = final.get("accounting") or {}
    print(
        f"done: {accounting.get('total', 0)} cells, "
        f"{accounting.get('simulated', 0)} simulated, "
        f"{accounting.get('cached', 0)} from cache",
        file=sys.stderr,
    )
    if args.output:
        result = client.result(final["id"])
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result["result"], handle)
        print(f"result document written to {args.output}", file=sys.stderr)
    return EXIT_OK


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    if args.job:
        summary = client.job(args.job)
        print(json.dumps(summary, indent=2, sort_keys=True))
        if summary.get("state") == "failed":
            return _job_failure_exit(summary)
        return EXIT_OK
    if args.jobs:
        print(json.dumps(client.jobs(), indent=2, sort_keys=True))
        return EXIT_OK
    print(json.dumps(client.status(), indent=2, sort_keys=True))
    return EXIT_OK


def _require_cache_target(args: argparse.Namespace) -> None:
    if bool(args.url) == bool(args.cache_dir):
        raise BadSpecError(
            "cache commands need exactly one of --cache-dir DIR (local) "
            "or --url URL (a running service)"
        )


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    _require_cache_target(args)
    if args.url:
        stats = ServiceClient(args.url).cache_stats()
    else:
        stats = ResultCache(args.cache_dir).stats().to_dict()
    print(json.dumps(stats, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    _require_cache_target(args)
    if args.url:
        result = ServiceClient(args.url).cache_prune(args.max_bytes)
    else:
        if args.max_bytes is None:
            raise BadSpecError("cache prune --cache-dir needs --max-bytes N")
        result = ResultCache(args.cache_dir).prune(args.max_bytes).to_dict()
    print(json.dumps(result, indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: lint depends on the simulator, never the reverse, and
    # no other subcommand should pay for the analysis machinery.
    from pathlib import Path

    from repro.analysis.lint import (
        LINT_REGISTRY,
        Baseline,
        LintEngine,
        RepoIndex,
        find_repo_root,
        write_baseline,
    )

    if args.list_rules:
        print("Registered lint rules (run with 'python -m repro lint --rules'):")
        for entry in LINT_REGISTRY.entries():
            print(f"  {entry.name:<16} {entry.description}")
        return EXIT_OK

    root = find_repo_root()
    index = RepoIndex.load(root)
    rules = [name.strip() for name in args.rules.split(",")] if args.rules else None
    run = LintEngine(index, rules=rules).run(paths=args.paths or None)

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / "tests" / "goldens" / "lint_baseline.json"
    )
    if args.write_baseline:
        count = write_baseline(run.findings, baseline_path)
        print(f"lint baseline written to {baseline_path} ({count} entries)")
        return EXIT_OK
    if args.no_baseline or not os.path.isfile(baseline_path):
        baseline = Baseline.empty()
    else:
        baseline = Baseline.load(baseline_path)
    new, suppressed = baseline.partition(run.findings)

    if args.format == "json":
        payload = {
            "rules": run.rules,
            "findings": [f.to_dict() for f in new],
            "suppressed": len(suppressed),
            "stale_baseline_keys": baseline.unused_keys(run.findings),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.format_text())
        summary = f"{len(new)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        stale = baseline.unused_keys(run.findings)
        if stale:
            summary += f", {len(stale)} stale baseline entr(y/ies)"
        print(summary, file=sys.stderr)
    return EXIT_LINT_FINDINGS if new else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's evaluation via the experiment engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub_list = sub.add_parser("list", help="list registered workloads and variants")
    sub_list.set_defaults(func=_cmd_list)

    sub_sweep = sub.add_parser("sweep", help="run a benchmarks x variants sweep")
    sub_sweep.add_argument(
        "--benchmarks",
        default=",".join(DEFAULT_GOLDEN_WORKLOADS),
        help="comma-separated workload names, or 'all' for the full suite",
    )
    sub_sweep.add_argument(
        "--variants",
        default="all",
        help="comma-separated variant names, or 'all' (the baseline is always added)",
    )
    sub_sweep.add_argument(
        "--uops", type=int, default=5_000,
        help="micro-ops per benchmark trace (default: 5000)",
    )
    sub_sweep.add_argument(
        "--max-cycles", type=int, default=None,
        help="optional per-simulation cycle budget",
    )
    sub_sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; results are identical either way)",
    )
    sub_sweep.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory; re-runs only simulate changed cells",
    )
    sub_sweep.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="CoreConfig override (repeatable), e.g. --set rob_size=256",
    )
    sub_sweep.add_argument(
        "--probe", action="append", metavar="NAME",
        help="attach an instrumentation probe to every cell (repeatable); "
             "see 'python -m repro list'",
    )
    sub_sweep.add_argument(
        "--co-runner", action="append", metavar="WORKLOAD[:VARIANT]",
        help="add a co-runner core sharing the L3/DRAM with every cell "
             "(repeatable); the cell's own workload/variant is core 0, e.g. "
             "--co-runner mcf:ooo",
    )
    sub_sweep.add_argument(
        "--output", default=None,
        help="write the full sweep result as JSON for 'python -m repro report'",
    )
    sub_sweep.add_argument(
        "--figure", choices=("2", "3", "summary", "all"), default="all",
        help="which figure/table to print (default: all)",
    )
    sub_sweep.set_defaults(func=_cmd_sweep)

    sub_report = sub.add_parser(
        "report", help="render figures from a saved sweep result"
    )
    sub_report.add_argument("result", help="JSON file written by 'sweep --output'")
    sub_report.add_argument(
        "--figure", choices=("2", "3", "summary", "all"), default="all",
        help="which figure/table to print (default: all)",
    )
    sub_report.set_defaults(func=_cmd_report)

    sub_trace = sub.add_parser(
        "trace", help="record, inspect and replay compressed trace files"
    )
    trace_sub = sub_trace.add_subparsers(dest="trace_command", required=True)

    trace_record = trace_sub.add_parser(
        "record", help="stream a registered workload into a trace file"
    )
    trace_record.add_argument(
        "--workload", required=True,
        help="registered workload name (see 'python -m repro list')",
    )
    trace_record.add_argument(
        "--uops", type=int, default=None,
        help="micro-ops to record (default: the workload's own length)",
    )
    trace_record.add_argument(
        "--output", required=True, help="destination trace file path"
    )
    trace_record.add_argument(
        "--name", default=None,
        help="benchmark name stored in the header (default: the workload name)",
    )
    trace_record.set_defaults(func=_cmd_trace_record)

    trace_info = trace_sub.add_parser("info", help="print a trace file's header")
    trace_info.add_argument("trace", help="trace file written by 'trace record'")
    trace_info.add_argument(
        "--stats", action="store_true",
        help="additionally stream the file to compute composition statistics",
    )
    trace_info.set_defaults(func=_cmd_trace_info)

    trace_replay = trace_sub.add_parser(
        "replay", help="simulate recorded trace files through the engine"
    )
    trace_replay.add_argument(
        "traces", nargs="+", help="trace files written by 'trace record'"
    )
    trace_replay.add_argument(
        "--variants", default="all",
        help="comma-separated variant names, or 'all' (the baseline is always added)",
    )
    trace_replay.add_argument(
        "--max-cycles", type=int, default=None,
        help="optional per-simulation cycle budget",
    )
    trace_replay.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; results are identical either way)",
    )
    trace_replay.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory, keyed by trace *content* digest",
    )
    trace_replay.add_argument(
        "--probe", action="append", metavar="NAME",
        help="attach an instrumentation probe to every cell (repeatable)",
    )
    trace_replay.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split each trace into N contiguous windows, run them as "
             "independent jobs (parallel with --workers) and stitch the "
             "statistics; N=1 with no warmup is bit-identical to an "
             "unsharded replay",
    )
    trace_replay.add_argument(
        "--warmup-uops", type=int, default=0, metavar="K",
        help="with --shards: simulate up to K micro-ops before each window "
             "to warm caches/predictors, excluded from the statistics "
             "(default: 0)",
    )
    trace_replay.add_argument(
        "--output", default=None,
        help="write the full comparison as JSON",
    )
    trace_replay.add_argument(
        "--figure", choices=("2", "3", "summary", "all"), default="all",
        help="which figure/table to print (default: all)",
    )
    trace_replay.set_defaults(func=_cmd_trace_replay)

    sub_bench = sub.add_parser(
        "bench",
        help="measure simulator throughput and write a BENCH_<n>.json report",
    )
    sub_bench.add_argument(
        "--benchmarks", default=None,
        help="comma-separated workload names, or 'all' "
             "(default: the Figure-2 six-benchmark matrix)",
    )
    sub_bench.add_argument(
        "--variants", default=None,
        help="comma-separated variant names, or 'all' (default: every variant)",
    )
    sub_bench.add_argument(
        "--uops", type=int, default=None,
        help="micro-ops per cell (default: 3000, or 800 with --quick)",
    )
    sub_bench.add_argument(
        "--repeats", type=int, default=1,
        help="runs per cell; wall time is the best of these (default: 1)",
    )
    sub_bench.add_argument(
        "--quick", action="store_true",
        help="CI smoke matrix: mcf,milc x ooo,pre at 800 micro-ops",
    )
    sub_bench.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="instead of the matrix, time one long-trace sharded replay "
             "(sphinx3/ooo at 60000 micro-ops by default) split N ways",
    )
    sub_bench.add_argument(
        "--warmup-uops", type=int, default=0, metavar="K",
        help="with --shards: per-shard warmup prefix in micro-ops (default: 0)",
    )
    sub_bench.add_argument(
        "--workers", type=int, default=1,
        help="with --shards: worker processes for the shard jobs (default: 1)",
    )
    sub_bench.add_argument(
        "--dir", default=".",
        help="directory for the auto-numbered BENCH_<n>.json (default: cwd)",
    )
    sub_bench.add_argument(
        "--output", default=None,
        help="explicit report path (overrides the auto-numbered name)",
    )
    sub_bench.add_argument(
        "--no-write", action="store_true",
        help="print the table only; do not write a report file",
    )
    sub_bench.add_argument(
        "--compare", default=None, metavar="PREV.json",
        help="print per-cell throughput deltas against a previous report; "
             "exits nonzero if any same-size cell's stats digest diverged",
    )
    sub_bench.add_argument(
        "--max-slowdown", type=float, default=None, metavar="PCT",
        help="with --compare: also exit nonzero when any matched cell's "
             "throughput dropped by more than PCT percent",
    )
    sub_bench.set_defaults(func=_cmd_bench)

    sub_study = sub.add_parser(
        "study", help="run declarative sensitivity studies (config sweeps)"
    )
    study_sub = sub_study.add_subparsers(dest="study_command", required=True)

    study_list = study_sub.add_parser("list", help="list registered studies")
    study_list.add_argument(
        "--quiet", action="store_true", help="print bare study names only"
    )
    study_list.set_defaults(func=_cmd_study_list)

    study_run = study_sub.add_parser(
        "run", help="expand a registered study and run it through the engine"
    )
    study_run.add_argument(
        "study", help="registered study name (see 'python -m repro study list')"
    )
    study_run.add_argument(
        "--uops", type=int, default=None,
        help="micro-ops per cell (default: the study's own setting)",
    )
    study_run.add_argument(
        "--workloads", default=None,
        help="comma-separated workload names overriding the study's suite, "
             "or 'all'",
    )
    study_run.add_argument(
        "--variants", default=None,
        help="comma-separated variant names overriding the study's list "
             "(the baseline is always added)",
    )
    study_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial; results are identical either way)",
    )
    study_run.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory; a warm re-run simulates nothing",
    )
    study_run.add_argument(
        "--output", default=None,
        help="write the full study result as JSON for 'study report'",
    )
    study_run.add_argument(
        "--csv", default=None, metavar="PATH",
        help="additionally write long-format per-cell curve data as CSV",
    )
    study_run.set_defaults(func=_cmd_study_run)

    study_report = study_sub.add_parser(
        "report", help="re-render a saved study result without simulating"
    )
    study_report.add_argument("result", help="JSON file written by 'study run --output'")
    study_report.add_argument(
        "--csv", default=None, metavar="PATH",
        help="additionally write long-format per-cell curve data as CSV",
    )
    study_report.set_defaults(func=_cmd_study_report)

    sub_serve = sub.add_parser(
        "serve",
        help="run the always-on experiment service (HTTP/JSON job queue)",
    )
    sub_serve.add_argument(
        "--state-dir", default=".repro-service",
        help="daemon state root: journal, results, default cache "
             "(default: .repro-service)",
    )
    sub_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    sub_serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port; 0 picks an ephemeral one (default: 8765)",
    )
    sub_serve.add_argument(
        "--workers", type=int, default=1,
        help="engine worker processes per job (default: 1)",
    )
    sub_serve.add_argument(
        "--cache-dir", default=None,
        help="shared result-cache directory (default: STATE_DIR/cache)",
    )
    sub_serve.add_argument(
        "--max-queue", type=int, default=8,
        help="admission bound: queued jobs beyond this get 429 + Retry-After "
             "(default: 8)",
    )
    sub_serve.add_argument(
        "--max-concurrent", type=int, default=1,
        help="jobs executing at once (default: 1)",
    )
    sub_serve.add_argument(
        "--max-cache-bytes", type=int, default=None,
        help="LRU-evict the result cache beyond this many bytes "
             "(default: unbounded)",
    )
    sub_serve.add_argument(
        "--retry-after", type=float, default=5.0,
        help="Retry-After seconds advertised on 429 responses (default: 5)",
    )
    sub_serve.add_argument(
        "--lease-ttl", type=float, default=15.0,
        help="fleet lease lifetime in seconds; a worker that stops "
             "heartbeating for this long has its cells reclaimed "
             "(default: 15)",
    )
    sub_serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="claims a cell may consume before it is quarantined and the "
             "job fails with its traceback (default: 3)",
    )
    sub_serve.set_defaults(func=_cmd_serve)

    sub_work = sub.add_parser(
        "work",
        help="run a fleet worker: pull cell batches from a repro serve "
             "daemon over HTTP (exit 0 drained, 75 unreachable)",
    )
    sub_work.add_argument(
        "--url", default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default: {DEFAULT_SERVICE_URL})",
    )
    sub_work.add_argument(
        "--name", default=None, help="worker display name (default: its id)"
    )
    sub_work.add_argument(
        "--max-cells", type=int, default=1,
        help="cells to lease per claim (default: 1)",
    )
    sub_work.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="idle claim-poll ceiling in seconds (default: 0.5)",
    )
    sub_work.add_argument(
        "--max-batches", type=int, default=None,
        help="exit 0 after completing this many leases (default: until drained)",
    )
    sub_work.add_argument(
        "--backoff-seed", type=int, default=0,
        help="seed for the deterministic retry/idle backoff schedule; give "
             "each worker its own to de-synchronise a fleet (default: 0)",
    )
    sub_work.set_defaults(func=_cmd_work)

    sub_submit = sub.add_parser(
        "submit", help="submit a job document to a running experiment service"
    )
    sub_submit.add_argument(
        "document",
        help="JSON job document path, or '-' for stdin: "
             '{"kind": "sweep"|"study"|"replay", "spec": {...}}',
    )
    sub_submit.add_argument(
        "--url", default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default: {DEFAULT_SERVICE_URL})",
    )
    sub_submit.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit instead of following progress events",
    )
    sub_submit.add_argument(
        "--output", default=None,
        help="after completion, write the job's result document here",
    )
    sub_submit.set_defaults(func=_cmd_submit)

    sub_status = sub.add_parser(
        "status", help="query a running experiment service"
    )
    sub_status.add_argument(
        "job", nargs="?", default=None,
        help="job id to show (default: daemon-level status)",
    )
    sub_status.add_argument(
        "--url", default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default: {DEFAULT_SERVICE_URL})",
    )
    sub_status.add_argument(
        "--jobs", action="store_true", help="list every known job instead"
    )
    sub_status.set_defaults(func=_cmd_status)

    sub_cache = sub.add_parser(
        "cache", help="inspect or prune a result cache (local or via service)"
    )
    cache_sub = sub_cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser(
        "stats", help="entry count and byte totals for a result cache"
    )
    cache_stats.add_argument(
        "--cache-dir", default=None, help="local result-cache directory"
    )
    cache_stats.add_argument(
        "--url", default=None, help="a running service's base URL instead"
    )
    cache_stats.set_defaults(func=_cmd_cache_stats)

    cache_prune = cache_sub.add_parser(
        "prune", help="LRU-evict cache entries down to a byte bound"
    )
    cache_prune.add_argument(
        "--cache-dir", default=None, help="local result-cache directory"
    )
    cache_prune.add_argument(
        "--url", default=None, help="a running service's base URL instead"
    )
    cache_prune.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict least-recently-used entries until the cache fits "
             "(required with --cache-dir; --url defaults to the daemon's bound)",
    )
    cache_prune.set_defaults(func=_cmd_cache_prune)

    sub_lint = sub.add_parser(
        "lint",
        help="run the repo-invariant static-analysis pass over src/repro",
    )
    sub_lint.add_argument(
        "paths", nargs="*",
        help="restrict reported findings to these files/directories "
             "(analysis always covers the whole tree)",
    )
    sub_lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all registered)",
    )
    sub_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default: text)",
    )
    sub_lint.add_argument(
        "--baseline", default=None,
        help="baseline file of grandfathered findings "
             "(default: tests/goldens/lint_baseline.json when present)",
    )
    sub_lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline and report every finding",
    )
    sub_lint.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    sub_lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered lint rules and exit",
    )
    sub_lint.set_defaults(func=_cmd_lint)
    return parser


def _raise_keyboard_interrupt(signum, frame) -> None:
    raise KeyboardInterrupt


def _install_sigterm_handler() -> None:
    """Make SIGTERM unwind like Ctrl-C: pool cleanup runs, exit is 130.

    Without this, SIGTERM during a ``--workers N`` run kills the process with
    the ProcessPoolExecutor's children orphaned mid-write.  ``repro serve``
    replaces it with the event loop's own handler for a journal-flushing
    shutdown.
    """
    try:
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except (ValueError, OSError):
        pass  # not the main thread (embedded use); keep the default


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _install_sigterm_handler()
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into head); exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK
    except KeyboardInterrupt:
        # SIGINT or SIGTERM: the engine has already cancelled/terminated its
        # pool on the way out; report cleanly instead of a traceback.
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BadSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC
    except ServiceError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        if exc.status == 429:
            if exc.retry_after is not None:
                print(
                    f"service busy; retry after {exc.retry_after:.0f}s",
                    file=sys.stderr,
                )
            return EXIT_BUSY
        return EXIT_BAD_SPEC if exc.status < 500 else EXIT_SIM_FAILURE
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SIM_FAILURE
    except (KeyError, ValueError) as exc:
        # Registry lookups raise KeyError and configuration validation raises
        # ValueError, both with user-facing messages — bad-spec class.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return EXIT_BAD_SPEC
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC


if __name__ == "__main__":
    raise SystemExit(main())
