"""The cycle-level out-of-order core model.

``OoOCore`` simulates the baseline core of Table 1 cycle by cycle: an 8-stage
front-end feeding a micro-op queue, 4-wide rename/dispatch into a 192-entry
ROB and 92-entry issue queue, out-of-order issue limited by register readiness
and load/store ports, a three-level cache hierarchy behind the load/store
queues, and 4-wide in-order commit.

Runahead techniques (traditional runahead, the runahead buffer, and PRE) plug
in through a *controller* object (see :mod:`repro.core.base`).  The core calls
the controller at well-defined points — full-window stalls, instruction
completion, dispatch while in runahead mode — and the controller manipulates
core state through public helpers (``rename_and_dispatch``, ``flush_pipeline``,
``poisoned_pregs`` …).  With no controller attached the core is exactly the
baseline out-of-order processor the paper normalises against.

Simulation speed
----------------
The main loop skips idle periods: when no pipeline stage makes progress in a
cycle, the clock jumps directly to the next scheduled event (an execution
completing, the front-end pipeline delivering, or a controller-declared wake
cycle).  This keeps multi-hundred-cycle full-window stalls cheap to simulate
without changing any timing, because in an idle cycle no state changes except
through those scheduled events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple, Union

from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.branch import GShareBranchPredictor
from repro.uarch.config import CoreConfig
from repro.uarch.frontend import FetchedUop, FrontEnd
from repro.uarch.isa import execution_latency
from repro.uarch.issue_queue import IssueQueue
from repro.uarch.lsq import LoadStoreQueues
from repro.uarch.probes import Probe, ProbeSet, default_probes
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rename import RegisterAliasTable, RetirementRAT
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import CoreStats, RunaheadInterval
from repro.workloads.source import MaterializedTrace, TraceSource, as_source
from repro.workloads.trace import MicroOp, Trace, UopClass, is_fp_reg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import RunaheadController


class ExecutionMode:
    """Processor operating mode."""

    NORMAL = "normal"
    RUNAHEAD = "runahead"


class SimulationDeadlock(RuntimeError):
    """Raised when the simulation can make no further progress."""


@dataclass
class DynInstr:
    """A dynamic (renamed, in-flight) instruction."""

    uop: MicroOp
    seq: int
    runahead: bool = False
    src_ops: Tuple[Tuple[bool, int], ...] = ()
    dest_is_fp: Optional[bool] = None
    dest_preg: Optional[int] = None
    prev_preg: Optional[int] = None
    predicted_taken: bool = False
    dispatch_cycle: int = 0
    earliest_issue_cycle: int = 0
    issued: bool = False
    completed: bool = False
    squashed: bool = False
    poisoned: bool = False
    long_latency: bool = False
    in_lsq: bool = False
    issue_cycle: Optional[int] = None
    completion_cycle: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, present in (
                ("R", self.runahead),
                ("I", self.issued),
                ("C", self.completed),
                ("P", self.poisoned),
                ("S", self.squashed),
                ("L", self.long_latency),
            )
            if present
        )
        return f"DynInstr(seq={self.seq}, {self.uop.uop_class.value}@{self.uop.pc:#x}, [{flags}])"


class OoOCore:
    """Cycle-level out-of-order core, optionally extended with a runahead controller."""

    def __init__(
        self,
        trace: Union[Trace, TraceSource],
        config: Optional[CoreConfig] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        controller: Optional["RunaheadController"] = None,
        name: Optional[str] = None,
        probes: Optional[Iterable[Probe]] = None,
    ) -> None:
        self.config = config or CoreConfig()
        source = as_source(trace)
        if (
            controller is not None
            and controller.requires_trace_oracle
            and not isinstance(source, MaterializedTrace)
        ):
            # The runahead-buffer controller indexes future dynamic load
            # instances (its replay oracle), which a forward-only stream
            # cannot serve; fall back to materialising the source.
            source = source.materialized()
        self.source = source
        #: Whole-trace random-access view, available on materialised sources
        #: only (controllers with ``requires_trace_oracle`` rely on it).
        self.trace: Optional[Trace] = (
            source.trace if isinstance(source, MaterializedTrace) else None
        )
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.name = name or ("ooo" if controller is None else controller.name)
        self.stats = CoreStats()
        self.probes = ProbeSet(default_probes() if probes is None else probes)

        self.predictor = GShareBranchPredictor(
            self.config.branch_predictor_entries, self.config.branch_history_bits
        )
        self.frontend = FrontEnd(source, self.config, self.predictor, self.hierarchy, self.stats)
        self.rat = RegisterAliasTable()
        self.retirement_rat = RetirementRAT()
        self.int_rf = PhysicalRegisterFile(self.config.int_registers, name="int")
        self.fp_rf = PhysicalRegisterFile(self.config.fp_registers, name="fp")
        self.rob = ReorderBuffer(self.config.rob_size)
        self.iq = IssueQueue(self.config.issue_queue_size)
        self.lsq = LoadStoreQueues(self.config.load_queue_size, self.config.store_queue_size)

        #: Physical registers whose value is invalid in runahead mode,
        #: identified as (is_fp, physical register) pairs.
        self.poisoned_pregs: Set[Tuple[bool, int]] = set()

        self.mode = ExecutionMode.NORMAL
        self.cycle = 0
        self.committed_trace_uops = 0
        self._events: List[Tuple[int, int, DynInstr]] = []
        self._event_counter = 0
        self._current_stall_seq: Optional[int] = None
        self._open_interval: Optional[RunaheadInterval] = None
        self._store_commit_stalled = False

        self.controller = controller
        if controller is not None:
            controller.attach(self)
        self.probes.attach(self)
        # Bridge the hierarchy's fill/writeback observers onto the probe API
        # only when some probe actually listens, so unprobed runs pay nothing.
        if self.probes.fill:
            self.hierarchy.fill_listener = self._emit_fill
        if self.probes.writeback:
            self.hierarchy.writeback_listener = self._emit_writeback

    # ------------------------------------------------------------------ utils

    def _emit_fill(self, level: str, line_addr: int, cycle: int) -> None:
        for probe in self.probes.fill:
            probe.on_fill(self, level, line_addr, cycle)

    def _emit_writeback(self, level: str, line_addr: int, cycle: int) -> None:
        for probe in self.probes.writeback:
            probe.on_writeback(self, level, line_addr, cycle)

    def regfile_for(self, is_fp: bool) -> PhysicalRegisterFile:
        """Return the integer or floating-point physical register file."""
        return self.fp_rf if is_fp else self.int_rf

    def schedule_completion(self, instr: DynInstr, completion_cycle: int) -> None:
        """Schedule ``instr`` to complete execution at ``completion_cycle``."""
        instr.completion_cycle = completion_cycle
        self._event_counter += 1
        heapq.heappush(self._events, (completion_cycle, self._event_counter, instr))

    @property
    def finished(self) -> bool:
        """Whether every trace micro-op has committed.

        For streaming sources the total is learned when the stream exhausts;
        until then the run is by definition unfinished.
        """
        total = self.frontend.cursor.known_length
        return total is not None and self.committed_trace_uops >= total

    # -------------------------------------------------------------------- run

    def run(self, max_cycles: Optional[int] = None) -> CoreStats:
        """Simulate until the whole trace commits (or ``max_cycles`` elapse)."""
        cursor = self.frontend.cursor
        probes_skipped = self.probes.cycles_skipped
        while not self.finished:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            progress = self.step()
            cursor.trim(self.committed_trace_uops)
            if progress:
                self.cycle += 1
                continue
            if self.finished:
                # A streaming source's length is only learned when the fetch
                # stage exhausts it, possibly inside this very step.
                break
            wake = self._next_wake_cycle()
            if wake is None:
                raise SimulationDeadlock(self._deadlock_report())
            if max_cycles is not None:
                wake = min(wake, max_cycles)
            skipped = max(wake, self.cycle + 1) - self.cycle
            if self._in_full_window_stall():
                self.stats.full_window_stall_cycles += skipped - 1
            if self.mode == ExecutionMode.RUNAHEAD:
                self.stats.runahead_cycles += skipped - 1
            if probes_skipped and skipped > 1:
                # The no-progress cycle itself already fired on_cycle inside
                # step(); the span covers only the fast-forwarded remainder.
                for probe in probes_skipped:
                    probe.on_cycles_skipped(self, self.cycle + 1, self.cycle + skipped)
            self.cycle += skipped
        self.stats.cycles = self.cycle
        # Settle fills whose latency elapsed but that no later access drained,
        # so end-of-run cache/DRAM/writeback statistics cover the whole window
        # (fills still genuinely in flight at the final cycle stay uncounted).
        self.hierarchy.drain(self.cycle)
        self.probes.finish(self, self.stats)
        return self.stats

    def step(self) -> bool:
        """Execute one cycle; return whether any stage made progress."""
        progress = 0
        progress += self._writeback()
        progress += self._commit()
        progress += self._issue()
        progress += self._dispatch()
        progress += self._fetch()
        if self.controller is not None:
            progress += self.controller.tick(self.cycle)
        self._check_full_window_stall()
        if self._in_full_window_stall():
            self.stats.full_window_stall_cycles += 1
        if self.mode == ExecutionMode.RUNAHEAD:
            self.stats.runahead_cycles += 1
        if self.probes.cycle:
            for probe in self.probes.cycle:
                probe.on_cycle(self, self.cycle)
        return progress > 0

    # -------------------------------------------------------------- writeback

    def _writeback(self) -> int:
        count = 0
        while self._events and self._events[0][0] <= self.cycle:
            _, _, instr = heapq.heappop(self._events)
            if instr.squashed:
                continue
            instr.completed = True
            if instr.dest_preg is not None:
                self.regfile_for(bool(instr.dest_is_fp)).set_ready(instr.dest_preg)
                self.stats.events.regfile_writes += 1
                self.stats.events.iq_wakeups += 1
            if instr.uop.is_branch:
                mispredicted = instr.predicted_taken != instr.uop.branch_taken
                self.predictor.update(instr.uop.pc, instr.uop.branch_taken, instr.predicted_taken)
                self.frontend.branch_resolved(instr.seq, self.cycle, mispredicted)
            self.stats.events.executed_uops += 1
            if instr.runahead:
                self.stats.runahead_uops_executed += 1
            if self.controller is not None:
                self.controller.on_complete(instr, self.cycle)
            count += 1
        return count

    # ----------------------------------------------------------------- commit

    def _commit(self) -> int:
        if (
            self.mode == ExecutionMode.RUNAHEAD
            and self.controller is not None
            and self.controller.pseudo_retire_in_runahead
        ):
            return self._pseudo_retire_commit()
        if (
            self.mode == ExecutionMode.RUNAHEAD
            and self.controller is not None
            and not self.controller.commit_in_runahead
        ):
            return 0
        committed = 0
        self._store_commit_stalled = False
        while committed < self.config.pipeline_width:
            head = self.rob.head()
            if head is None or not head.completed:
                break
            store_result = None
            if head.uop.is_store:
                store_result = self.hierarchy.access_data(
                    head.uop.mem_addr, self.cycle, is_write=True, pc=head.uop.pc
                )
                if store_result.retried:
                    # No MSHR entry for the store's write-allocate: the store
                    # stays at the ROB head and commit retries when one frees.
                    self._store_commit_stalled = True
                    break
            self.rob.pop_head()
            self._commit_instr(head, store_result)
            committed += 1
        return committed

    def _commit_instr(self, instr: DynInstr, store_result=None) -> None:
        if instr.dest_preg is not None and instr.uop.dst is not None:
            self.retirement_rat.commit(instr.uop.dst, instr.dest_preg)
            if instr.prev_preg is not None:
                regfile = self.regfile_for(bool(instr.dest_is_fp))
                if regfile.is_allocated(instr.prev_preg):
                    regfile.free(instr.prev_preg)
        if instr.uop.is_store:
            self.stats.committed_stores += 1
            if self.probes.mem_access and store_result is not None:
                for probe in self.probes.mem_access:
                    probe.on_mem_access(self, instr, store_result, self.cycle)
        if instr.uop.is_load:
            self.stats.committed_loads += 1
        if instr.in_lsq:
            self.lsq.release(instr)
        self.committed_trace_uops += 1
        self.stats.committed_uops += 1
        self.stats.events.committed_uops += 1
        self.stats.events.rob_reads += 1
        if self.probes.commit:
            for probe in self.probes.commit:
                probe.on_commit(self, instr, self.cycle)

    def _pseudo_retire_commit(self) -> int:
        """Runahead-mode commit for RA and RA-buffer: drain the window without
        updating architectural state (Section 2.2)."""
        retired = 0
        while retired < self.config.pipeline_width:
            head = self.rob.head()
            if head is None:
                break
            invalid_load = (
                head.uop.is_load and head.issued and head.long_latency and not head.completed
            )
            if not head.completed and not invalid_load:
                break
            self.rob.pop_head()
            if invalid_load and head.dest_preg is not None:
                # The load's result is marked INV; dependents may issue and
                # propagate the poison instead of waiting for the data.
                self.regfile_for(bool(head.dest_is_fp)).set_ready(head.dest_preg)
                self.poisoned_pregs.add((bool(head.dest_is_fp), head.dest_preg))
            if head.prev_preg is not None and head.dest_is_fp is not None:
                regfile = self.regfile_for(bool(head.dest_is_fp))
                if regfile.is_allocated(head.prev_preg):
                    regfile.free(head.prev_preg)
            if head.in_lsq:
                self.lsq.release(head)
            self.stats.events.pseudo_retired_uops += 1
            retired += 1
        return retired

    # ------------------------------------------------------------------ issue

    def _operand_ready(self, instr: DynInstr) -> bool:
        for is_fp, preg in instr.src_ops:
            if self.regfile_for(is_fp).is_ready(preg):
                continue
            if (
                (is_fp, preg) in self.poisoned_pregs
                and self.controller is not None
                and self.controller.treat_poison_as_ready(instr)
            ):
                continue
            return False
        return True

    def _has_poisoned_source(self, instr: DynInstr) -> bool:
        if not self.poisoned_pregs:
            return False
        return any((is_fp, preg) in self.poisoned_pregs for is_fp, preg in instr.src_ops)

    def _issue(self) -> int:
        selected = self.iq.select_ready(
            self.cycle,
            self.config.pipeline_width,
            self._operand_ready,
            self.config.max_loads_per_cycle,
            self.config.max_stores_per_cycle,
        )
        issued = 0
        for instr in selected:
            poisoned = instr.poisoned or self._has_poisoned_source(instr)
            if instr.uop.is_load and not poisoned:
                latency = self._issue_load(instr)
                if latency is None:
                    continue  # MSHR full: retry in a later cycle.
            else:
                latency = execution_latency(instr.uop.uop_class)
                if instr.uop.is_load:
                    instr.poisoned = True
            if poisoned and instr.dest_preg is not None:
                self.poisoned_pregs.add((bool(instr.dest_is_fp), instr.dest_preg))
                instr.poisoned = True
            self.iq.remove(instr)
            instr.issued = True
            instr.issue_cycle = self.cycle
            self.schedule_completion(instr, self.cycle + latency)
            self.stats.events.issued_uops += 1
            self.stats.events.regfile_reads += len(instr.src_ops)
            issued += 1
        return issued

    def _issue_load(self, instr: DynInstr) -> Optional[int]:
        forwarding = None if instr.runahead else self.lsq.forwarding_store(instr)
        self.stats.events.lsq_accesses += 1
        if forwarding is not None:
            return 1
        result = self.hierarchy.access_data(
            instr.uop.mem_addr,
            self.cycle,
            is_write=False,
            is_prefetch=instr.runahead,
            pc=instr.uop.pc,
        )
        if result.retried:
            return None
        instr.long_latency = result.is_long_latency
        if result.is_long_latency:
            self.stats.long_latency_loads += 1
        if instr.runahead:
            self.stats.runahead_prefetches += 1
            if self.controller is not None:
                self.controller.on_runahead_prefetch(instr, result, self.cycle)
        elif result.level.value == "inflight":
            self.stats.loads_hit_under_prefetch += 1
        if self.probes.mem_access:
            for probe in self.probes.mem_access:
                probe.on_mem_access(self, instr, result, self.cycle)
        return max(result.latency, 1)

    # --------------------------------------------------------------- dispatch

    def _dispatch(self) -> int:
        if self.mode == ExecutionMode.RUNAHEAD and self.controller is not None:
            return self.controller.runahead_dispatch(self.cycle)
        dispatched = 0
        while dispatched < self.config.pipeline_width:
            entry = self.frontend.peek()
            if entry is None or entry.ready_cycle > self.cycle:
                break
            if not self._can_dispatch(entry.uop):
                break
            self.frontend.pop_uops(1, self.cycle)
            self.rename_and_dispatch(entry, runahead=False)
            dispatched += 1
        return dispatched

    def _can_dispatch(self, uop: MicroOp) -> bool:
        if self.rob.is_full or self.iq.is_full:
            return False
        if uop.is_memory and not self.lsq.can_dispatch_uop(uop):
            return False
        if uop.dst is not None and self.regfile_for(is_fp_reg(uop.dst)).num_free == 0:
            return False
        return True

    def rename_and_dispatch(
        self, entry: FetchedUop, runahead: bool, enter_rob: Optional[bool] = None
    ) -> DynInstr:
        """Rename ``entry`` and insert it into the back-end.

        Normal-mode instructions enter the ROB, LSQ and issue queue.
        Runahead-mode instructions (``runahead=True``) by default enter only
        the issue queue: they borrow free physical registers, never commit,
        and are discarded after execution (Section 3.3).  Traditional runahead
        passes ``enter_rob=True`` because its speculative instructions occupy
        and pseudo-retire from the ROB.  Callers in runahead mode are
        responsible for checking resource availability first.
        """
        if enter_rob is None:
            enter_rob = not runahead
        uop = entry.uop
        if self.controller is not None:
            self.controller.on_decode(uop, runahead)
        src_ops = tuple((is_fp_reg(reg), self.rat.physical(reg)) for reg in uop.srcs)
        dest_is_fp: Optional[bool] = None
        dest_preg: Optional[int] = None
        prev_preg: Optional[int] = None
        if uop.dst is not None:
            dest_is_fp = is_fp_reg(uop.dst)
            dest_preg = self.regfile_for(dest_is_fp).allocate()
            previous = self.rat.rename(uop.dst, dest_preg, uop.pc)
            prev_preg = previous.physical
        instr = DynInstr(
            uop=uop,
            seq=entry.seq,
            runahead=runahead,
            src_ops=src_ops,
            dest_is_fp=dest_is_fp,
            dest_preg=dest_preg,
            prev_preg=prev_preg,
            predicted_taken=entry.predicted_taken,
            dispatch_cycle=self.cycle,
            earliest_issue_cycle=self.cycle + 1,
        )
        self.stats.events.renamed_uops += 1
        self.stats.events.dispatched_uops += 1
        self.stats.events.iq_writes += 1
        if enter_rob:
            self.rob.push(instr)
            self.stats.events.rob_writes += 1
            if uop.is_memory:
                self.lsq.dispatch(instr)
                instr.in_lsq = True
        self.iq.insert(instr)
        return instr

    # ------------------------------------------------------------------ fetch

    def _fetch(self) -> int:
        return self.frontend.tick(self.cycle)

    # -------------------------------------------------- full-window stalls

    def _in_full_window_stall(self) -> bool:
        head = self.rob.head()
        return (
            self.rob.is_full
            and head is not None
            and head.uop.is_load
            and head.issued
            and not head.completed
            and head.long_latency
        )

    @property
    def in_full_window_stall(self) -> bool:
        """Whether the ROB is full behind an outstanding long-latency load."""
        return self._in_full_window_stall()

    def _check_full_window_stall(self) -> None:
        head = self.rob.head()
        if not self._in_full_window_stall():
            self._current_stall_seq = None
            return
        assert head is not None
        if self._current_stall_seq == head.seq:
            return
        self._current_stall_seq = head.seq
        self.stats.full_window_stalls += 1
        if self.probes.full_window_stall:
            for probe in self.probes.full_window_stall:
                probe.on_full_window_stall(self, head, self.cycle)
        if self.controller is not None and self.mode == ExecutionMode.NORMAL:
            self.controller.on_full_window_stall(head, self.cycle)

    # --------------------------------------------------- runahead transitions

    @property
    def current_runahead_interval(self) -> Optional[RunaheadInterval]:
        """The open runahead interval, if the core is in runahead mode."""
        return self._open_interval

    def enter_runahead(self, cycle: int) -> RunaheadInterval:
        """Switch to runahead mode; returns the interval record to annotate.

        Centralises the bookkeeping every controller used to repeat (interval
        creation, invocation counting) and notifies ``on_runahead_enter``
        probes.
        """
        self.mode = ExecutionMode.RUNAHEAD
        interval = RunaheadInterval(entry_cycle=cycle)
        self._open_interval = interval
        self.stats.intervals.append(interval)
        self.stats.runahead_invocations += 1
        if self.probes.runahead_enter:
            for probe in self.probes.runahead_enter:
                probe.on_runahead_enter(self, cycle)
        return interval

    def exit_runahead(self, cycle: int) -> None:
        """Return to normal mode, close the open interval and notify probes."""
        self.mode = ExecutionMode.NORMAL
        if self._open_interval is not None:
            self._open_interval.exit_cycle = cycle
            self._open_interval = None
        if self.probes.runahead_exit:
            for probe in self.probes.runahead_exit:
                probe.on_runahead_exit(self, cycle)

    # ------------------------------------------------------------------ flush

    def flush_pipeline(self, restart_index: int, extra_frontend_penalty: int = 0) -> None:
        """Discard all in-flight state and restart fetch at ``restart_index``.

        Used by the traditional-runahead and runahead-buffer controllers at
        runahead exit (Section 2.2): the full window is discarded, the
        speculative RAT is rebuilt from the retirement RAT, the register free
        lists are recomputed, and fetch restarts at the stalling load.
        """
        for instr in self.rob.clear():
            instr.squashed = True
            self.stats.events.squashed_uops += 1
        for instr in self.iq.clear():
            instr.squashed = True
        self.lsq.clear()
        self.poisoned_pregs.clear()
        self.rat.restore(self.retirement_rat.to_checkpoint())
        self.int_rf.rebuild(self.retirement_rat.live_physicals(fp=False))
        self.fp_rf.rebuild(self.retirement_rat.live_physicals(fp=True))
        self.frontend.redirect(restart_index, self.cycle, extra_frontend_penalty)
        self.stats.pipeline_flushes += 1

    # ------------------------------------------------------------- wake logic

    def _next_wake_cycle(self) -> Optional[int]:
        candidates: List[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        delivery = self.frontend.earliest_delivery_cycle()
        if delivery is not None:
            candidates.append(delivery)
        if self.frontend._resume_cycle > self.cycle and not self.frontend.trace_exhausted:
            candidates.append(self.frontend._resume_cycle)
        if self.controller is not None:
            wake = self.controller.next_wake_cycle(self.cycle)
            if wake is not None:
                candidates.append(wake)
        if self._store_commit_stalled:
            # A committed store is waiting for an MSHR entry to free; the
            # fills holding them are not all core-scheduled events (hardware
            # prefetches, instruction fetches), so wake when one completes.
            free_at = self.hierarchy.mshrs.earliest_completion(self.cycle)
            candidates.append(
                free_at if free_at is not None and free_at > self.cycle else self.cycle + 1
            )
        future = [cycle for cycle in candidates if cycle > self.cycle]
        return min(future) if future else None

    def _deadlock_report(self) -> str:
        head = self.rob.head()
        total = self.frontend.cursor.known_length
        return (
            f"simulation deadlock at cycle {self.cycle}: committed "
            f"{self.committed_trace_uops}/{total if total is not None else '?'} micro-ops, "
            f"mode={self.mode}, "
            f"ROB={len(self.rob)}/{self.rob.capacity}, IQ={len(self.iq)}/{self.iq.capacity}, "
            f"uop queue={len(self.frontend.uop_queue)}, head={head!r}"
        )
