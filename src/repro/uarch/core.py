"""The cycle-level out-of-order core model.

``OoOCore`` simulates the baseline core of Table 1 cycle by cycle: an 8-stage
front-end feeding a micro-op queue, 4-wide rename/dispatch into a 192-entry
ROB and 92-entry issue queue, out-of-order issue limited by register readiness
and load/store ports, a three-level cache hierarchy behind the load/store
queues, and 4-wide in-order commit.

Runahead techniques (traditional runahead, the runahead buffer, and PRE) plug
in through a *controller* object (see :mod:`repro.core.base`).  The core calls
the controller at well-defined points — full-window stalls, instruction
completion, dispatch while in runahead mode — and the controller manipulates
core state through public helpers (``rename_and_dispatch``, ``flush_pipeline``,
``poisoned_pregs`` …).  With no controller attached the core is exactly the
baseline out-of-order processor the paper normalises against.

Simulation speed
----------------
The main loop skips idle periods: when no pipeline stage makes progress in a
cycle, the clock jumps directly to the next scheduled event (an execution
completing, the front-end pipeline delivering, or a controller-declared wake
cycle).  This keeps multi-hundred-cycle full-window stalls cheap to simulate
without changing any timing, because in an idle cycle no state changes except
through those scheduled events.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple, Union

from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.branch import GShareBranchPredictor
from repro.uarch.config import CoreConfig
from repro.uarch.frontend import FetchedUop, FrontEnd
from repro.uarch.isa import execution_latency
from repro.uarch.issue_queue import IssueQueue
from repro.uarch.lsq import LoadStoreQueues
from repro.uarch.probes import Probe, ProbeSet, default_probes
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rename import RegisterAliasTable, RetirementRAT
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import CoreStats, RunaheadInterval
from repro.workloads.source import MaterializedTrace, TraceSource, as_source
from repro.workloads.trace import FP_REG_BASE, MicroOp, Trace, UopClass, is_fp_reg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import RunaheadController


class ExecutionMode:
    """Processor operating mode."""

    NORMAL = "normal"
    RUNAHEAD = "runahead"


class SimulationDeadlock(RuntimeError):
    """Raised when the simulation can make no further progress."""


class DynInstr:
    """A dynamic (renamed, in-flight) instruction.

    A ``__slots__`` class: tens of thousands are constructed per simulated
    kilocycle and their flags are read in every stage loop, so neither
    ``__dict__`` storage nor dataclass construction overhead is acceptable.
    ``is_load``/``is_store`` mirror the micro-op's precomputed kind flags so
    the issue-select loop reads one attribute instead of two.  Equality is
    identity (each dynamic instance is unique in flight).
    """

    __slots__ = (
        "uop",
        "seq",
        "runahead",
        "src_ops",
        "dest_is_fp",
        "dest_preg",
        "prev_preg",
        "predicted_taken",
        "dispatch_cycle",
        "earliest_issue_cycle",
        "issued",
        "completed",
        "squashed",
        "poisoned",
        "long_latency",
        "in_lsq",
        "issue_cycle",
        "completion_cycle",
        "is_load",
        "is_store",
        "block_op",
    )

    def __init__(
        self,
        uop: MicroOp,
        seq: int,
        runahead: bool = False,
        src_ops: Tuple[Tuple[bool, int], ...] = (),
        dest_is_fp: Optional[bool] = None,
        dest_preg: Optional[int] = None,
        prev_preg: Optional[int] = None,
        predicted_taken: bool = False,
        dispatch_cycle: int = 0,
        earliest_issue_cycle: int = 0,
    ) -> None:
        self.uop = uop
        self.seq = seq
        self.runahead = runahead
        self.src_ops = src_ops
        self.dest_is_fp = dest_is_fp
        self.dest_preg = dest_preg
        self.prev_preg = prev_preg
        self.predicted_taken = predicted_taken
        self.dispatch_cycle = dispatch_cycle
        self.earliest_issue_cycle = earliest_issue_cycle
        self.issued = False
        self.completed = False
        self.squashed = False
        self.poisoned = False
        self.long_latency = False
        self.in_lsq = False
        self.issue_cycle: Optional[int] = None
        self.completion_cycle: Optional[int] = None
        self.is_load = uop.is_load
        self.is_store = uop.is_store
        #: First source operand observed not ready by the issue-select scan
        #: (a (is_fp, preg) pair), memoised so the scan can skip this entry
        #: with one ready-bit read until that register becomes ready.
        self.block_op: Optional[Tuple[bool, int]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, present in (
                ("R", self.runahead),
                ("I", self.issued),
                ("C", self.completed),
                ("P", self.poisoned),
                ("S", self.squashed),
                ("L", self.long_latency),
            )
            if present
        )
        return f"DynInstr(seq={self.seq}, {self.uop.uop_class.value}@{self.uop.pc:#x}, [{flags}])"


class OoOCore:
    """Cycle-level out-of-order core, optionally extended with a runahead controller."""

    def __init__(
        self,
        trace: Union[Trace, TraceSource],
        config: Optional[CoreConfig] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        controller: Optional["RunaheadController"] = None,
        name: Optional[str] = None,
        probes: Optional[Iterable[Probe]] = None,
    ) -> None:
        self.config = config or CoreConfig()
        source = as_source(trace)
        if (
            controller is not None
            and controller.requires_trace_oracle
            and not isinstance(source, MaterializedTrace)
        ):
            # The runahead-buffer controller indexes future dynamic load
            # instances (its replay oracle), which a forward-only stream
            # cannot serve; fall back to materialising the source.
            source = source.materialized()
        self.source = source
        #: Whole-trace random-access view, available on materialised sources
        #: only (controllers with ``requires_trace_oracle`` rely on it).
        self.trace: Optional[Trace] = (
            source.trace if isinstance(source, MaterializedTrace) else None
        )
        self.hierarchy = hierarchy or MemoryHierarchy()
        #: This core's identity on the shared uncore, mirrored from its
        #: memory port; probes receive the core object and can read it to
        #: attribute fills/writebacks/memory accesses in multi-core runs.
        self.core_id = self.hierarchy.core_id
        self.name = name or ("ooo" if controller is None else controller.name)
        self.stats = CoreStats()
        self.probes = ProbeSet(default_probes() if probes is None else probes)

        self.predictor = GShareBranchPredictor(
            self.config.branch_predictor_entries, self.config.branch_history_bits
        )
        self.frontend = FrontEnd(
            source,
            self.config,
            self.predictor,
            self.hierarchy.instruction_port(),
            self.stats,
        )
        self.rat = RegisterAliasTable()
        self.retirement_rat = RetirementRAT()
        self.int_rf = PhysicalRegisterFile(self.config.int_registers, name="int")
        self.fp_rf = PhysicalRegisterFile(self.config.fp_registers, name="fp")
        self.rob = ReorderBuffer(self.config.rob_size)
        self.iq = IssueQueue(self.config.issue_queue_size)
        self.lsq = LoadStoreQueues(self.config.load_queue_size, self.config.store_queue_size)

        #: Physical registers whose value is invalid in runahead mode,
        #: identified as (is_fp, physical register) pairs.
        self.poisoned_pregs: Set[Tuple[bool, int]] = set()

        self.mode = ExecutionMode.NORMAL
        self.cycle = 0
        self.committed_trace_uops = 0
        self._events: List[Tuple[int, int, DynInstr]] = []
        self._event_counter = 0
        self._current_stall_seq: Optional[int] = None
        self._open_interval: Optional[RunaheadInterval] = None
        self._store_commit_stalled = False
        #: Cycle at which statistics collection began (nonzero only when a
        #: warmup prefix was excluded via ``run(stats_start_uop=...)``).
        self._stats_cycle_base = 0
        # Stepping bookkeeping shared between run() and external lockstep
        # drivers (see begin_run/step_cycle).
        self._warmup_target = 0
        self._last_committed = 0

        self.controller = controller
        if controller is not None:
            controller.attach(self)
        self.probes.attach(self)
        # Bridge the hierarchy's fill/writeback observers onto the probe API
        # only when some probe actually listens, so unprobed runs pay nothing.
        if self.probes.fill:
            self.hierarchy.fill_listener = self._emit_fill
        if self.probes.writeback:
            self.hierarchy.writeback_listener = self._emit_writeback

    # ------------------------------------------------------------------ utils

    def _emit_fill(self, level: str, line_addr: int, cycle: int) -> None:
        for probe in self.probes.fill:
            probe.on_fill(self, level, line_addr, cycle)

    def _emit_writeback(self, level: str, line_addr: int, cycle: int) -> None:
        for probe in self.probes.writeback:
            probe.on_writeback(self, level, line_addr, cycle)

    def regfile_for(self, is_fp: bool) -> PhysicalRegisterFile:
        """Return the integer or floating-point physical register file."""
        return self.fp_rf if is_fp else self.int_rf

    def schedule_completion(self, instr: DynInstr, completion_cycle: int) -> None:
        """Schedule ``instr`` to complete execution at ``completion_cycle``."""
        instr.completion_cycle = completion_cycle
        self._event_counter += 1
        heapq.heappush(self._events, (completion_cycle, self._event_counter, instr))

    @property
    def finished(self) -> bool:
        """Whether every trace micro-op has committed.

        For streaming sources the total is learned when the stream exhausts;
        until then the run is by definition unfinished.
        """
        total = self.frontend.cursor.known_length
        return total is not None and self.committed_trace_uops >= total

    # -------------------------------------------------------------------- run

    def run(
        self,
        max_cycles: Optional[int] = None,
        stats_start_uop: Optional[int] = None,
    ) -> CoreStats:
        """Simulate until the whole trace commits (or ``max_cycles`` elapse).

        ``stats_start_uop`` delays statistics collection until that many
        micro-ops have committed: at the crossing every counter is reset in
        place and ``cycles`` counts from that point on, so a shard's warmup
        prefix (which only exists to warm caches, predictors and queues)
        never leaks into the returned stats.  Microarchitectural state is
        *not* reset — that is the entire point of the warmup.

        The loop body is exactly the public stepping API an external
        lockstep driver uses (:meth:`begin_run`, :meth:`step_cycle`,
        :meth:`next_wake_cycle`, :meth:`skip_to`, :meth:`finish_run`) — a
        single-core run and a core inside a
        :class:`~repro.simulation.multicore.MultiCoreSimulator` execute the
        same sequence of operations.
        """
        self.begin_run(stats_start_uop)
        cursor = self.frontend.cursor
        step_cycle = self.step_cycle
        while True:
            total = cursor.known_length
            if total is not None and self.committed_trace_uops >= total:
                break
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if step_cycle():
                self.cycle += 1
                continue
            if self.finished:
                # A streaming source's length is only learned when the fetch
                # stage exhausts it, possibly inside this very step.
                break
            wake = self.next_wake_cycle()
            if wake is None:
                raise SimulationDeadlock(self.deadlock_report())
            if max_cycles is not None:
                wake = min(wake, max_cycles)
            self.skip_to(wake)
        return self.finish_run()

    # ---------------------------------------------------- external stepping

    def begin_run(self, stats_start_uop: Optional[int] = None) -> None:
        """Arm the stepping bookkeeping before the first :meth:`step_cycle`.

        External drivers call this once per core before entering their
        lockstep loop; :meth:`run` calls it internally.
        """
        self._warmup_target = stats_start_uop or 0
        self._last_committed = self.committed_trace_uops

    def step_cycle(self) -> bool:
        """One cycle of work at ``self.cycle``, without advancing the clock.

        Runs :meth:`step` plus the commit bookkeeping (cursor trimming, the
        warmup/measurement boundary); the caller decides how the clock moves
        afterwards — ``+1`` on progress, :meth:`skip_to` on a computed wake
        cycle.  Returns whether any pipeline stage made progress.
        """
        progress = self.step()
        committed = self.committed_trace_uops
        if committed != self._last_committed:
            # Only a cycle that actually retired micro-ops can advance the
            # cursor's trim floor; skip the call on all other iterations.
            self.frontend.cursor.trim(committed)
            self._last_committed = committed
            if self._warmup_target and committed >= self._warmup_target:
                # Commit can overshoot the boundary by up to the pipeline
                # width inside one step; those commits are measured.
                self._begin_measurement(committed - self._warmup_target)
                self._warmup_target = 0
        return progress

    def next_wake_cycle(self) -> Optional[int]:
        """The earliest cycle at which stepping again could make progress.

        ``None`` means no scheduled event exists and the core is deadlocked
        (an external driver with other still-running cores may keep stepping
        them; it must raise once *every* core is stuck).
        """
        return self._next_wake_cycle()

    def skip_to(self, wake: int) -> None:
        """Fast-forward the clock to ``wake`` (at least one cycle) while idle.

        Charges the skipped span to the stall/runahead cycle counters —
        ``skipped - 1`` because the no-progress cycle itself already counted
        inside :meth:`step` — and fires ``on_cycles_skipped`` probes over the
        fast-forwarded remainder.  Must only be called after a no-progress
        :meth:`step_cycle`, mirroring the idle-skip in :meth:`run`.
        """
        stats = self.stats
        skipped = max(wake, self.cycle + 1) - self.cycle
        if self._in_full_window_stall():
            stats.full_window_stall_cycles += skipped - 1
        if self.mode == ExecutionMode.RUNAHEAD:
            stats.runahead_cycles += skipped - 1
        probes_skipped = self.probes.cycles_skipped
        if probes_skipped and skipped > 1:
            # The no-progress cycle itself already fired on_cycle inside
            # step(); the span covers only the fast-forwarded remainder.
            for probe in probes_skipped:
                probe.on_cycles_skipped(self, self.cycle + 1, self.cycle + skipped)
        self.cycle += skipped

    def finish_run(self) -> CoreStats:
        """Close out the run: final cycle count, hierarchy drain, probe finish."""
        self.stats.cycles = self.cycle - self._stats_cycle_base
        # Settle fills whose latency elapsed but that no later access drained,
        # so end-of-run cache/DRAM/writeback statistics cover the whole window
        # (fills still genuinely in flight at the final cycle stay uncounted).
        self.hierarchy.drain(self.cycle)
        self.probes.finish(self, self.stats)
        return self.stats

    def _begin_measurement(self, already_measured: int) -> None:
        """Zero the statistics at the warmup/measurement boundary.

        Mutates :attr:`stats` in place — the object is shared with the
        front-end and any attached probes, so it must keep its identity.
        ``already_measured`` accounts for the commits by which the boundary
        step overshot ``stats_start_uop`` (their load/store breakdown is
        unrecoverable and stays zero; the count itself stays exact).
        """
        stats = self.stats
        for stats_field in dataclasses.fields(CoreStats):
            value = getattr(stats, stats_field.name)
            if isinstance(value, int):
                setattr(stats, stats_field.name, 0)
            elif isinstance(value, list):
                value.clear()
        events = stats.events
        for event_field in dataclasses.fields(type(events)):
            setattr(events, event_field.name, 0)
        stats.committed_uops = already_measured
        events.committed_uops = already_measured
        self._stats_cycle_base = self.cycle

    def step(self) -> bool:
        """Execute one cycle; return whether any stage made progress."""
        cycle = self.cycle
        progress = 0
        if self._events and self._events[0][0] <= cycle:
            progress += self._writeback()
        progress += self._commit()
        if self.iq._entries:
            progress += self._issue()
        progress += self._dispatch()
        progress += self.frontend.tick(cycle)
        controller = self.controller
        if controller is not None:
            progress += controller.tick(cycle)
        # One evaluation serves both the new-stall edge detection and the
        # stall-cycle accounting (this used to be computed twice per step).
        stalled = self._in_full_window_stall()
        self._check_full_window_stall(stalled)
        stats = self.stats
        if stalled:
            stats.full_window_stall_cycles += 1
        if self.mode == ExecutionMode.RUNAHEAD:
            stats.runahead_cycles += 1
        if self.probes.cycle:
            for probe in self.probes.cycle:
                probe.on_cycle(self, cycle)
        return progress > 0

    # -------------------------------------------------------------- writeback

    def _writeback(self) -> int:
        count = 0
        events = self.stats.events
        events_heap = self._events
        cycle = self.cycle
        heappop = heapq.heappop
        controller = self.controller
        while events_heap and events_heap[0][0] <= cycle:
            _, _, instr = heappop(events_heap)
            if instr.squashed:
                continue
            instr.completed = True
            if instr.dest_preg is not None:
                regfile = self.fp_rf if instr.dest_is_fp else self.int_rf
                regfile._ready[instr.dest_preg] = True
                events.regfile_writes += 1
                events.iq_wakeups += 1
            uop = instr.uop
            if uop.is_branch:
                mispredicted = instr.predicted_taken != uop.branch_taken
                self.predictor.update(uop.pc, uop.branch_taken, instr.predicted_taken)
                self.frontend.branch_resolved(instr.seq, cycle, mispredicted)
            events.executed_uops += 1
            if instr.runahead:
                self.stats.runahead_uops_executed += 1
            if controller is not None:
                controller.on_complete(instr, cycle)
            count += 1
        return count

    # ----------------------------------------------------------------- commit

    def _commit(self) -> int:
        if (
            self.mode == ExecutionMode.RUNAHEAD
            and self.controller is not None
            and self.controller.pseudo_retire_in_runahead
        ):
            return self._pseudo_retire_commit()
        if (
            self.mode == ExecutionMode.RUNAHEAD
            and self.controller is not None
            and not self.controller.commit_in_runahead
        ):
            return 0
        committed = 0
        self._store_commit_stalled = False
        entries = self.rob._entries
        width = self.config.pipeline_width
        cycle = self.cycle
        while committed < width:
            if not entries:
                break
            head = entries[0]
            if not head.completed:
                break
            store_result = None
            if head.is_store:
                store_result = self.hierarchy.access_data(
                    head.uop.mem_addr, cycle, is_write=True, pc=head.uop.pc
                )
                if store_result.retried:
                    # No MSHR entry for the store's write-allocate: the store
                    # stays at the ROB head and commit retries when one frees.
                    self._store_commit_stalled = True
                    break
            entries.popleft()
            self._commit_instr(head, store_result)
            committed += 1
        return committed

    def _commit_instr(self, instr: DynInstr, store_result=None) -> None:
        stats = self.stats
        if instr.dest_preg is not None and instr.uop.dst is not None:
            self.retirement_rat.commit(instr.uop.dst, instr.dest_preg)
            if instr.prev_preg is not None:
                regfile = self.fp_rf if instr.dest_is_fp else self.int_rf
                if regfile.is_allocated(instr.prev_preg):
                    regfile.free(instr.prev_preg)
        if instr.is_store:
            stats.committed_stores += 1
            if self.probes.mem_access and store_result is not None:
                for probe in self.probes.mem_access:
                    probe.on_mem_access(self, instr, store_result, self.cycle)
        elif instr.is_load:
            stats.committed_loads += 1
        if instr.in_lsq:
            self.lsq.release(instr)
        self.committed_trace_uops += 1
        stats.committed_uops += 1
        events = stats.events
        events.committed_uops += 1
        events.rob_reads += 1
        if self.probes.commit:
            for probe in self.probes.commit:
                probe.on_commit(self, instr, self.cycle)

    def _pseudo_retire_commit(self) -> int:
        """Runahead-mode commit for RA and RA-buffer: drain the window without
        updating architectural state (Section 2.2)."""
        retired = 0
        while retired < self.config.pipeline_width:
            head = self.rob.head()
            if head is None:
                break
            invalid_load = (
                head.uop.is_load and head.issued and head.long_latency and not head.completed
            )
            if not head.completed and not invalid_load:
                break
            self.rob.pop_head()
            if invalid_load and head.dest_preg is not None:
                # The load's result is marked INV; dependents may issue and
                # propagate the poison instead of waiting for the data.
                self.regfile_for(bool(head.dest_is_fp)).set_ready(head.dest_preg)
                self.poisoned_pregs.add((bool(head.dest_is_fp), head.dest_preg))
            if head.prev_preg is not None and head.dest_is_fp is not None:
                regfile = self.regfile_for(bool(head.dest_is_fp))
                if regfile.is_allocated(head.prev_preg):
                    regfile.free(head.prev_preg)
            if head.in_lsq:
                self.lsq.release(head)
            self.stats.events.pseudo_retired_uops += 1
            retired += 1
        return retired

    # ------------------------------------------------------------------ issue

    def _operand_ready(self, instr: DynInstr) -> bool:
        """Reference implementation of the operand-readiness rule.

        The hot path (:meth:`_issue`) uses per-cycle closures that must stay
        semantically identical to this method; keep the two in sync.
        """
        src_ops = instr.src_ops
        if not src_ops:
            return True
        int_ready = self.int_rf._ready
        fp_ready = self.fp_rf._ready
        poisoned = self.poisoned_pregs
        controller = self.controller
        for op in src_ops:
            is_fp, preg = op
            if fp_ready[preg] if is_fp else int_ready[preg]:
                continue
            if (
                op in poisoned
                and controller is not None
                and controller.treat_poison_as_ready(instr)
            ):
                continue
            return False
        return True

    def _has_poisoned_source(self, instr: DynInstr) -> bool:
        if not self.poisoned_pregs:
            return False
        return any((is_fp, preg) in self.poisoned_pregs for is_fp, preg in instr.src_ops)

    def _issue(self) -> int:
        cycle = self.cycle
        int_ready = self.int_rf._ready
        fp_ready = self.fp_rf._ready
        poisoned = self.poisoned_pregs
        if poisoned:
            controller = self.controller
            treat = (
                controller.treat_poison_as_ready if controller is not None else None
            )

            def operand_ready(instr: DynInstr) -> bool:
                for op in instr.src_ops:
                    is_fp, preg = op
                    if fp_ready[preg] if is_fp else int_ready[preg]:
                        continue
                    if treat is not None and op in poisoned and treat(instr):
                        continue
                    return False
                return True

            selected = self.iq.select_ready(
                cycle,
                self.config.pipeline_width,
                operand_ready,
                self.config.max_loads_per_cycle,
                self.config.max_stores_per_cycle,
            )
        else:
            # Poison-free fast path (every cycle outside runahead mode): the
            # readiness rule collapses to raw ready-bit reads, evaluated
            # inside the issue queue's blocker-memoised scan with no
            # per-cycle closure allocation and no set membership tests.
            selected = self.iq.select_ready_fast(
                cycle,
                self.config.pipeline_width,
                int_ready,
                fp_ready,
                self.config.max_loads_per_cycle,
                self.config.max_stores_per_cycle,
            )
        issued = 0
        events = self.stats.events
        for instr in selected:
            # Named instr_poisoned, not poisoned: the operand_ready closure
            # above captures `poisoned` (the preg set) as a free variable.
            instr_poisoned = instr.poisoned or self._has_poisoned_source(instr)
            if instr.is_load and not instr_poisoned:
                latency = self._issue_load(instr)
                if latency is None:
                    continue  # MSHR full: retry in a later cycle.
            else:
                latency = execution_latency(instr.uop.uop_class)
                if instr.is_load:
                    instr.poisoned = True
            if instr_poisoned and instr.dest_preg is not None:
                self.poisoned_pregs.add((bool(instr.dest_is_fp), instr.dest_preg))
                instr.poisoned = True
            self.iq.remove(instr)
            instr.issued = True
            instr.issue_cycle = cycle
            self.schedule_completion(instr, cycle + latency)
            events.issued_uops += 1
            events.regfile_reads += len(instr.src_ops)
            issued += 1
        return issued

    def _issue_load(self, instr: DynInstr) -> Optional[int]:
        forwarding = None if instr.runahead else self.lsq.forwarding_store(instr)
        self.stats.events.lsq_accesses += 1
        if forwarding is not None:
            return 1
        result = self.hierarchy.access_data(
            instr.uop.mem_addr,
            self.cycle,
            is_write=False,
            is_prefetch=instr.runahead,
            pc=instr.uop.pc,
        )
        if result.retried:
            return None
        instr.long_latency = result.is_long_latency
        if result.is_long_latency:
            self.stats.long_latency_loads += 1
        if instr.runahead:
            self.stats.runahead_prefetches += 1
            if self.controller is not None:
                self.controller.on_runahead_prefetch(instr, result, self.cycle)
        elif result.level.value == "inflight":
            self.stats.loads_hit_under_prefetch += 1
        if self.probes.mem_access:
            for probe in self.probes.mem_access:
                probe.on_mem_access(self, instr, result, self.cycle)
        return max(result.latency, 1)

    # --------------------------------------------------------------- dispatch

    def _dispatch(self) -> int:
        if self.mode == ExecutionMode.RUNAHEAD and self.controller is not None:
            return self.controller.runahead_dispatch(self.cycle)
        queue = self.frontend.uop_queue
        if not queue:
            return 0
        cycle = self.cycle
        dispatched = 0
        width = self.config.pipeline_width
        while dispatched < width and queue:
            entry = queue[0]
            if entry.ready_cycle > cycle:
                break
            if not self.can_dispatch(entry.uop):
                break
            queue.popleft()
            self.rename_and_dispatch(entry, runahead=False)
            dispatched += 1
        return dispatched

    def can_dispatch(self, uop: MicroOp) -> bool:
        """Whether every back-end resource ``uop`` needs is available.

        Part of the controller-facing surface: runahead controllers gate their
        speculative dispatch on the same check as normal dispatch.
        """
        rob = self.rob
        if len(rob._entries) >= rob.capacity:
            return False
        iq = self.iq
        if len(iq._entries) >= iq.capacity:
            return False
        if uop.is_memory and not self.lsq.can_dispatch_uop(uop):
            return False
        if uop.dst is not None and self.regfile_for(is_fp_reg(uop.dst)).num_free == 0:
            return False
        return True

    def rename_and_dispatch(
        self, entry: FetchedUop, runahead: bool, enter_rob: Optional[bool] = None
    ) -> DynInstr:
        """Rename ``entry`` and insert it into the back-end.

        Normal-mode instructions enter the ROB, LSQ and issue queue.
        Runahead-mode instructions (``runahead=True``) by default enter only
        the issue queue: they borrow free physical registers, never commit,
        and are discarded after execution (Section 3.3).  Traditional runahead
        passes ``enter_rob=True`` because its speculative instructions occupy
        and pseudo-retire from the ROB.  Callers in runahead mode are
        responsible for checking resource availability first.
        """
        if enter_rob is None:
            enter_rob = not runahead
        uop = entry.uop
        if self.controller is not None:
            self.controller.on_decode(uop, runahead)
        rat = self.rat
        rat_entries = rat._entries
        src_ops = tuple(
            [(reg >= FP_REG_BASE, rat_entries[reg].physical) for reg in uop.srcs]
        )
        dest_is_fp: Optional[bool] = None
        dest_preg: Optional[int] = None
        prev_preg: Optional[int] = None
        if uop.dst is not None:
            dest_is_fp = uop.dst >= FP_REG_BASE
            dest_preg = (self.fp_rf if dest_is_fp else self.int_rf).allocate()
            previous = rat.rename(uop.dst, dest_preg, uop.pc)
            prev_preg = previous.physical
        cycle = self.cycle
        instr = DynInstr(
            uop=uop,
            seq=entry.seq,
            runahead=runahead,
            src_ops=src_ops,
            dest_is_fp=dest_is_fp,
            dest_preg=dest_preg,
            prev_preg=prev_preg,
            predicted_taken=entry.predicted_taken,
            dispatch_cycle=cycle,
            earliest_issue_cycle=cycle + 1,
        )
        events = self.stats.events
        events.renamed_uops += 1
        events.dispatched_uops += 1
        events.iq_writes += 1
        if enter_rob:
            self.rob.push(instr)
            events.rob_writes += 1
            if uop.is_memory:
                self.lsq.dispatch(instr)
                instr.in_lsq = True
        self.iq.insert(instr)
        return instr

    # -------------------------------------------------- full-window stalls

    def _in_full_window_stall(self) -> bool:
        rob = self.rob
        entries = rob._entries
        if len(entries) < rob.capacity:
            return False
        head = entries[0]
        return head.is_load and head.issued and not head.completed and head.long_latency

    @property
    def in_full_window_stall(self) -> bool:
        """Whether the ROB is full behind an outstanding long-latency load."""
        return self._in_full_window_stall()

    def _check_full_window_stall(self, stalled: Optional[bool] = None) -> None:
        """Detect the start of a new full-window stall.

        ``stalled`` lets :meth:`step` pass its already-computed
        :meth:`_in_full_window_stall` result instead of paying a second
        evaluation per cycle; callers without one omit it.
        """
        if stalled is None:
            stalled = self._in_full_window_stall()
        if not stalled:
            self._current_stall_seq = None
            return
        head = self.rob.head()
        assert head is not None
        if self._current_stall_seq == head.seq:
            return
        self._current_stall_seq = head.seq
        self.stats.full_window_stalls += 1
        if self.probes.full_window_stall:
            for probe in self.probes.full_window_stall:
                probe.on_full_window_stall(self, head, self.cycle)
        if self.controller is not None and self.mode == ExecutionMode.NORMAL:
            self.controller.on_full_window_stall(head, self.cycle)

    # --------------------------------------------------- runahead transitions

    @property
    def current_runahead_interval(self) -> Optional[RunaheadInterval]:
        """The open runahead interval, if the core is in runahead mode."""
        return self._open_interval

    def enter_runahead(self, cycle: int) -> RunaheadInterval:
        """Switch to runahead mode; returns the interval record to annotate.

        Centralises the bookkeeping every controller used to repeat (interval
        creation, invocation counting) and notifies ``on_runahead_enter``
        probes.
        """
        self.mode = ExecutionMode.RUNAHEAD
        interval = RunaheadInterval(entry_cycle=cycle)
        self._open_interval = interval
        self.stats.intervals.append(interval)
        self.stats.runahead_invocations += 1
        if self.probes.runahead_enter:
            for probe in self.probes.runahead_enter:
                probe.on_runahead_enter(self, cycle)
        return interval

    def exit_runahead(self, cycle: int) -> None:
        """Return to normal mode, close the open interval and notify probes."""
        self.mode = ExecutionMode.NORMAL
        if self._open_interval is not None:
            self._open_interval.exit_cycle = cycle
            self._open_interval = None
        if self.probes.runahead_exit:
            for probe in self.probes.runahead_exit:
                probe.on_runahead_exit(self, cycle)

    # ------------------------------------------------------------------ flush

    def flush_pipeline(self, restart_index: int, extra_frontend_penalty: int = 0) -> None:
        """Discard all in-flight state and restart fetch at ``restart_index``.

        Used by the traditional-runahead and runahead-buffer controllers at
        runahead exit (Section 2.2): the full window is discarded, the
        speculative RAT is rebuilt from the retirement RAT, the register free
        lists are recomputed, and fetch restarts at the stalling load.
        """
        for instr in self.rob.clear():
            instr.squashed = True
            self.stats.events.squashed_uops += 1
        for instr in self.iq.clear():
            instr.squashed = True
        self.lsq.clear()
        self.poisoned_pregs.clear()
        self.rat.restore(self.retirement_rat.to_checkpoint())
        self.int_rf.rebuild(self.retirement_rat.live_physicals(fp=False))
        self.fp_rf.rebuild(self.retirement_rat.live_physicals(fp=True))
        self.frontend.redirect(restart_index, self.cycle, extra_frontend_penalty)
        self.stats.pipeline_flushes += 1

    # ------------------------------------------------------------- wake logic

    def _next_wake_cycle(self) -> Optional[int]:
        # Running minimum over the wake candidates: this runs on every
        # no-progress cycle (the stall fast path), so no candidate list is
        # materialised — each source is compared against ``best`` in place.
        cycle = self.cycle
        best: Optional[int] = None
        if self._events:
            candidate = self._events[0][0]
            if candidate > cycle:
                best = candidate
        delivery = self.frontend.earliest_delivery_cycle()
        if delivery is not None and delivery > cycle and (best is None or delivery < best):
            best = delivery
        resume = self.frontend.next_resume_cycle()
        if resume is not None and resume > cycle and (best is None or resume < best):
            best = resume
        if self.controller is not None:
            wake = self.controller.next_wake_cycle(cycle)
            if wake is not None and wake > cycle and (best is None or wake < best):
                best = wake
        if self._store_commit_stalled:
            # A committed store is waiting for an MSHR entry to free; the
            # fills holding them are not all core-scheduled events (hardware
            # prefetches, instruction fetches), so wake when one completes.
            # Asked at the port level: the MSHR file is the hierarchy's own
            # book of record, not the core's to read.
            free_at = self.hierarchy.earliest_completion(cycle)
            if free_at is None or free_at <= cycle:
                free_at = cycle + 1
            if best is None or free_at < best:
                best = free_at
        return best

    def deadlock_report(self) -> str:
        """Human-readable snapshot of why the core can make no progress."""
        head = self.rob.head()
        total = self.frontend.cursor.known_length
        return (
            f"simulation deadlock at cycle {self.cycle}: committed "
            f"{self.committed_trace_uops}/{total if total is not None else '?'} micro-ops, "
            f"mode={self.mode}, "
            f"ROB={len(self.rob)}/{self.rob.capacity}, IQ={len(self.iq)}/{self.iq.capacity}, "
            f"uop queue={len(self.frontend.uop_queue)}, head={head!r}"
        )
