"""Issue queue (reservation stations).

Instructions wait here after dispatch until all their source physical
registers are ready, then issue oldest-first up to the issue width, subject to
per-cycle load/store port limits.  Capacity is 92 entries in the paper's
baseline.  Runahead-mode instructions share the queue with the stalled
window's instructions, which is why Section 3.4 reports free-entry statistics
at runahead entry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.core import DynInstr


class IssueQueue:
    """Bounded, age-ordered pool of not-yet-issued instructions."""

    def __init__(self, capacity: int = 92) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List["DynInstr"] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator["DynInstr"]:
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether dispatch must stall for lack of issue-queue space."""
        return len(self._entries) >= self.capacity

    @property
    def free_entries(self) -> int:
        """Number of unoccupied entries."""
        return self.capacity - len(self._entries)

    @property
    def free_fraction(self) -> float:
        """Fraction of the queue that is free (Section 3.4 statistic)."""
        return self.free_entries / self.capacity

    def insert(self, instr: "DynInstr") -> None:
        """Add a dispatched instruction to the queue."""
        if self.is_full:
            raise OverflowError("issue queue overflow")
        self._entries.append(instr)

    def remove(self, instr: "DynInstr") -> None:
        """Remove an instruction (at issue or squash)."""
        self._entries.remove(instr)

    def select_ready(
        self,
        cycle: int,
        width: int,
        is_ready: Callable[["DynInstr"], bool],
        max_loads: int,
        max_stores: int,
    ) -> List["DynInstr"]:
        """Pick up to ``width`` issuable instructions, oldest first.

        ``is_ready`` decides operand readiness (the core supplies it because
        readiness depends on runahead poison rules).  Load/store port limits
        are enforced here.  Selected instructions remain in the queue; the
        caller removes them once it actually issues them.
        """
        selected: List["DynInstr"] = []
        loads = 0
        stores = 0
        for instr in sorted(self._entries, key=lambda entry: entry.seq):
            if len(selected) >= width:
                break
            if instr.earliest_issue_cycle > cycle:
                continue
            if instr.uop.is_load and loads >= max_loads:
                continue
            if instr.uop.is_store and stores >= max_stores:
                continue
            if not is_ready(instr):
                continue
            selected.append(instr)
            if instr.uop.is_load:
                loads += 1
            elif instr.uop.is_store:
                stores += 1
        return selected

    def squash(self, predicate: Callable[["DynInstr"], bool]) -> List["DynInstr"]:
        """Remove every entry matching ``predicate``; return the removed entries."""
        removed = [instr for instr in self._entries if predicate(instr)]
        self._entries = [instr for instr in self._entries if not predicate(instr)]
        return removed

    def clear(self) -> List["DynInstr"]:
        """Remove all entries (pipeline flush)."""
        removed = self._entries
        self._entries = []
        return removed
