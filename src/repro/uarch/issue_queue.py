"""Issue queue (reservation stations).

Instructions wait here after dispatch until all their source physical
registers are ready, then issue oldest-first up to the issue width, subject to
per-cycle load/store port limits.  Capacity is 92 entries in the paper's
baseline.  Runahead-mode instructions share the queue with the stalled
window's instructions, which is why Section 3.4 reports free-entry statistics
at runahead entry.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.core import DynInstr

_SEQ_KEY = operator.attrgetter("seq")


class IssueQueue:
    """Bounded, age-ordered pool of not-yet-issued instructions.

    ``_entries`` is kept sorted by sequence number: dispatch almost always
    inserts in age order, so instead of re-sorting the whole queue on every
    :meth:`select_ready` call (the previous scheme — the single hottest
    operation in the simulator), an out-of-order insert merely flags the list
    and the rare lazy sort happens on the next select.  Removal never breaks
    the ordering.
    """

    def __init__(self, capacity: int = 92) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List["DynInstr"] = []
        self._sorted = True

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator["DynInstr"]:
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether dispatch must stall for lack of issue-queue space."""
        return len(self._entries) >= self.capacity

    @property
    def free_entries(self) -> int:
        """Number of unoccupied entries."""
        return self.capacity - len(self._entries)

    @property
    def free_fraction(self) -> float:
        """Fraction of the queue that is free (Section 3.4 statistic)."""
        return self.free_entries / self.capacity

    def insert(self, instr: "DynInstr") -> None:
        """Add a dispatched instruction to the queue."""
        entries = self._entries
        if len(entries) >= self.capacity:
            raise OverflowError("issue queue overflow")
        if entries and instr.seq < entries[-1].seq:
            self._sorted = False
        entries.append(instr)

    def remove(self, instr: "DynInstr") -> None:
        """Remove an instruction (at issue or squash)."""
        self._entries.remove(instr)

    def select_ready(
        self,
        cycle: int,
        width: int,
        is_ready: Callable[["DynInstr"], bool],
        max_loads: int,
        max_stores: int,
    ) -> List["DynInstr"]:
        """Pick up to ``width`` issuable instructions, oldest first.

        ``is_ready`` decides operand readiness (the core supplies it because
        readiness depends on runahead poison rules).  Load/store port limits
        are enforced here.  Selected instructions remain in the queue; the
        caller removes them once it actually issues them.
        """
        entries = self._entries
        if not entries:
            return []
        if not self._sorted:
            entries.sort(key=_SEQ_KEY)
            self._sorted = True
        selected: List["DynInstr"] = []
        loads = 0
        stores = 0
        count = 0
        for instr in entries:
            if instr.earliest_issue_cycle > cycle:
                continue
            if instr.is_load:
                if loads >= max_loads:
                    continue
            elif instr.is_store and stores >= max_stores:
                continue
            if not is_ready(instr):
                continue
            selected.append(instr)
            count += 1
            if count >= width:
                break
            if instr.is_load:
                loads += 1
            elif instr.is_store:
                stores += 1
        return selected

    def select_ready_fast(
        self,
        cycle: int,
        width: int,
        int_ready: List[bool],
        fp_ready: List[bool],
        max_loads: int,
        max_stores: int,
    ) -> List["DynInstr"]:
        """Poison-free variant of :meth:`select_ready`.

        Outside runahead mode readiness is exactly "every source register's
        ready bit is set", so the core passes the raw ready-bit arrays and the
        scan checks them inline — no per-entry callback.  Each entry also
        memoises its first not-ready operand (``DynInstr.block_op``): while
        that register's bit stays clear, the entry is skipped with a single
        list index instead of a full operand scan.  The memo is only ever an
        operand *observed* not ready, and a physically not-ready operand
        implies not-ready under the poison-free rule, so a memo-driven skip
        can never diverge from the full scan; poison-mode selection
        (:meth:`select_ready`) simply ignores the memo, where a not-ready
        register may still count as ready.
        """
        entries = self._entries
        if not entries:
            return []
        if not self._sorted:
            entries.sort(key=_SEQ_KEY)
            self._sorted = True
        selected: List["DynInstr"] = []
        loads = 0
        stores = 0
        count = 0
        for instr in entries:
            if instr.earliest_issue_cycle > cycle:
                continue
            if instr.is_load:
                if loads >= max_loads:
                    continue
            elif instr.is_store and stores >= max_stores:
                continue
            block = instr.block_op
            if block is not None:
                if not (fp_ready[block[1]] if block[0] else int_ready[block[1]]):
                    continue
                instr.block_op = None
            ready = True
            for op in instr.src_ops:
                if not (fp_ready[op[1]] if op[0] else int_ready[op[1]]):
                    instr.block_op = op
                    ready = False
                    break
            if not ready:
                continue
            selected.append(instr)
            count += 1
            if count >= width:
                break
            if instr.is_load:
                loads += 1
            elif instr.is_store:
                stores += 1
        return selected

    def squash(self, predicate: Callable[["DynInstr"], bool]) -> List["DynInstr"]:
        """Remove every entry matching ``predicate``; return the removed entries."""
        removed = [instr for instr in self._entries if predicate(instr)]
        if removed:
            self._entries = [instr for instr in self._entries if not predicate(instr)]
        return removed

    def clear(self) -> List["DynInstr"]:
        """Remove all entries (pipeline flush)."""
        removed = self._entries
        self._entries = []
        self._sorted = True
        return removed
