"""Execution statistics collected by the core.

``CoreStats`` is the single record every experiment consumes: cycle and
micro-op counts for IPC, full-window-stall accounting, per-runahead-interval
characterisation (needed for the Section 2.4 and 5.1 statistics), resource
occupancy snapshots at runahead entry (Section 3.4), and the per-structure
event counts the energy model multiplies by per-access energies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.serde import JSONSerializable


@dataclass
class EventCounts(JSONSerializable):
    """Per-structure dynamic event counts used by the energy model."""

    fetched_uops: int = 0
    decoded_uops: int = 0
    renamed_uops: int = 0
    dispatched_uops: int = 0
    issued_uops: int = 0
    executed_uops: int = 0
    committed_uops: int = 0
    pseudo_retired_uops: int = 0
    squashed_uops: int = 0
    regfile_reads: int = 0
    regfile_writes: int = 0
    rob_writes: int = 0
    rob_reads: int = 0
    iq_writes: int = 0
    iq_wakeups: int = 0
    lsq_accesses: int = 0
    branch_predictions: int = 0
    branch_mispredictions: int = 0
    sst_lookups: int = 0
    sst_hits: int = 0
    sst_inserts: int = 0
    prdq_writes: int = 0
    prdq_deallocations: int = 0
    emq_writes: int = 0
    emq_reads: int = 0
    runahead_buffer_reads: int = 0
    runahead_buffer_writes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return all counters as a plain dictionary."""
        return dict(self.__dict__)


@dataclass
class RunaheadInterval:
    """One runahead episode, from entry to exit."""

    entry_cycle: int
    exit_cycle: int = -1
    prefetches_issued: int = 0
    uops_executed: int = 0

    @property
    def length(self) -> int:
        """Duration of the interval in cycles (0 while still open)."""
        if self.exit_cycle < 0:
            return 0
        return self.exit_cycle - self.entry_cycle


@dataclass
class ResourceSnapshot:
    """Free-resource occupancy observed at a full-window stall (Section 3.4)."""

    cycle: int
    free_iq_fraction: float
    free_int_reg_fraction: float
    free_fp_reg_fraction: float


@dataclass
class CoreStats(JSONSerializable):
    """Aggregate statistics of one simulation run."""

    cycles: int = 0
    committed_uops: int = 0
    committed_loads: int = 0
    committed_stores: int = 0

    full_window_stalls: int = 0
    full_window_stall_cycles: int = 0

    runahead_invocations: int = 0
    runahead_cycles: int = 0
    runahead_uops_executed: int = 0
    runahead_prefetches: int = 0
    runahead_useful_prefetches: int = 0
    runahead_entries_skipped_short: int = 0
    pipeline_flushes: int = 0

    long_latency_loads: int = 0
    loads_hit_under_prefetch: int = 0

    events: EventCounts = field(default_factory=EventCounts)
    intervals: List[RunaheadInterval] = field(default_factory=list)
    stall_snapshots: List[ResourceSnapshot] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle."""
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def average_interval_length(self) -> float:
        """Mean runahead-interval length in cycles."""
        closed = [interval.length for interval in self.intervals if interval.exit_cycle >= 0]
        return sum(closed) / len(closed) if closed else 0.0

    def short_interval_fraction(self, threshold: int = 20) -> float:
        """Fraction of runahead intervals shorter than ``threshold`` cycles (Section 2.4)."""
        closed = [interval for interval in self.intervals if interval.exit_cycle >= 0]
        if not closed:
            return 0.0
        short = sum(1 for interval in closed if interval.length < threshold)
        return short / len(closed)

    def mean_free_resources(self) -> Dict[str, float]:
        """Mean free IQ/int-RF/fp-RF fractions observed at full-window stalls (Section 3.4)."""
        if not self.stall_snapshots:
            return {"iq": 0.0, "int_regs": 0.0, "fp_regs": 0.0}
        count = len(self.stall_snapshots)
        return {
            "iq": sum(s.free_iq_fraction for s in self.stall_snapshots) / count,
            "int_regs": sum(s.free_int_reg_fraction for s in self.stall_snapshots) / count,
            "fp_regs": sum(s.free_fp_reg_fraction for s in self.stall_snapshots) / count,
        }
