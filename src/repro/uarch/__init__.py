"""Out-of-order core substrate.

A cycle-level model of a modern out-of-order core with the structure sizes of
Table 1 in the paper: 192-entry ROB, 92-entry issue queue, 64-entry load and
store queues, 4-wide rename/dispatch/issue/commit, an 8-stage front-end
delivering up to 8 micro-ops per cycle, and 168 integer + 168 floating-point
physical registers.  Runahead techniques plug into the core through the
controller interface in :mod:`repro.core`.
"""

from repro.uarch.config import CoreConfig
from repro.uarch.core import DynInstr, ExecutionMode, OoOCore
from repro.uarch.branch import GShareBranchPredictor
from repro.uarch.frontend import FrontEnd
from repro.uarch.isa import execution_latency
from repro.uarch.issue_queue import IssueQueue
from repro.uarch.lsq import LoadStoreQueues
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rename import RATCheckpoint, RegisterAliasTable
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import CoreStats

__all__ = [
    "CoreConfig",
    "CoreStats",
    "DynInstr",
    "ExecutionMode",
    "FrontEnd",
    "GShareBranchPredictor",
    "IssueQueue",
    "LoadStoreQueues",
    "OoOCore",
    "PhysicalRegisterFile",
    "RATCheckpoint",
    "RegisterAliasTable",
    "ReorderBuffer",
    "execution_latency",
]
