"""Register Alias Table (RAT).

The RAT maps each of the 64 architectural registers to its current physical
register.  Following Section 3.2 of the paper, every mapping is extended with
the program counter of the instruction that last produced the register
(``producer_pc``); the Stalling Slice Table uses this field to walk backwards
from a stalling load to its producers one decode at a time.

The RAT can be checkpointed and restored in O(1) entries — PRE checkpoints it
at runahead entry and restores it at exit (Sections 3.1 and 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.workloads.trace import FP_REG_BASE, NUM_ARCH_REGS, is_fp_reg


@dataclass(frozen=True)
class RATEntry:
    """One architectural register's current mapping."""

    physical: int
    producer_pc: Optional[int] = None


@dataclass(frozen=True)
class RATCheckpoint:
    """An immutable snapshot of the full RAT."""

    entries: Tuple[RATEntry, ...]


class RegisterAliasTable:
    """Speculative register alias table with producer-PC extension."""

    def __init__(self, num_entries: int = NUM_ARCH_REGS) -> None:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        self.num_entries = num_entries
        # At reset, architectural register i maps to physical register i of its
        # bank: integer arch regs 0..31 -> int p0..p31, fp arch regs 32..63 ->
        # fp p0..p31.
        self._entries: List[RATEntry] = [
            RATEntry(physical=self.initial_physical(arch)) for arch in range(num_entries)
        ]

    @staticmethod
    def initial_physical(arch: int) -> int:
        """Physical register bound to architectural register ``arch`` at reset."""
        return arch - FP_REG_BASE if is_fp_reg(arch) else arch

    # ----------------------------------------------------------------- lookup

    def physical(self, arch: int) -> int:
        """Current physical register mapped to ``arch``."""
        return self._entries[arch].physical

    def producer_pc(self, arch: int) -> Optional[int]:
        """PC of the instruction that last renamed ``arch`` (None at reset)."""
        return self._entries[arch].producer_pc

    def entry(self, arch: int) -> RATEntry:
        """Full mapping entry for ``arch``."""
        return self._entries[arch]

    # ----------------------------------------------------------------- update

    def rename(self, arch: int, physical: int, producer_pc: Optional[int]) -> RATEntry:
        """Point ``arch`` at ``physical``; return the previous mapping."""
        previous = self._entries[arch]
        self._entries[arch] = RATEntry(physical=physical, producer_pc=producer_pc)
        return previous

    # ----------------------------------------------------- checkpoint/restore

    def checkpoint(self) -> RATCheckpoint:
        """Snapshot the whole table."""
        return RATCheckpoint(entries=tuple(self._entries))

    def restore(self, checkpoint: RATCheckpoint) -> None:
        """Restore a snapshot taken with :meth:`checkpoint`."""
        if len(checkpoint.entries) != self.num_entries:
            raise ValueError("checkpoint size does not match RAT size")
        self._entries = list(checkpoint.entries)

    # ------------------------------------------------------------------ views

    def live_physicals(self, fp: bool) -> Set[int]:
        """Physical registers currently mapped by integer (or fp) architectural registers."""
        live = set()
        for arch in range(self.num_entries):
            if is_fp_reg(arch) == fp:
                live.add(self._entries[arch].physical)
        return live

    def as_dict(self) -> Dict[int, RATEntry]:
        """Return a copy of the table as a dictionary keyed by architectural register."""
        return {arch: self._entries[arch] for arch in range(self.num_entries)}


class RetirementRAT:
    """Architectural (retirement-time) register mapping.

    Updated only at commit, it always reflects the committed architectural
    state.  Pipeline flushes (runahead exit in RA/RA-buffer, for example)
    rebuild the speculative RAT and the register free lists from this table.
    """

    def __init__(self, num_entries: int = NUM_ARCH_REGS) -> None:
        self.num_entries = num_entries
        self._physical: List[int] = [
            RegisterAliasTable.initial_physical(arch) for arch in range(num_entries)
        ]

    def physical(self, arch: int) -> int:
        """Physical register holding the committed value of ``arch``."""
        return self._physical[arch]

    def commit(self, arch: int, physical: int) -> int:
        """Record that ``arch`` now commits to ``physical``; return the old mapping."""
        previous = self._physical[arch]
        self._physical[arch] = physical
        return previous

    def live_physicals(self, fp: bool) -> Set[int]:
        """Physical registers holding committed state for one register bank."""
        live = set()
        for arch in range(self.num_entries):
            if is_fp_reg(arch) == fp:
                live.add(self._physical[arch])
        return live

    def to_checkpoint(self) -> RATCheckpoint:
        """Express the retirement mapping as a RAT checkpoint (producer PCs cleared)."""
        return RATCheckpoint(
            entries=tuple(RATEntry(physical=phys) for phys in self._physical)
        )
