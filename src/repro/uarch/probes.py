"""Pluggable instrumentation probes.

Measurement used to be hardwired into the core: resource snapshots, interval
logging and any new analysis meant editing ``uarch/core.py``.  Probes invert
that: the core publishes a small set of semantic events and registered
observers consume them.  The built-in :class:`~repro.uarch.stats.CoreStats`
counters remain the timing/energy model's always-on accounting, while
everything optional — stall snapshots, IPC timelines, stall breakdowns,
runahead-interval logs, memory-level profiles — is a :class:`Probe` that can
be attached per run, selected by registry name from
:class:`~repro.simulation.engine.ExperimentEngine` or the ``--probe`` CLI
flag, and report arbitrary JSON-able data into
:attr:`~repro.simulation.simulator.SimulationResult.probe_reports`.

Probe lifecycle and hooks
-------------------------
``on_attach`` fires once when the core is constructed; ``on_finish`` once when
the run completes.  In between the core emits:

* ``on_cycle(core, cycle)`` — once per *executed* cycle;
* ``on_cycles_skipped(core, start, end)`` — when the idle-skip optimisation
  fast-forwards the clock over the ``end - start`` cycles in ``[start, end)``
  (no state changes inside; the cycle before ``start`` already fired
  ``on_cycle``);
* ``on_commit(core, instr, cycle)`` — an instruction retired architecturally;
* ``on_runahead_enter/on_runahead_exit(core, cycle)`` — runahead mode
  transitions;
* ``on_mem_access(core, instr, result, cycle)`` — a load issued to or a store
  committed into the data memory hierarchy (``result`` is the
  :class:`~repro.memory.hierarchy.AccessResult`);
* ``on_fill(core, level, line_addr, cycle)`` — a fill transaction completed
  and installed ``line_addr`` into cache ``level`` (fills land when their
  latency elapses, not when the miss issues);
* ``on_writeback(core, level, line_addr, cycle)`` — a dirty victim left
  ``level`` for the next level down (the last hop is a DRAM write);
* ``on_full_window_stall(core, instr, cycle)`` — a new full-window stall began
  behind long-latency load ``instr``.

Hook dispatch is pay-as-you-go: :class:`ProbeSet` indexes which probes
override which hook, so runs without probes skip the plumbing entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.registry import PROBE_REGISTRY, register_probe
from repro.uarch.stats import ResourceSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hierarchy import AccessResult
    from repro.uarch.core import DynInstr, OoOCore
    from repro.uarch.stats import CoreStats


class Probe:
    """Base class for instrumentation probes; every hook defaults to a no-op."""

    #: Registry/report key for this probe.
    name = "probe"

    def on_attach(self, core: "OoOCore") -> None:
        """The probe was attached to ``core`` (before the first cycle)."""

    def on_cycle(self, core: "OoOCore", cycle: int) -> None:
        """One pipeline cycle executed."""

    def on_cycles_skipped(self, core: "OoOCore", start: int, end: int) -> None:
        """The idle-skip optimisation advanced the clock from ``start`` to ``end``."""

    def on_commit(self, core: "OoOCore", instr: "DynInstr", cycle: int) -> None:
        """``instr`` committed architecturally."""

    def on_runahead_enter(self, core: "OoOCore", cycle: int) -> None:
        """The core entered runahead mode."""

    def on_runahead_exit(self, core: "OoOCore", cycle: int) -> None:
        """The core returned to normal mode."""

    def on_mem_access(
        self, core: "OoOCore", instr: "DynInstr", result: "AccessResult", cycle: int
    ) -> None:
        """A data-memory access was performed for ``instr``."""

    def on_fill(self, core: "OoOCore", level: str, line_addr: int, cycle: int) -> None:
        """A completed fill installed ``line_addr`` into cache ``level``."""

    def on_writeback(self, core: "OoOCore", level: str, line_addr: int, cycle: int) -> None:
        """A dirty victim of ``level`` was written back to the next level down."""

    def on_full_window_stall(self, core: "OoOCore", instr: "DynInstr", cycle: int) -> None:
        """A new full-window stall began behind long-latency load ``instr``."""

    def on_finish(self, core: "OoOCore", stats: "CoreStats") -> None:
        """The run completed; ``stats`` is the final record."""

    def report(self) -> Optional[Any]:
        """JSON-able findings for :attr:`SimulationResult.probe_reports`.

        Return ``None`` (the default) to stay out of the result record —
        appropriate for probes that only mutate ``CoreStats`` in place.
        """
        return None


#: Hook names indexed by :class:`ProbeSet` (on_attach/on_finish always fire).
_HOOKS = (
    "on_cycle",
    "on_cycles_skipped",
    "on_commit",
    "on_runahead_enter",
    "on_runahead_exit",
    "on_mem_access",
    "on_fill",
    "on_writeback",
    "on_full_window_stall",
)


class ProbeSet:
    """Dispatches core events to the subset of probes that observe each hook."""

    def __init__(self, probes: Iterable[Probe] = ()) -> None:
        self.all: List[Probe] = list(probes)
        for hook in _HOOKS:
            base = getattr(Probe, hook)
            interested = [
                probe for probe in self.all if getattr(type(probe), hook) is not base
            ]
            setattr(self, hook.replace("on_", "", 1), interested)

    def __len__(self) -> int:
        return len(self.all)

    def attach(self, core: "OoOCore") -> None:
        for probe in self.all:
            probe.on_attach(core)

    def finish(self, core: "OoOCore", stats: "CoreStats") -> None:
        for probe in self.all:
            probe.on_finish(core, stats)

    def reports(self) -> Dict[str, Any]:
        """Collected non-``None`` reports keyed by probe name."""
        collected: Dict[str, Any] = {}
        for probe in self.all:
            report = probe.report()
            if report is not None:
                collected[probe.name] = report
        return collected


# -------------------------------------------------------------- built-in probes


class ResourceSnapshotProbe(Probe):
    """Record free-resource occupancy at each new full-window stall.

    This is the Section 3.4 statistic that used to be collected inline by the
    core; it now rides the probe API and writes into the run's ``CoreStats``
    (``stall_snapshots``), so default instrumentation is unchanged.
    """

    name = "stall_snapshots"

    def on_full_window_stall(self, core: "OoOCore", instr: "DynInstr", cycle: int) -> None:
        core.stats.stall_snapshots.append(
            ResourceSnapshot(
                cycle=cycle,
                free_iq_fraction=core.iq.free_fraction,
                free_int_reg_fraction=core.int_rf.free_fraction,
                free_fp_reg_fraction=core.fp_rf.free_fraction,
            )
        )


def default_probes() -> List[Probe]:
    """The probes every simulation carries unless explicitly overridden.

    These populate the parts of :class:`CoreStats` that the paper's analyses
    rely on; passing ``probes=[]`` to :class:`~repro.uarch.core.OoOCore`
    yields a bare core without them.
    """
    return [ResourceSnapshotProbe()]


@register_probe("ipc_timeline", description="sampled (cycle, committed uops) IPC timeline")
def _build_ipc_timeline() -> "IPCTimelineProbe":
    return IPCTimelineProbe()


class IPCTimelineProbe(Probe):
    """Sample committed-instruction progress over time.

    Report: ``{"period": N, "samples": [[cycle, committed_uops], ...]}`` —
    enough to plot an IPC-over-time curve or locate phase changes.
    """

    name = "ipc_timeline"

    def __init__(self, period: int = 1_000) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.samples: List[List[int]] = []
        self._next_sample = 0

    def _sample(self, core: "OoOCore", cycle: int) -> None:
        self.samples.append([cycle, core.stats.committed_uops])
        self._next_sample = cycle + self.period

    def on_cycle(self, core: "OoOCore", cycle: int) -> None:
        if cycle >= self._next_sample:
            self._sample(core, cycle)

    def on_cycles_skipped(self, core: "OoOCore", start: int, end: int) -> None:
        # No commits happen inside a skipped span; one sample at its end
        # keeps the timeline's cadence without fabricating intermediate data.
        if end >= self._next_sample:
            self._sample(core, end)

    def on_finish(self, core: "OoOCore", stats: "CoreStats") -> None:
        if not self.samples or self.samples[-1][0] != stats.cycles:
            self.samples.append([stats.cycles, stats.committed_uops])

    def report(self) -> Dict[str, Any]:
        return {"period": self.period, "samples": self.samples}


@register_probe("stall_breakdown", description="cycles classified by pipeline state")
def _build_stall_breakdown() -> "StallBreakdownProbe":
    return StallBreakdownProbe()


class StallBreakdownProbe(Probe):
    """Classify every simulated cycle by what the pipeline was doing.

    Categories: ``runahead`` (speculative pre-execution), ``full_window_stall``
    (ROB full behind a long-latency load, not in runahead),
    ``frontend_starved`` (window empty), and ``busy`` (everything else).
    Report: cycle counts plus fractions.
    """

    name = "stall_breakdown"

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {
            "busy": 0,
            "full_window_stall": 0,
            "runahead": 0,
            "frontend_starved": 0,
        }

    def _classify(self, core: "OoOCore") -> str:
        # Imported lazily: core imports this module at load time.
        from repro.uarch.core import ExecutionMode

        if core.mode == ExecutionMode.RUNAHEAD:
            return "runahead"
        if core.in_full_window_stall:
            return "full_window_stall"
        if len(core.rob) == 0:
            return "frontend_starved"
        return "busy"

    def on_cycle(self, core: "OoOCore", cycle: int) -> None:
        self.counts[self._classify(core)] += 1

    def on_cycles_skipped(self, core: "OoOCore", start: int, end: int) -> None:
        # State is frozen across a skipped span, so the whole span shares the
        # classification at its start.
        self.counts[self._classify(core)] += end - start

    def report(self) -> Dict[str, Any]:
        total = sum(self.counts.values())
        return {
            "cycles": dict(self.counts),
            "fractions": {
                key: (value / total if total else 0.0)
                for key, value in self.counts.items()
            },
        }


@register_probe("runahead_log", description="per-interval runahead entry/exit log")
def _build_runahead_log() -> "RunaheadIntervalLogProbe":
    return RunaheadIntervalLogProbe()


class RunaheadIntervalLogProbe(Probe):
    """Log every runahead interval with its prefetch yield.

    Report: a list of ``{"entry": c0, "exit": c1, "length": c1-c0,
    "prefetches": n}`` records (Section 2.4 / 5.1 style interval data as a
    selectable artifact rather than a core-internal list).
    """

    name = "runahead_log"

    def __init__(self) -> None:
        self.entries: List[Dict[str, int]] = []
        self._prefetches_at_entry = 0

    def on_runahead_enter(self, core: "OoOCore", cycle: int) -> None:
        self._prefetches_at_entry = core.stats.runahead_prefetches
        self.entries.append({"entry": cycle, "exit": -1, "length": 0, "prefetches": 0})

    def on_runahead_exit(self, core: "OoOCore", cycle: int) -> None:
        if not self.entries or self.entries[-1]["exit"] >= 0:
            return
        record = self.entries[-1]
        record["exit"] = cycle
        record["length"] = cycle - record["entry"]
        record["prefetches"] = core.stats.runahead_prefetches - self._prefetches_at_entry

    def report(self) -> List[Dict[str, int]]:
        return list(self.entries)


@register_probe("mem_profile", description="data accesses per memory level")
def _build_mem_profile() -> "MemoryProfileProbe":
    return MemoryProfileProbe()


class MemoryProfileProbe(Probe):
    """Profile the memory system: accesses by servicing level, plus the fill
    and writeback traffic the fill-on-completion hierarchy emits.

    Report: ``{"levels": {"L1D": n, ...}, "long_latency": n, "total": n,
    "fills": {"L1D": n, ...}, "writebacks": {"L1D": n, ..., "DRAM": n}}`` —
    ``fills`` counts completed line installs per cache level, ``writebacks``
    counts dirty victims leaving each level (the ``"DRAM"`` key is the final
    hop: posted main-memory writes).
    """

    name = "mem_profile"

    def __init__(self) -> None:
        self.levels: Dict[str, int] = {}
        self.long_latency = 0
        self.total = 0
        self.fills: Dict[str, int] = {}
        self.writebacks: Dict[str, int] = {}

    def on_mem_access(
        self, core: "OoOCore", instr: "DynInstr", result: "AccessResult", cycle: int
    ) -> None:
        level = result.level.value
        self.levels[level] = self.levels.get(level, 0) + 1
        if result.is_long_latency:
            self.long_latency += 1
        self.total += 1

    def on_fill(self, core: "OoOCore", level: str, line_addr: int, cycle: int) -> None:
        self.fills[level] = self.fills.get(level, 0) + 1

    def on_writeback(self, core: "OoOCore", level: str, line_addr: int, cycle: int) -> None:
        self.writebacks[level] = self.writebacks.get(level, 0) + 1

    def on_finish(self, core: "OoOCore", stats: "CoreStats") -> None:
        # DRAM writes are the terminal hop of every writeback chain; surface
        # them next to the per-cache-level counts.
        writes = core.hierarchy.dram.stats.writes
        if writes:
            self.writebacks["DRAM"] = writes

    def report(self) -> Dict[str, Any]:
        return {
            "levels": dict(sorted(self.levels.items())),
            "long_latency": self.long_latency,
            "total": self.total,
            "fills": dict(sorted(self.fills.items())),
            "writebacks": dict(sorted(self.writebacks.items())),
        }


def build_probe(name_or_probe) -> Probe:
    """Resolve a probe argument: registry name -> fresh instance, instance -> itself."""
    if isinstance(name_or_probe, Probe):
        return name_or_probe
    return PROBE_REGISTRY.create(name_or_probe)


__all__ = [
    "IPCTimelineProbe",
    "MemoryProfileProbe",
    "Probe",
    "ProbeSet",
    "ResourceSnapshotProbe",
    "RunaheadIntervalLogProbe",
    "StallBreakdownProbe",
    "build_probe",
    "default_probes",
]
