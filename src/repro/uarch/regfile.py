"""Physical register file with free list and ready bits.

The core has two instances (integer and floating point), each sized per
Table 1 (168 registers).  The first 32 registers of each file are bound to the
architectural registers at reset; the remainder form the initial free list.
Runahead execution's headroom — the "51 percent of the integer registers,
59 percent of the floating-point registers are free" observation in
Section 3.4 — is a direct property of this structure's occupancy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set


class OutOfPhysicalRegisters(RuntimeError):
    """Raised when an allocation is attempted with an empty free list."""


class PhysicalRegisterFile:
    """A pool of physical registers with a FIFO free list and ready bits."""

    def __init__(self, num_registers: int, num_architectural: int = 32, name: str = "int") -> None:
        if num_registers < num_architectural:
            raise ValueError("need at least as many physical as architectural registers")
        self.num_registers = num_registers
        self.num_architectural = num_architectural
        self.name = name
        # Registers 0..num_architectural-1 hold architectural state at reset.
        # The free list is FIFO; a deque makes the hot allocate() O(1) where
        # list.pop(0) shifted the whole backing array.
        self._free: Deque[int] = deque(range(num_architectural, num_registers))
        self._ready = [True] * num_registers
        self._allocated: Set[int] = set(range(num_architectural))

    # -------------------------------------------------------------- occupancy

    @property
    def num_free(self) -> int:
        """Number of registers currently on the free list."""
        return len(self._free)

    @property
    def free_fraction(self) -> float:
        """Fraction of the whole register file that is free."""
        return self.num_free / self.num_registers

    def is_allocated(self, reg: int) -> bool:
        """Whether ``reg`` is currently allocated (not on the free list)."""
        return reg in self._allocated

    # ------------------------------------------------------------- allocation

    def allocate(self) -> int:
        """Take a register from the free list; it starts not-ready.

        Raises
        ------
        OutOfPhysicalRegisters
            If the free list is empty.  Callers that can stall (the rename
            stage) should check :attr:`num_free` first.
        """
        if not self._free:
            raise OutOfPhysicalRegisters(f"{self.name} register file exhausted")
        reg = self._free.popleft()
        self._allocated.add(reg)
        self._ready[reg] = False
        return reg

    def free(self, reg: int) -> None:
        """Return ``reg`` to the free list.

        Freeing a register that is already free is an error: it would let the
        same register be allocated twice simultaneously.
        """
        if reg not in self._allocated:
            raise ValueError(f"{self.name} register p{reg} is not allocated")
        self._allocated.remove(reg)
        self._ready[reg] = False
        self._free.append(reg)

    # ------------------------------------------------------------- ready bits

    def is_ready(self, reg: int) -> bool:
        """Whether the value of ``reg`` has been produced."""
        return self._ready[reg]

    def set_ready(self, reg: int) -> None:
        """Mark ``reg`` as produced (called at writeback)."""
        self._ready[reg] = True

    def clear_ready(self, reg: int) -> None:
        """Mark ``reg`` as not produced."""
        self._ready[reg] = False

    # ---------------------------------------------------------------- rebuild

    def rebuild(self, live_registers: Set[int]) -> None:
        """Reset the file so exactly ``live_registers`` are allocated and ready.

        Used by pipeline flushes: after a flush the only live mappings are the
        ones in the retirement RAT, every other register returns to the free
        list, and all live registers hold committed (ready) values.
        """
        for reg in live_registers:
            if not 0 <= reg < self.num_registers:
                raise ValueError(f"register p{reg} out of range for {self.name} file")
        self._allocated = set(live_registers)
        self._free = deque(
            reg for reg in range(self.num_registers) if reg not in self._allocated
        )
        self._ready = [False] * self.num_registers
        for reg in live_registers:
            self._ready[reg] = True
