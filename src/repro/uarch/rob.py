"""Re-order buffer (ROB).

A FIFO of in-flight dynamic instructions, capacity 192 in the paper's
baseline.  The defining event of this work — the *full-window stall* — is the
condition in which the ROB is full and its head is an uncompleted long-latency
load, so the ROB exposes exactly the queries the runahead controllers need:
occupancy, the head entry, and whether another dynamic instance of a given
static PC is present (used by the runahead buffer's backward data-flow walk).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.core import DynInstr


class ReorderBuffer:
    """Bounded FIFO of in-flight instructions in program order."""

    def __init__(self, capacity: int = 192) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque["DynInstr"] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator["DynInstr"]:
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether dispatch must stall for lack of ROB space."""
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """Whether the ROB holds no instructions."""
        return not self._entries

    @property
    def occupancy_fraction(self) -> float:
        """Occupied fraction of the ROB."""
        return len(self._entries) / self.capacity

    def head(self) -> Optional["DynInstr"]:
        """The oldest in-flight instruction, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def push(self, instr: "DynInstr") -> None:
        """Append an instruction at the tail (dispatch)."""
        if self.is_full:
            raise OverflowError("ROB overflow")
        self._entries.append(instr)

    def pop_head(self) -> "DynInstr":
        """Remove and return the head (commit or pseudo-retire)."""
        if not self._entries:
            raise IndexError("ROB underflow")
        return self._entries.popleft()

    def clear(self) -> List["DynInstr"]:
        """Discard every entry (pipeline flush); return the discarded entries."""
        discarded = list(self._entries)
        self._entries.clear()
        return discarded

    def find_other_instance(self, pc: int, exclude_seq: int) -> Optional["DynInstr"]:
        """Find the youngest entry with the given static PC other than ``exclude_seq``.

        The runahead buffer's backward data-flow walk (Section 2.3) starts
        from a second dynamic instance of the stalling load inside the window.
        """
        for instr in reversed(self._entries):
            if instr.uop.pc == pc and instr.seq != exclude_seq:
                return instr
        return None

    def entries_before(self, seq: int) -> List["DynInstr"]:
        """Entries older than ``seq``, youngest first (for backward walks)."""
        older = [instr for instr in self._entries if instr.seq < seq]
        older.sort(key=lambda instr: instr.seq, reverse=True)
        return older
