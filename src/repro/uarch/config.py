"""Core configuration (Table 1 of the paper).

``CoreConfig`` collects every microarchitectural parameter of the simulated
core, defaulting to the baseline configuration the paper evaluates: a 2.66 GHz
4-wide out-of-order core with a 192-entry ROB, 92-entry issue queue, 64-entry
load and store queues, an 8-stage front-end that delivers up to 8 micro-ops
per cycle, and Haswell-like register files (168 integer + 168 floating-point
physical registers).  The runahead-specific structure sizes (SST, PRDQ, EMQ)
follow Sections 3.6 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.serde import JSONSerializable


@dataclass(frozen=True)
class CoreConfig(JSONSerializable):
    """Microarchitectural parameters of the simulated core."""

    # Clock and pipeline shape ------------------------------------------------
    frequency_ghz: float = 2.66
    #: Rename/dispatch/issue/commit width ("Width: 4" in Table 1).
    pipeline_width: int = 4
    #: Micro-ops the front-end can deliver per cycle (Section 4: "up to 8").
    fetch_width: int = 8
    #: Front-end depth in stages ("Depth (front-end only): 8 stages").
    frontend_depth: int = 8
    #: Capacity of the micro-op queue between decode and rename.
    uop_queue_size: int = 64

    # Back-end structures -----------------------------------------------------
    rob_size: int = 192
    issue_queue_size: int = 92
    load_queue_size: int = 64
    store_queue_size: int = 64
    int_registers: int = 168
    fp_registers: int = 168

    # Execution ports ---------------------------------------------------------
    max_loads_per_cycle: int = 2
    max_stores_per_cycle: int = 1

    # Branch prediction -------------------------------------------------------
    branch_predictor_entries: int = 4096
    branch_history_bits: int = 12
    #: Cycles from a mispredicted branch's execution to the first corrected fetch.
    branch_misprediction_penalty: int = 8

    # Runahead structures (Sections 3.6 and 4) --------------------------------
    sst_entries: int = 256
    prdq_entries: int = 192
    emq_entries: int = 768
    #: Minimum estimated remaining miss latency (cycles) below which the
    #: traditional runahead proposal does not enter runahead mode (the Mutlu
    #: et al. short-interval optimization discussed in Section 2.4).
    runahead_minimum_interval: int = 56
    #: Maximum length of the dependence chain the runahead buffer extracts.
    runahead_buffer_chain_length: int = 32

    def __post_init__(self) -> None:
        positive_fields = {
            "pipeline_width": self.pipeline_width,
            "fetch_width": self.fetch_width,
            "frontend_depth": self.frontend_depth,
            "uop_queue_size": self.uop_queue_size,
            "rob_size": self.rob_size,
            "issue_queue_size": self.issue_queue_size,
            "load_queue_size": self.load_queue_size,
            "store_queue_size": self.store_queue_size,
            "int_registers": self.int_registers,
            "fp_registers": self.fp_registers,
            "sst_entries": self.sst_entries,
            "prdq_entries": self.prdq_entries,
            "emq_entries": self.emq_entries,
        }
        for name, value in positive_fields.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if self.int_registers < 32 or self.fp_registers < 32:
            raise ValueError(
                "register files must hold at least the 32 architectural registers of each type"
            )

    def with_overrides(self, **overrides: object) -> "CoreConfig":
        """Return a copy of this configuration with some fields replaced."""
        return replace(self, **overrides)

    def summary(self) -> Dict[str, str]:
        """Return a Table 1-style summary of the configuration."""
        return {
            "Core": (
                f"{self.frequency_ghz:.2f} GHz out-of-order, ROB: {self.rob_size}, "
                f"Issue/Load/Store queue: {self.issue_queue_size}/{self.load_queue_size}/"
                f"{self.store_queue_size}, Width: {self.pipeline_width}, "
                f"Depth (front-end only): {self.frontend_depth} stages"
            ),
            "Register file": (
                f"{self.int_registers} int (64 bit), {self.fp_registers} fp (128 bit)"
            ),
            "SST": f"{self.sst_entries} entry, fully assoc, LRU",
            "PRDQ size": str(self.prdq_entries),
            "EMQ size": str(self.emq_entries),
        }
