"""Branch prediction.

A gshare predictor with 2-bit saturating counters.  The simulator is
trace-driven, so wrong-path instructions are never executed; instead a
mispredicted branch stalls the front-end until the branch resolves and then
charges the redirect penalty, which is the standard way trace-driven
simulators account for misprediction cost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchPredictorStats:
    """Prediction accuracy counters."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that were correct."""
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions


class GShareBranchPredictor:
    """gshare: global history XOR PC indexes a table of 2-bit counters."""

    def __init__(self, table_entries: int = 4096, history_bits: int = 12) -> None:
        if table_entries <= 0 or table_entries & (table_entries - 1):
            raise ValueError("table_entries must be a positive power of two")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.table_entries = table_entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        # 2-bit counters initialised to weakly taken.
        self._counters = [2] * table_entries
        self.stats = BranchPredictorStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.table_entries

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        self.stats.predictions += 1
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train the predictor with the resolved outcome of the branch at ``pc``."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        if predicted != taken:
            self.stats.mispredictions += 1
