"""Functional-unit latencies per micro-op class.

The latencies are representative of a Haswell-class core (the register-file
sizing in Table 1 is Haswell-derived) and are used for every non-memory
micro-op; loads and stores obtain their latency from the memory hierarchy and
the load/store queues instead.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.trace import UopClass

#: Execution latency, in cycles, of each non-memory micro-op class.
EXECUTION_LATENCY: Dict[UopClass, int] = {
    UopClass.IALU: 1,
    UopClass.IMUL: 3,
    UopClass.IDIV: 20,
    UopClass.FALU: 3,
    UopClass.FMUL: 5,
    UopClass.FDIV: 18,
    UopClass.BRANCH: 1,
    UopClass.NOP: 1,
    # Store micro-ops compute their address in one cycle; the actual write to
    # the memory hierarchy happens at commit time.
    UopClass.STORE: 1,
    # Loads never use this table (latency comes from the memory hierarchy);
    # the entry exists so that poisoned runahead loads, which skip the memory
    # access entirely, still have a defined completion latency.
    UopClass.LOAD: 1,
}


def execution_latency(uop_class: UopClass) -> int:
    """Return the fixed execution latency of a micro-op class.

    Raises
    ------
    KeyError
        If the class has no fixed latency entry.
    """
    return EXECUTION_LATENCY[uop_class]
