"""Front-end: fetch, decode and the micro-op queue.

The front-end is modelled as an 8-stage pipeline (Table 1) that fetches up to
``fetch_width`` micro-ops per cycle from the dynamic micro-op stream, predicts
branches, and delivers decoded micro-ops into the micro-op queue from which
the rename stage dispatches.

The stream is consumed through a :class:`~repro.workloads.source.TraceSource`
cursor: sequential reads pull micro-ops on demand, and pipeline flushes rewind
to any not-yet-committed index (the cursor retains exactly that window, so
streaming workloads run at O(window) memory).  An in-memory
:class:`~repro.workloads.trace.Trace` takes a zero-copy fast path.

Because the simulator is trace-driven there is no wrong path: a mispredicted
branch instead stalls fetch until the branch resolves, after which fetch
resumes and the refilled front-end pipeline naturally charges the redirect
latency.  The Extended Micro-op Queue optimisation (PRE+EMQ) and the runahead
buffer's front-end power gating both plug in through small hooks
(:attr:`power_gated` and :meth:`redirect`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Union

from repro.memory.port import InstructionPort
from repro.uarch.branch import GShareBranchPredictor
from repro.uarch.config import CoreConfig
from repro.uarch.stats import CoreStats
from repro.workloads.source import TraceSource, as_source
from repro.workloads.trace import MicroOp, Trace


class FetchedUop:
    """A micro-op travelling through (or waiting after) the front-end.

    A ``__slots__`` class (one is created per fetched micro-op, on the
    per-cycle fetch path); equality is identity.
    """

    __slots__ = ("seq", "uop", "ready_cycle", "predicted_taken")

    def __init__(
        self, seq: int, uop: MicroOp, ready_cycle: int, predicted_taken: bool = False
    ) -> None:
        self.seq = seq
        self.uop = uop
        self.ready_cycle = ready_cycle
        self.predicted_taken = predicted_taken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FetchedUop(seq={self.seq}, uop={self.uop!r}, "
            f"ready_cycle={self.ready_cycle}, predicted_taken={self.predicted_taken})"
        )


class FrontEnd:
    """Fetch/decode pipeline plus the micro-op queue."""

    def __init__(
        self,
        trace: Union[Trace, TraceSource],
        config: CoreConfig,
        predictor: GShareBranchPredictor,
        port: Optional[InstructionPort] = None,
        stats: Optional[CoreStats] = None,
    ) -> None:
        self.source = as_source(trace)
        self.cursor = self.source.cursor()
        self.config = config
        self.predictor = predictor
        #: Instruction-side memory port — the *only* piece of the memory
        #: system the front end sees (fetch-line geometry plus
        #: ``access_instruction``).  ``None`` models an ideal I-cache.
        self.port = port
        self.stats = stats or CoreStats()
        self.fetch_index = 0
        self.power_gated = False
        self._pipe: Deque[FetchedUop] = deque()
        self.uop_queue: Deque[FetchedUop] = deque()
        self._stalled_on_branch_seq: Optional[int] = None
        self._resume_cycle = 0
        self._last_fetch_line: Optional[int] = None

    # -------------------------------------------------------------- queries

    @property
    def trace_exhausted(self) -> bool:
        """Whether every trace micro-op has been fetched."""
        return not self.cursor.has(self.fetch_index)

    @property
    def is_drained(self) -> bool:
        """Whether no micro-ops remain anywhere in the front-end."""
        return self.trace_exhausted and not self._pipe and not self.uop_queue

    @property
    def stalled_on_branch(self) -> Optional[int]:
        """Sequence number of the unresolved mispredicted branch fetch is waiting on."""
        return self._stalled_on_branch_seq

    def next_dispatch_seq(self) -> Optional[int]:
        """Trace index of the next micro-op normal dispatch would consume.

        PRE records this at runahead entry so that, on exit without the EMQ
        optimisation, fetch can be redirected back to the first micro-op that
        was consumed speculatively and must be re-fetched (Section 3.3).
        """
        if self.uop_queue:
            return self.uop_queue[0].seq
        if self._pipe:
            return self._pipe[0].seq
        if not self.trace_exhausted:
            return self.fetch_index
        return None

    def earliest_delivery_cycle(self) -> Optional[int]:
        """Cycle at which the oldest in-flight micro-op reaches the micro-op queue."""
        if self._pipe:
            return self._pipe[0].ready_cycle
        return None

    def next_resume_cycle(self) -> Optional[int]:
        """Cycle at which stalled fetch resumes, or ``None`` when fetch has
        nothing left to do (trace exhausted).

        This is the public wake-up candidate the core's idle-skip logic
        consults; it covers redirect penalties, mispredict stalls and
        MSHR-full instruction-fetch waits.
        """
        if self.trace_exhausted:
            return None
        return self._resume_cycle

    # ----------------------------------------------------------------- ticks

    def tick(self, cycle: int) -> int:
        """Advance the front-end by one cycle; return the number of micro-ops moved."""
        moved = self._deliver(cycle)
        moved += self._fetch(cycle)
        return moved

    def _deliver(self, cycle: int) -> int:
        """Move decoded micro-ops whose pipeline delay has elapsed into the micro-op queue."""
        pipe = self._pipe
        if not pipe or pipe[0].ready_cycle > cycle:
            return 0
        queue = self.uop_queue
        queue_size = self.config.uop_queue_size
        events = self.stats.events
        delivered = 0
        while pipe and pipe[0].ready_cycle <= cycle and len(queue) < queue_size:
            queue.append(pipe.popleft())
            events.decoded_uops += 1
            delivered += 1
        return delivered

    def _fetch(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` micro-ops from the trace into the pipeline."""
        if self.power_gated or cycle < self._resume_cycle:
            return 0
        if self._stalled_on_branch_seq is not None:
            return 0
        config = self.config
        cursor_fetch = self.cursor.fetch
        pipe = self._pipe
        queue = self.uop_queue
        events = self.stats.events
        fetch_width = config.fetch_width
        pipe_capacity = fetch_width * config.frontend_depth
        total_budget = pipe_capacity + config.uop_queue_size
        ready_base = cycle + config.frontend_depth
        fetch_index = self.fetch_index
        port = self.port
        i_line_bytes = port.line_bytes if port is not None else None
        fetched = 0
        while (
            fetched < fetch_width
            and len(pipe) < pipe_capacity
            and len(pipe) + len(queue) < total_budget
        ):
            uop = cursor_fetch(fetch_index)
            if uop is None:
                break
            # Same-line fast path of _instruction_fetch_penalty, inlined:
            # consecutive micro-ops overwhelmingly share a fetch line.
            if (
                i_line_bytes is None
                or uop.pc // i_line_bytes == self._last_fetch_line
            ):
                penalty = 0
            else:
                penalty = self._instruction_fetch_penalty(uop.pc, cycle)
                if penalty is None:
                    # MSHR file full: fetch stalls (``_resume_cycle`` was
                    # pushed out) and this micro-op is retried after the wait.
                    break
            seq = fetch_index
            fetch_index += 1
            self.fetch_index = fetch_index
            entry = FetchedUop(seq, uop, ready_base + penalty)
            if uop.is_branch:
                predicted = self.predictor.predict(uop.pc)
                entry.predicted_taken = predicted
                events.branch_predictions += 1
                if predicted != uop.branch_taken:
                    self._stalled_on_branch_seq = seq
                    pipe.append(entry)
                    events.fetched_uops += 1
                    fetched += 1
                    break
            pipe.append(entry)
            events.fetched_uops += 1
            fetched += 1
        return fetched

    def _instruction_fetch_penalty(self, pc: int, cycle: int) -> Optional[int]:
        """Extra cycles for instruction-cache misses (rare for loopy workloads).

        Returns ``None`` when the access could not start (MSHR file full): the
        caller must stall fetch — ``_resume_cycle`` is advanced past the
        estimated wait — and retry the micro-op afterwards.
        """
        port = self.port
        if port is None:
            return 0
        line = pc // port.line_bytes
        if line == self._last_fetch_line:
            return 0
        self._last_fetch_line = line
        result = port.access_instruction(pc, cycle)
        if result.retried:
            self._last_fetch_line = None
            self._resume_cycle = max(self._resume_cycle, cycle + max(1, result.latency))
            return None
        return max(0, result.latency - port.latency)

    # -------------------------------------------------------------- dispatch

    def pop_uops(self, max_count: int, cycle: int) -> List[FetchedUop]:
        """Remove up to ``max_count`` decoded micro-ops for rename/dispatch."""
        popped: List[FetchedUop] = []
        while self.uop_queue and len(popped) < max_count:
            if self.uop_queue[0].ready_cycle > cycle:
                break
            popped.append(self.uop_queue.popleft())
        return popped

    def peek(self) -> Optional[FetchedUop]:
        """The next micro-op dispatch would consume, without removing it."""
        return self.uop_queue[0] if self.uop_queue else None

    def unpop(self, entries: List[FetchedUop]) -> None:
        """Return micro-ops to the head of the queue (dispatch could not take them)."""
        for entry in reversed(entries):
            self.uop_queue.appendleft(entry)

    # ------------------------------------------------------------- redirects

    def branch_resolved(self, seq: int, cycle: int, mispredicted: bool) -> None:
        """Notify the front-end that the branch with sequence number ``seq`` executed."""
        if self._stalled_on_branch_seq == seq:
            self._stalled_on_branch_seq = None
            if mispredicted:
                self._resume_cycle = cycle + 1
                self.stats.events.branch_mispredictions += 1

    def redirect(self, new_index: int, cycle: int, extra_penalty: int = 0) -> None:
        """Squash the front-end and restart fetch at trace index ``new_index``.

        Used by pipeline flushes (runahead exit of RA and RA-buffer, which
        refetch from the stalling load) and by PRE's exit without the EMQ
        (refetch of the micro-ops consumed during runahead mode).
        """
        self._pipe.clear()
        self.uop_queue.clear()
        self._stalled_on_branch_seq = None
        self.fetch_index = new_index
        self._resume_cycle = cycle + 1 + extra_penalty
        self._last_fetch_line = None
