"""Load and store queues.

Tracks in-flight memory operations for occupancy (64 + 64 entries in Table 1)
and provides store-to-load forwarding: a load whose address matches an older,
not-yet-committed store receives its data from the store queue in one cycle
instead of accessing the cache hierarchy.

Runahead-mode loads issued by PRE do not allocate load-queue entries: they are
prefetches whose results are discarded, so they need no ordering bookkeeping
(the MSHR file still bounds how many of them can be outstanding).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.core import DynInstr


class LoadStoreQueues:
    """Combined model of the load queue and store queue."""

    def __init__(self, load_entries: int = 64, store_entries: int = 64) -> None:
        if load_entries <= 0 or store_entries <= 0:
            raise ValueError("queue sizes must be positive")
        self.load_entries = load_entries
        self.store_entries = store_entries
        self._loads: List["DynInstr"] = []
        self._stores: List["DynInstr"] = []

    # -------------------------------------------------------------- occupancy

    @property
    def load_queue_full(self) -> bool:
        """Whether a new load cannot be dispatched."""
        return len(self._loads) >= self.load_entries

    @property
    def store_queue_full(self) -> bool:
        """Whether a new store cannot be dispatched."""
        return len(self._stores) >= self.store_entries

    @property
    def load_occupancy(self) -> int:
        """Number of loads currently tracked."""
        return len(self._loads)

    @property
    def store_occupancy(self) -> int:
        """Number of stores currently tracked."""
        return len(self._stores)

    def can_dispatch(self, instr: "DynInstr") -> bool:
        """Whether the queues have room for ``instr`` (always true for non-memory ops)."""
        return self.can_dispatch_uop(instr.uop)

    def can_dispatch_uop(self, uop) -> bool:
        """Whether the queues have room for a micro-op of the given kind."""
        if uop.is_load:
            return not self.load_queue_full
        if uop.is_store:
            return not self.store_queue_full
        return True

    # --------------------------------------------------------------- tracking

    def dispatch(self, instr: "DynInstr") -> None:
        """Allocate a queue entry for a dispatched memory instruction."""
        if instr.uop.is_load:
            if self.load_queue_full:
                raise OverflowError("load queue overflow")
            self._loads.append(instr)
        elif instr.uop.is_store:
            if self.store_queue_full:
                raise OverflowError("store queue overflow")
            self._stores.append(instr)

    def release(self, instr: "DynInstr") -> None:
        """Free the queue entry of a committed or squashed memory instruction."""
        if instr.uop.is_load and instr in self._loads:
            self._loads.remove(instr)
        elif instr.uop.is_store and instr in self._stores:
            self._stores.remove(instr)

    def clear(self) -> None:
        """Empty both queues (pipeline flush)."""
        self._loads.clear()
        self._stores.clear()

    # ------------------------------------------------------------- forwarding

    def forwarding_store(self, load: "DynInstr") -> Optional["DynInstr"]:
        """Return the youngest older store to the same address, if any.

        Only exact address matches forward; overlapping partial accesses are
        treated as misses to keep the model simple.
        """
        candidate: Optional["DynInstr"] = None
        for store in self._stores:
            if store.seq >= load.seq:
                continue
            if store.uop.mem_addr == load.uop.mem_addr:
                if candidate is None or store.seq > candidate.seq:
                    candidate = store
        return candidate
