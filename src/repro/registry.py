"""Decorator-based registries for runahead variants and workloads.

The paper's evaluation is a cross-product of workloads x core variants.  Both
axes used to be hardcoded (an if/elif chain in ``repro.core.build_controller``
and a module-level ``SPEC_SURROGATES`` dict); this module turns each axis into
an extensible registry so that experiments, the sweep engine and the CLI can
enumerate and construct entries *by name*, and downstream code can add new
variants or workloads without touching core files:

.. code-block:: python

    from repro.registry import register_variant, register_workload

    @register_variant("my_variant", label="Mine")
    def _build_my_variant():
        return MyController()

    @register_workload("ping_pong", description="two alternating streams")
    def _build_ping_pong(num_uops=20_000):
        return some_generator(num_uops=num_uops)

Names registered this way immediately show up in ``python -m repro list``,
are accepted by ``python -m repro sweep`` and by
:class:`repro.simulation.engine.ExperimentEngine`, and (for variants) by
:func:`repro.core.build_controller`.

Registration order is preserved and significant: it is the order figures and
tables present their columns, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


@dataclass(frozen=True)
class RegistryEntry:
    """One registered factory plus its presentation metadata."""

    name: str
    factory: Callable[..., Any]
    label: str
    description: str = ""
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def create(self, *args: Any, **kwargs: Any) -> Any:
        """Invoke the factory."""
        return self.factory(*args, **kwargs)


class DuplicateRegistrationError(ValueError):
    """Raised when a name is registered twice without ``replace=True``."""


class Registry:
    """An ordered name -> factory mapping with decorator registration."""

    def __init__(self, kind: str, plural: Optional[str] = None) -> None:
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._entries: Dict[str, RegistryEntry] = {}
        self._labels: Dict[str, str] = {}

    # ------------------------------------------------------------ registration

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        label: Optional[str] = None,
        description: str = "",
        replace: bool = False,
        **metadata: Any,
    ):
        """Register ``factory`` under ``name``; usable directly or as a decorator.

        Raises
        ------
        DuplicateRegistrationError
            If ``name`` is already registered and ``replace`` is false.
        """

        def _register(func: F) -> F:
            if name in self._entries and not replace:
                raise DuplicateRegistrationError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override it"
                )
            entry = RegistryEntry(
                name=name,
                factory=func,
                label=label or name,
                description=description,
                metadata=dict(metadata),
            )
            self._entries[name] = entry
            self._labels[name] = entry.label
            return func

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        """Remove a registration (used by tests and plugin teardown)."""
        self._entries.pop(name, None)
        self._labels.pop(name, None)

    # ----------------------------------------------------------------- lookup

    def get(self, name: str) -> RegistryEntry:
        """Return the entry for ``name``.

        Raises
        ------
        KeyError
            With the list of known names, if ``name`` is unknown.
        """
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered {self.plural}: {known}"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Construct the object registered under ``name``."""
        return self.get(name).create(*args, **kwargs)

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        return list(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """All entries, in registration order."""
        return list(self._entries.values())

    def labels_view(self) -> Mapping[str, str]:
        """A live read-only name -> label mapping backed by the registry."""
        return MappingProxyType(self._labels)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.names()!r})"


#: Runahead core variants: factories return a controller (or ``None`` for the
#: baseline) when called with no arguments.
VARIANT_REGISTRY = Registry("variant")

#: Workloads: factories return a :class:`~repro.workloads.trace.Trace` and
#: accept an optional ``num_uops`` keyword overriding the trace length.  An
#: entry may additionally carry a ``source_factory`` metadata callable
#: returning a :class:`~repro.workloads.source.TraceSource` for streaming
#: construction (see :func:`build_workload_source`).
WORKLOAD_REGISTRY = Registry("workload")

#: Instrumentation probes: factories return a fresh
#: :class:`~repro.uarch.probes.Probe` when called with no arguments.  Probes
#: registered here are selectable by name from the experiment engine and the
#: ``--probe`` CLI flag.
PROBE_REGISTRY = Registry("probe")


def register_variant(
    name: str,
    *,
    label: Optional[str] = None,
    description: str = "",
    replace: bool = False,
    **metadata: Any,
):
    """Decorator registering a controller factory as a core variant."""
    return VARIANT_REGISTRY.register(
        name, label=label, description=description, replace=replace, **metadata
    )


def register_workload(
    name: str,
    *,
    label: Optional[str] = None,
    description: str = "",
    replace: bool = False,
    **metadata: Any,
):
    """Decorator registering a trace factory as a workload."""
    return WORKLOAD_REGISTRY.register(
        name, label=label, description=description, replace=replace, **metadata
    )


def register_probe(
    name: str,
    *,
    label: Optional[str] = None,
    description: str = "",
    replace: bool = False,
    **metadata: Any,
):
    """Decorator registering a probe factory as an instrumentation probe."""
    return PROBE_REGISTRY.register(
        name, label=label, description=description, replace=replace, **metadata
    )


def probe_names() -> List[str]:
    """Registered probe names, in registration order."""
    return PROBE_REGISTRY.names()


def variant_names() -> List[str]:
    """Registered variant names, in figure order."""
    return VARIANT_REGISTRY.names()


def workload_names() -> List[str]:
    """Registered workload names, in registration order."""
    return WORKLOAD_REGISTRY.names()


def build_workload(name: str, num_uops: Optional[int] = None):
    """Build the trace for workload ``name``, optionally overriding its length.

    This is the one construction path the experiment engine and its worker
    processes use, so any workload reachable here can participate in sweeps.
    """
    entry = WORKLOAD_REGISTRY.get(name)
    if num_uops is None:
        return entry.create()
    return entry.create(num_uops=num_uops)


def build_workload_source(name: str, num_uops: Optional[int] = None):
    """Build a lazy :class:`~repro.workloads.source.TraceSource` for ``name``.

    Uses the registry entry's ``source_factory`` metadata when present (the
    streaming construction path, identical micro-op stream at O(window)
    memory); otherwise materialises the trace and wraps it, so every
    registered workload is reachable through this call.
    """
    entry = WORKLOAD_REGISTRY.get(name)
    factory = entry.metadata.get("source_factory")
    if factory is not None:
        if num_uops is None:
            return factory()
        return factory(num_uops=num_uops)
    from repro.workloads.source import MaterializedTrace  # avoid an import cycle

    return MaterializedTrace(build_workload(name, num_uops=num_uops))
