"""Job documents: the JSON shapes a tenant may submit to ``POST /v1/jobs``.

A document is ``{"kind": <kind>, "spec": {...}}`` where ``kind`` selects the
spec schema and execution path:

* ``sweep`` — a :class:`~repro.simulation.engine.SweepSpec` (benchmarks x
  variants grid, the ``repro sweep`` path);
* ``study`` — a :class:`~repro.simulation.study.StudySpec`, or the shorthand
  ``{"kind": "study", "study": "<registered name>", ...narrowing}`` which
  builds a registered study the way ``repro study run`` does;
* ``replay`` — a :class:`~repro.simulation.shard.ReplaySpec` (sharded
  single-trace replay with warmup-aware stitching).

Specs parse **strictly** (unknown fields are a 400, not silently dropped) and
validate registry names up front, so a malformed document is rejected at
admission — before it occupies a queue slot.  A parsed document can expand
itself into engine payloads *without running them*, which is how the server
reports cache-dedupe accounting in the admission response.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import BadSpecError
from repro.simulation.engine import ExperimentEngine, SweepSpec
from repro.simulation.shard import ReplaySpec, run_replay_spec
from repro.simulation.study import StudySpec, build_study, run_study, study_jobs
from repro.workloads.source import FileTraceSource, read_trace_header

#: Document kinds, in the order they are documented.
DOCUMENT_KINDS = ("sweep", "study", "replay")

#: ``progress(done, total, kind)`` — the engine's per-cell callback shape.
CellProgress = Callable[[int, int, str], None]


class ParsedDocument:
    """A validated job document, ready to expand (for dedupe) or execute."""

    def __init__(self, kind: str, spec: Any, document: Dict[str, Any]) -> None:
        self.kind = kind
        self.spec = spec
        #: The normalised document (what the journal persists): rebuilding it
        #: from the parsed spec — rather than echoing the submission — means
        #: a resumed job re-parses exactly what was validated.
        self.document = document

    def describe(self) -> str:
        """One line for logs and job listings."""
        if self.kind == "sweep":
            return (
                f"sweep: {len(self.spec.resolved_workloads())} workloads x "
                f"{len(self.spec.resolved_variants())} variants "
                f"@ {self.spec.num_uops} uops"
            )
        if self.kind == "study":
            return f"study {self.spec.name!r} @ {self.spec.num_uops} uops"
        return (
            f"replay {self.spec.trace_file} [{self.spec.variant}] "
            f"x{self.spec.shards} shards"
        )

    # ------------------------------------------------------------ expansion

    def expand_payloads(self, engine: ExperimentEngine) -> List[Dict[str, Any]]:
        """The engine payloads this document will run, in execution order."""
        if self.kind == "sweep":
            return engine.expand_sweep_payloads(self.spec)
        if self.kind == "study":
            return engine.expand_job_payloads(study_jobs(self.spec, engine))
        header = read_trace_header(self.spec.trace_file)
        return engine.expand_trace_window_payloads(
            FileTraceSource(self.spec.trace_file),
            self.spec.variant,
            self.spec.windows(header["count"]),
            max_cycles=self.spec.max_cycles,
            probes=list(self.spec.probes),
        )

    def cache_probe(self, engine: ExperimentEngine) -> Dict[str, int]:
        """Admission-time dedupe accounting: ``{"total": N, "cached": H}``."""
        cached, total = engine.cache_probe(self.expand_payloads(engine))
        return {"total": total, "cached": cached}

    # ------------------------------------------------------------ execution

    def execute(
        self,
        engine: ExperimentEngine,
        progress: Optional[CellProgress] = None,
        executor=None,
    ) -> Dict[str, Any]:
        """Run the document through ``engine`` and return its result document.

        The result is the JSON-able ``to_dict`` of the kind's native result
        type (:class:`SweepResult` / :class:`StudyResult` /
        :class:`ShardedRunResult`), so clients rebuild the same objects the
        in-process APIs return.  ``executor`` is the engine's cell-batch
        execution seam (see :meth:`ExperimentEngine._run_jobs`) — the server
        passes its fleet coordinator here when remote workers are registered.
        """
        if self.kind == "sweep":
            result = engine.run_sweep(self.spec, progress=progress, executor=executor)
        elif self.kind == "study":
            result = run_study(
                self.spec, engine=engine, cell_progress=progress, executor=executor
            )
        else:
            result = run_replay_spec(
                self.spec, engine=engine, progress=progress, executor=executor
            )
        return result.to_dict()


def parse_document(data: Any) -> ParsedDocument:
    """Parse and validate a submitted job document.

    Every rejection raises :class:`~repro.errors.BadSpecError` with a
    client-facing message — the server maps it to HTTP 400, the CLI to exit
    code 2.  Validation covers JSON shape, unknown spec fields (strict
    serde), registry names, shard-plan bounds, and — for replays — that the
    trace file exists and has a readable header.
    """
    if not isinstance(data, dict):
        raise BadSpecError(
            f"job document must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if kind not in DOCUMENT_KINDS:
        raise BadSpecError(
            f"unknown document kind {kind!r}; expected one of "
            f"{', '.join(DOCUMENT_KINDS)}"
        )
    try:
        if kind == "study" and "study" in data:
            spec = _build_named_study(data)
        else:
            spec = _parse_spec(kind, data)
        _validate(kind, spec)
    except BadSpecError:
        raise
    except (KeyError, ValueError, TypeError, OSError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise BadSpecError(f"invalid {kind} document: {message}") from exc
    return ParsedDocument(kind, spec, {"kind": kind, "spec": spec.to_dict()})


_SPEC_TYPES = {"sweep": SweepSpec, "study": StudySpec, "replay": ReplaySpec}


def _parse_spec(kind: str, data: Dict[str, Any]) -> Any:
    spec_data = data.get("spec")
    if not isinstance(spec_data, dict):
        raise BadSpecError(
            f"{kind} document needs a 'spec' object "
            f"(got {type(spec_data).__name__})"
        )
    unknown = sorted(set(data) - {"kind", "spec"})
    if unknown:
        raise BadSpecError(
            f"unexpected top-level key(s) {', '.join(map(repr, unknown))} "
            f"in {kind} document"
        )
    return _SPEC_TYPES[kind].from_dict(spec_data, strict=True)


def _build_named_study(data: Dict[str, Any]) -> StudySpec:
    """The ``{"kind": "study", "study": NAME, ...}`` shorthand."""
    allowed = {"kind", "study", "num_uops", "workloads", "variants"}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise BadSpecError(
            f"unexpected key(s) {', '.join(map(repr, unknown))} in named-study "
            f"document; allowed: {', '.join(sorted(allowed - {'kind'}))}"
        )
    return build_study(
        data["study"],
        num_uops=data.get("num_uops"),
        workloads=data.get("workloads"),
        variants=data.get("variants"),
    )


def _validate(kind: str, spec: Any) -> None:
    """Registry-name and bounds validation, before a queue slot is taken."""
    if kind == "sweep":
        spec.resolved_workloads()
        spec.resolved_variants()
        spec.resolved_probes()
        if spec.num_uops is not None and spec.num_uops <= 0:
            raise BadSpecError(f"num_uops must be positive, got {spec.num_uops}")
    elif kind == "study":
        spec.resolved_workloads()
        spec.resolved_variants()
        spec.expand()  # validates axes + override field names
    else:
        from repro.registry import PROBE_REGISTRY, VARIANT_REGISTRY

        spec.validate()
        VARIANT_REGISTRY.get(spec.variant)
        for probe in spec.probes:
            PROBE_REGISTRY.get(probe)
        header = read_trace_header(spec.trace_file)  # raises if missing/corrupt
        if header["count"] <= 0:
            raise BadSpecError(f"trace {spec.trace_file} is empty")


__all__ = ["CellProgress", "DOCUMENT_KINDS", "ParsedDocument", "parse_document"]
