"""``repro work`` — a fleet worker process pulling cell batches over HTTP.

The loop (see :class:`FleetWorker`):

1. **register** with the daemon (``POST /v1/workers``), learning the lease
   TTL and heartbeat cadence;
2. **claim** a lease of up to ``max_cells`` cells; while executing them a
   background thread **heartbeats** every ``lease_ttl / 3`` seconds so the
   lease never expires under a healthy worker;
3. **complete** the lease with per-cell results (or tracebacks);
4. repeat until told to **drain** (finish the batch, deregister, exit 0)
   or interrupted.

Every HTTP call inherits :class:`~repro.service.client.ServiceClient`'s
seeded deterministic backoff; the worker layers its own policy on top —
an idle claim poll backs off exponentially to ``poll_interval`` and the
worker gives up with exit code 75 (``EX_TEMPFAIL``) after
``unreachable_after`` consecutive connection failures.  A lease the server
reports **stale** (we were presumed dead and our cells reassigned) is
dropped without completing: the daemon rejects stale completions anyway,
which is what keeps a partitioned worker from double-delivering.

Exit codes: ``0`` drained or batch budget exhausted, ``75`` daemon
unreachable, ``130`` interrupted (the CLI maps ``KeyboardInterrupt``).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.errors import EXIT_BUSY, EXIT_OK
from repro.service.client import Backoff, ServiceClient, ServiceError
from repro.simulation.engine import execute_cell_payload

#: Consecutive connection failures before the worker exits EX_TEMPFAIL.
DEFAULT_UNREACHABLE_AFTER = 5

#: Idle-poll ceiling (seconds) between claims when the queue is empty.
DEFAULT_POLL_INTERVAL = 0.5


class _HeartbeatThread:
    """Renews one lease until stopped; flags drain/stale for the main loop."""

    def __init__(
        self,
        client: ServiceClient,
        worker_id: str,
        lease_id: str,
        every: float,
        sleep: Callable[[float], None],
    ) -> None:
        self._client = client
        self._worker_id = worker_id
        self._lease_id = lease_id
        self._every = max(0.01, every)
        self._sleep = sleep
        self._stop = threading.Event()
        self.drain = False
        self.stale = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._every):
            try:
                reply = self._client.worker_heartbeat(
                    self._worker_id, [self._lease_id]
                )
            except (ServiceError, ConnectionError, TimeoutError, OSError):
                continue  # transient; the lease TTL absorbs a few misses
            if reply.get("drain"):
                self.drain = True
            if self._lease_id in reply.get("stale", []):
                self.stale = True
                return


class FleetWorker:
    """One worker process's register → claim → execute → complete loop.

    ``execute`` defaults to the engine's public
    :func:`~repro.simulation.engine.execute_cell_payload` seam; tests swap
    it (and ``client``/``sleep``) to build deterministic in-process fleets.
    """

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        max_cells: int = 1,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        unreachable_after: int = DEFAULT_UNREACHABLE_AFTER,
        max_batches: Optional[int] = None,
        backoff_seed: int = 0,
        client: Optional[ServiceClient] = None,
        execute: Callable[[Dict[str, Any]], Dict[str, Any]] = execute_cell_payload,
        sleep: Callable[[float], None] = time.sleep,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.client = client if client is not None else ServiceClient(
            url, backoff_seed=backoff_seed
        )
        self.name = name
        self.max_cells = max(1, max_cells)
        self.poll_interval = poll_interval
        self.unreachable_after = unreachable_after
        #: Stop after this many completed leases (None: run until drained).
        self.max_batches = max_batches
        self.backoff_seed = backoff_seed
        self._execute = execute
        self._sleep = sleep
        self._log = log or (lambda line: None)
        self.worker_id: Optional[str] = None
        self.heartbeat_every = 1.0
        self.batches_done = 0
        self.cells_done = 0
        self._drained = False
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask the loop to exit at the next claim boundary (thread-safe)."""
        self._stop.set()

    # ------------------------------------------------------------- lifecycle

    def run(self) -> int:
        """The worker main loop; returns the process exit code."""
        if not self._register():
            return EXIT_BUSY
        failures = 0
        idle = Backoff(
            base=self.poll_interval / 8.0,
            max_delay=self.poll_interval,
            seed=self.backoff_seed + 1,
        )
        try:
            while not self._stop.is_set():
                if (
                    self.max_batches is not None
                    and self.batches_done >= self.max_batches
                ):
                    break
                try:
                    grant = self.client.worker_claim(self.worker_id, self.max_cells)
                except (ConnectionError, TimeoutError, OSError):
                    failures += 1
                    if failures >= self.unreachable_after:
                        self._log("daemon unreachable; giving up")
                        return EXIT_BUSY
                    self._sleep(self.poll_interval)
                    continue
                except ServiceError as exc:
                    if exc.status == 404:
                        # The daemon restarted and forgot us: rejoin.
                        if not self._register():
                            return EXIT_BUSY
                        continue
                    raise
                failures = 0
                if grant.get("drain"):
                    self._log("drain requested; exiting")
                    break
                cells = grant.get("cells") or []
                if not cells:
                    self._sleep(idle.next_delay())
                    continue
                idle.reset()
                self._run_lease(grant["lease"]["id"], cells)
                if self._drained:
                    break
        finally:
            self._deregister()
        return EXIT_OK

    # -------------------------------------------------------------- internals

    def _register(self) -> bool:
        backoff = Backoff(seed=self.backoff_seed)
        for _ in range(self.unreachable_after):
            try:
                reply = self.client.worker_register(self.name)
            except (ConnectionError, TimeoutError, OSError):
                self._sleep(backoff.next_delay())
                continue
            self.worker_id = reply["worker"]
            lease_ttl = float(reply.get("lease_ttl", 15.0))
            self.heartbeat_every = float(
                reply.get("heartbeat_every", lease_ttl / 3.0)
            )
            self._drained = False
            self._log(f"registered as {self.worker_id}")
            return True
        self._log("daemon unreachable; could not register")
        return False

    def _run_lease(self, lease_id: str, cells: List[Dict[str, Any]]) -> None:
        """Execute one lease's cells under heartbeat, then complete it."""
        heartbeat = _HeartbeatThread(
            self.client, self.worker_id, lease_id, self.heartbeat_every, self._sleep
        )
        heartbeat.start()
        outcomes: List[Dict[str, Any]] = []
        try:
            for cell in cells:
                if heartbeat.stale:
                    # Presumed dead and reassigned: abandon the rest; any
                    # completion we send would be rejected as stale anyway.
                    self._log(f"lease {lease_id} went stale; abandoning batch")
                    break
                cell_id = cell["cell"]
                try:
                    result = self._execute(cell["payload"])
                except Exception:
                    outcomes.append(
                        {"cell": cell_id, "error": traceback.format_exc()}
                    )
                else:
                    outcomes.append({"cell": cell_id, "result": result})
        finally:
            heartbeat.stop()
        if heartbeat.drain:
            self._drained = True
        try:
            reply = self.client.worker_complete(self.worker_id, lease_id, outcomes)
        except (ServiceError, ConnectionError, TimeoutError, OSError) as exc:
            # The daemon never learned: the lease will expire and the cells
            # re-queue — correctness is the server's (it dedupes by lease).
            self._log(f"complete({lease_id}) failed: {exc}")
            return
        if reply.get("stale"):
            self._log(f"lease {lease_id} completion rejected as stale")
            return
        self.batches_done += 1
        self.cells_done += int(reply.get("accepted", 0))

    def _deregister(self) -> None:
        if self.worker_id is None:
            return
        try:
            self.client.worker_deregister(self.worker_id)
        except (ServiceError, ConnectionError, TimeoutError, OSError):
            pass  # the daemon reclaims our leases by timeout either way


__all__ = [
    "DEFAULT_POLL_INTERVAL",
    "DEFAULT_UNREACHABLE_AFTER",
    "FleetWorker",
]
