"""The always-on experiment service: ``repro serve`` and its clients.

This package exposes the experiment engine as a multi-tenant asyncio
HTTP/JSON API (stdlib only — ``asyncio`` streams plus a minimal HTTP/1.1
layer):

* :mod:`repro.service.documents` — the job-document model: the JSON shapes
  a client may ``POST /v1/jobs`` (sweep / study / sharded-replay), parsed
  strictly and expanded into engine payloads for admission-time cache
  dedupe;
* :mod:`repro.service.journal` — the durable on-disk job queue: an
  fsync'd append-only journal that survives a killed daemon and replays
  into the exact set of jobs to resume on restart (with startup
  compaction folding finished jobs into snapshot records);
* :mod:`repro.service.server` — :class:`~repro.service.server.ExperimentService`,
  the asyncio daemon: bounded admission (429 + Retry-After), a worker loop
  feeding the shared :class:`~repro.simulation.engine.ExperimentEngine`,
  long-poll progress events, and cache administration endpoints;
* :mod:`repro.service.fleet` — the
  :class:`~repro.service.fleet.FleetCoordinator`: lease-based distribution
  of cell batches to remote workers, with heartbeats, expiry reclaim,
  attempt-bounded quarantine, and graceful degradation to in-process
  execution when the fleet is empty or partitioned;
* :mod:`repro.service.worker` — :class:`~repro.service.worker.FleetWorker`,
  the ``repro work`` process: claim a lease, execute its cells, heartbeat,
  complete, repeat until drained;
* :mod:`repro.service.client` — :class:`~repro.service.client.ServiceClient`,
  the thin blocking HTTP client behind ``repro submit`` / ``repro status`` /
  ``repro cache`` — the CLI is just one more tenant — with seeded
  deterministic retry backoff (:class:`~repro.service.client.Backoff`).
"""

from repro.service.client import Backoff, ServiceClient, ServiceError
from repro.service.documents import parse_document
from repro.service.fleet import FleetCoordinator, FleetProtocolError
from repro.service.journal import JobJournal, JobRecord, compact_journal
from repro.service.server import ExperimentService, ServiceThread
from repro.service.worker import FleetWorker

__all__ = [
    "Backoff",
    "ExperimentService",
    "FleetCoordinator",
    "FleetProtocolError",
    "FleetWorker",
    "JobJournal",
    "JobRecord",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "compact_journal",
    "parse_document",
]
