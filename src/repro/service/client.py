"""Thin blocking HTTP client for the experiment service.

``repro submit`` / ``repro status`` / ``repro cache --url`` are built on
this; it is deliberately small (``http.client``, one request per
connection, JSON in/out) so any other tenant — a notebook, a CI job — can
use it or reimplement it in a dozen lines.

Error taxonomy mirrors the server's: a 400 response raises
:class:`ServiceError` with ``status=400`` (the CLI maps it to exit code 2,
"bad spec"), a 5xx to exit code 3 ("simulation failure"), and 429 carries
``retry_after`` parsed from the Retry-After header (exit code 75,
``EX_TEMPFAIL``).
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Callable, Dict, Optional
from urllib.parse import urlsplit

from repro.errors import BadSpecError

#: Where ``repro serve`` binds unless told otherwise.
DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"


class ServiceError(Exception):
    """A non-2xx response from the experiment service."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Seconds from the Retry-After header (429 responses only).
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client for one experiment-service base URL."""

    def __init__(self, base_url: str = DEFAULT_SERVICE_URL, timeout: float = 60.0):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise BadSpecError(
                f"service URL must be http://, got {base_url!r}"
            )
        netloc = parts.netloc or parts.path  # tolerate a bare host:port
        if not netloc:
            raise BadSpecError(f"invalid service URL {base_url!r}")
        self.host = netloc.rsplit(":", 1)[0]
        self.port = int(netloc.rsplit(":", 1)[1]) if ":" in netloc else 80
        self.timeout = timeout

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One JSON request/response; raises :class:`ServiceError` on non-2xx."""
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except ValueError:
                data = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 300:
                retry_after: Optional[float] = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        pass
                raise ServiceError(
                    response.status,
                    data.get("error", f"unexpected status {response.status}"),
                    retry_after=retry_after,
                )
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------ endpoints

    def submit(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/jobs`` — returns ``{"id", "state", "cells"}``."""
        return self.request("POST", "/v1/jobs", document)

    def status(self) -> Dict[str, Any]:
        """``GET /v1/status`` — daemon-level summary."""
        return self.request("GET", "/v1/status")

    def jobs(self) -> Dict[str, Any]:
        """``GET /v1/jobs`` — every known job's summary."""
        return self.request("GET", "/v1/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — one job's summary."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, after: int = 0, timeout: float = 25.0
    ) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/events`` — long-poll progress events."""
        return self.request(
            "GET", f"/v1/jobs/{job_id}/events?after={after}&timeout={timeout}"
        )

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result`` — the finished result document."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cache_stats(self) -> Dict[str, Any]:
        """``GET /v1/cache/stats``."""
        return self.request("GET", "/v1/cache/stats")

    def cache_prune(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """``POST /v1/cache/prune``."""
        body = {} if max_bytes is None else {"max_bytes": max_bytes}
        return self.request("POST", "/v1/cache/prune", body)

    # ----------------------------------------------------------- composites

    def wait(
        self,
        job_id: str,
        poll_timeout: float = 25.0,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Follow a job's events until it reaches a terminal state.

        Long-polls ``/events`` (so progress streams without busy-waiting),
        invoking ``on_event`` per event, and returns the final job summary.
        ``deadline`` is a monotonic-clock timestamp; ``None`` waits forever.
        """
        after = 0
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(504, f"timed out waiting for job {job_id}")
            chunk = self.events(job_id, after=after, timeout=poll_timeout)
            for event in chunk.get("events", []):
                if on_event is not None:
                    on_event(event)
            after = chunk.get("next", after)
            if chunk.get("state") in ("done", "failed"):
                return self.job(job_id)


__all__ = ["DEFAULT_SERVICE_URL", "ServiceClient", "ServiceError"]
