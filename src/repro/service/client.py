"""Thin blocking HTTP client for the experiment service.

``repro submit`` / ``repro status`` / ``repro cache --url`` are built on
this; it is deliberately small (``http.client``, one request per
connection, JSON in/out) so any other tenant — a notebook, a CI job — can
use it or reimplement it in a dozen lines.

Error taxonomy mirrors the server's: a 400 response raises
:class:`ServiceError` with ``status=400`` (the CLI maps it to exit code 2,
"bad spec"), a 5xx to exit code 3 ("simulation failure"), and 429 carries
``retry_after`` parsed from the Retry-After header (exit code 75,
``EX_TEMPFAIL``).

Retries: every request retries transient failures — connection refused or
reset, 503, and (when ``busy_retries`` is set) 429 honouring Retry-After —
with **seeded deterministic exponential backoff** (:class:`Backoff`), so a
fleet of clients neither thunders in lockstep nor behaves differently run
to run.  Non-idempotent requests (``POST``) are only retried when the
connection was *refused* (the request never reached the daemon); a reset
mid-flight is surfaced instead of risking a duplicate admission.  After the
retry budget is spent the original error propagates unchanged.
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection
from typing import Any, Callable, Dict, Optional
from urllib.parse import urlsplit

from repro.errors import BadSpecError

#: Where ``repro serve`` binds unless told otherwise.
DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"

#: Transient-failure retries per request (connection refused/reset, 503).
DEFAULT_RETRIES = 3


class Backoff:
    """Seeded deterministic exponential backoff with bounded jitter.

    ``delay(n) = min(max_delay, base * factor**n) * u`` where ``u`` is drawn
    uniformly from ``[1 - jitter, 1 + jitter]`` by a private
    ``random.Random(seed)`` — two instances with the same seed produce the
    same schedule, so retry behaviour is reproducible in tests and chaos
    runs, while distinct seeds (one per worker) de-synchronise a fleet.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._attempt = 0

    def next_delay(self) -> float:
        """The next delay in the schedule (advances the attempt counter)."""
        delay = min(self.max_delay, self.base * (self.factor ** self._attempt))
        self._attempt += 1
        spread = self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay * spread

    def reset(self) -> None:
        """Back to the first step (after a success)."""
        self._attempt = 0

    def sleep(self) -> float:
        """Sleep for :meth:`next_delay`; returns the slept duration."""
        delay = self.next_delay()
        time.sleep(delay)
        return delay


class ServiceError(Exception):
    """A non-2xx response from the experiment service."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: Seconds from the Retry-After header (429 responses only).
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client for one experiment-service base URL.

    ``retries`` bounds transparent retries of transient failures;
    ``busy_retries`` (default 0: surface 429 to the caller, preserving the
    CLI's exit-75 contract) additionally retries admission backpressure,
    sleeping the server's Retry-After.  ``backoff_seed`` makes the whole
    retry schedule deterministic.
    """

    def __init__(
        self,
        base_url: str = DEFAULT_SERVICE_URL,
        timeout: float = 60.0,
        retries: int = DEFAULT_RETRIES,
        busy_retries: int = 0,
        backoff_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise BadSpecError(
                f"service URL must be http://, got {base_url!r}"
            )
        netloc = parts.netloc or parts.path  # tolerate a bare host:port
        if not netloc:
            raise BadSpecError(f"invalid service URL {base_url!r}")
        self.host = netloc.rsplit(":", 1)[0]
        self.port = int(netloc.rsplit(":", 1)[1]) if ":" in netloc else 80
        self.timeout = timeout
        self.retries = retries
        self.busy_retries = busy_retries
        self.backoff_seed = backoff_seed
        self._sleep = sleep

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One JSON request/response; raises :class:`ServiceError` on non-2xx.

        Transparently retries transient failures (see the module docstring
        for the exact policy) before letting the original error propagate.
        """
        backoff = Backoff(seed=self.backoff_seed)
        attempts_left = self.retries
        busy_left = self.busy_retries
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if exc.status == 429 and busy_left > 0:
                    busy_left -= 1
                    self._sleep(
                        exc.retry_after
                        if exc.retry_after is not None
                        else backoff.next_delay()
                    )
                    continue
                if exc.status == 503 and attempts_left > 0:
                    attempts_left -= 1
                    self._sleep(backoff.next_delay())
                    continue
                raise
            except ConnectionRefusedError:
                # The request never reached the daemon (restarting?): always
                # safe to retry, POSTs included.
                if attempts_left <= 0:
                    raise
                attempts_left -= 1
                self._sleep(backoff.next_delay())
            except (ConnectionError, TimeoutError, OSError):
                # Reset/EOF mid-flight: the daemon may have acted on the
                # request, so only idempotent methods are retried.
                if method != "GET" or attempts_left <= 0:
                    raise
                attempts_left -= 1
                self._sleep(backoff.next_delay())

    def _request_once(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except ValueError:
                data = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 300:
                retry_after: Optional[float] = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        pass
                raise ServiceError(
                    response.status,
                    data.get("error", f"unexpected status {response.status}"),
                    retry_after=retry_after,
                )
            return data
        finally:
            connection.close()

    # ------------------------------------------------------------ endpoints

    def submit(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/jobs`` — returns ``{"id", "state", "cells"}``."""
        return self.request("POST", "/v1/jobs", document)

    def status(self) -> Dict[str, Any]:
        """``GET /v1/status`` — daemon-level summary."""
        return self.request("GET", "/v1/status")

    def jobs(self) -> Dict[str, Any]:
        """``GET /v1/jobs`` — every known job's summary."""
        return self.request("GET", "/v1/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>`` — one job's summary."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, after: int = 0, timeout: float = 25.0
    ) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/events`` — long-poll progress events."""
        return self.request(
            "GET", f"/v1/jobs/{job_id}/events?after={after}&timeout={timeout}"
        )

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result`` — the finished result document."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cache_stats(self) -> Dict[str, Any]:
        """``GET /v1/cache/stats``."""
        return self.request("GET", "/v1/cache/stats")

    def cache_prune(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """``POST /v1/cache/prune``."""
        body = {} if max_bytes is None else {"max_bytes": max_bytes}
        return self.request("POST", "/v1/cache/prune", body)

    # --------------------------------------------------------- fleet (worker)

    def worker_register(self, name: Optional[str] = None) -> Dict[str, Any]:
        """``POST /v1/workers`` — join the fleet; returns id + lease params."""
        return self.request("POST", "/v1/workers", {"name": name} if name else {})

    def worker_claim(self, worker_id: str, max_cells: int = 1) -> Dict[str, Any]:
        """``POST /v1/workers/<id>/claim`` — lease up to ``max_cells`` cells."""
        return self.request(
            "POST", f"/v1/workers/{worker_id}/claim", {"max_cells": max_cells}
        )

    def worker_heartbeat(
        self, worker_id: str, leases: Optional[list] = None
    ) -> Dict[str, Any]:
        """``POST /v1/workers/<id>/heartbeat`` — renew liveness and leases."""
        return self.request(
            "POST",
            f"/v1/workers/{worker_id}/heartbeat",
            {"leases": leases or []},
        )

    def worker_complete(
        self, worker_id: str, lease_id: str, outcomes: list
    ) -> Dict[str, Any]:
        """``POST /v1/workers/<id>/complete`` — deliver a lease's results."""
        return self.request(
            "POST",
            f"/v1/workers/{worker_id}/complete",
            {"lease": lease_id, "outcomes": outcomes},
        )

    def worker_drain(self, worker_id: str) -> Dict[str, Any]:
        """``POST /v1/workers/<id>/drain`` — ask a worker to finish and exit."""
        return self.request("POST", f"/v1/workers/{worker_id}/drain")

    def worker_deregister(self, worker_id: str) -> Dict[str, Any]:
        """``DELETE /v1/workers/<id>`` — leave the fleet."""
        return self.request("DELETE", f"/v1/workers/{worker_id}")

    def fleet(self) -> Dict[str, Any]:
        """``GET /v1/workers`` — fleet snapshot (workers, leases, reclaims)."""
        return self.request("GET", "/v1/workers")

    # ----------------------------------------------------------- composites

    def wait(
        self,
        job_id: str,
        poll_timeout: float = 25.0,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Follow a job's events until it reaches a terminal state.

        Long-polls ``/events`` (so progress streams without busy-waiting),
        invoking ``on_event`` per event, and returns the final job summary.
        ``deadline`` is a monotonic-clock timestamp; ``None`` waits forever.

        Survives a daemon restart mid-poll: a dropped connection or 503 puts
        the loop into backoff-and-repoll (event sequence numbers restart at
        1 after recovery, so ``after`` resets too); a 404 after an outage
        means the job predates the journal — surfaced as the original error.
        """
        after = 0
        backoff = Backoff(seed=self.backoff_seed)
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(504, f"timed out waiting for job {job_id}")
            try:
                chunk = self.events(job_id, after=after, timeout=poll_timeout)
            except ServiceError as exc:
                if exc.status == 503:
                    self._sleep(backoff.next_delay())
                    continue
                raise
            except (ConnectionError, TimeoutError, OSError):
                # Daemon restarting: its recovered event log starts empty,
                # so our cursor would overshoot — rewind and re-poll.
                after = 0
                self._sleep(backoff.next_delay())
                continue
            backoff.reset()
            for event in chunk.get("events", []):
                if on_event is not None:
                    on_event(event)
            after = chunk.get("next", after)
            if chunk.get("state") in ("done", "failed"):
                return self.job(job_id)


__all__ = [
    "Backoff",
    "DEFAULT_RETRIES",
    "DEFAULT_SERVICE_URL",
    "ServiceClient",
    "ServiceError",
]
