"""The durable job queue: an fsync'd append-only journal plus its replay.

Durability contract: the admission response for ``POST /v1/jobs`` is not
sent until the job's ``submitted`` event is flushed *and fsync'd* to the
journal.  From that moment a killed daemon cannot lose the job — on restart
:func:`replay_journal` folds the event log into per-job records, and every
job whose latest state is ``queued`` or ``running`` is re-enqueued (the
result cache makes re-execution of already-finished cells free, so a job
killed mid-run only re-simulates its unfinished cells).

The journal is JSON-lines, one event per line::

    {"event": "submitted",   "id": "j000001", "seq": 1, "document": {...}}
    {"event": "started",     "id": "j000001"}
    {"event": "lease",       "id": "j000001", "action": "claim",
     "lease": "L000003", "worker": "w01", "cells": ["9f2c4e81aa00bb42"]}
    {"event": "lease",       "id": "j000001", "action": "reclaim", ...}
    {"event": "quarantined", "id": "j000001", "cell": "9f2c...", "error": "..."}
    {"event": "finished",    "id": "j000001", "accounting": {...}}
    {"event": "failed",      "id": "j000001", "status": 500, "error": "...",
     "traceback": "..."}
    {"event": "snapshot",    "id": "j000001", "record": {...}}

``lease``/``quarantined`` events are the fleet's durability layer
(:mod:`repro.service.fleet`): folding ``claim`` actions reconstructs each
cell's attempt count, so a daemon restart neither forgets that a cell has
already crashed workers nor un-quarantines a poisoned one.

A torn final line (the daemon died mid-append) is ignored on replay; every
complete line before it is intact because appends are single ``write`` calls
followed by ``flush`` + ``fsync``.

**Compaction** (:func:`compact_journal`) folds the whole log into one
``snapshot`` event per job and atomically replaces the file, so the journal
stops growing without bound across restarts.  The daemon compacts on
startup (``JobJournal(path, compact=True)``) — before the append handle
opens, through a temp file + fsync + ``os.replace``, so a crash mid-compact
leaves the original journal untouched and torn-tail tolerance is preserved.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class JobRecord:
    """One job's current state, as folded from the journal."""

    id: str
    seq: int
    document: Dict[str, Any]
    state: str = "queued"
    description: str = ""
    cells: Dict[str, int] = field(default_factory=dict)
    accounting: Optional[Dict[str, int]] = None
    error: Optional[str] = None
    #: HTTP status class of a failure (400 bad spec vs 500 simulation crash).
    error_status: int = 500
    #: Full traceback of a failure, when one was journaled.
    error_traceback: Optional[str] = None
    #: Fleet attempt counts per cell id (claims, including local fallback).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Quarantined cells: cell id -> last traceback/cause.
    quarantined: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        """The JSON shape ``GET /v1/jobs`` and ``GET /v1/jobs/<id>`` return."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "kind": self.document.get("kind"),
            "description": self.description,
            "cells": self.cells,
        }
        if self.accounting is not None:
            payload["accounting"] = self.accounting
        if self.error is not None:
            payload["error"] = self.error
            payload["error_status"] = self.error_status
        if self.error_traceback is not None:
            payload["traceback"] = self.error_traceback
        if self.attempts:
            payload["attempts"] = dict(self.attempts)
        if self.quarantined:
            payload["quarantined"] = dict(self.quarantined)
        return payload

    def snapshot(self) -> Dict[str, Any]:
        """The full-fidelity dict a ``snapshot`` journal event embeds."""
        return {
            "id": self.id,
            "seq": self.seq,
            "document": self.document,
            "state": self.state,
            "description": self.description,
            "cells": self.cells,
            "accounting": self.accounting,
            "error": self.error,
            "error_status": self.error_status,
            "error_traceback": self.error_traceback,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "JobRecord":
        """Rebuild a record from a ``snapshot`` event (unknown keys ignored)."""
        return cls(
            id=str(data["id"]),
            seq=int(data.get("seq", 0)),
            document=data.get("document") or {},
            state=data.get("state", "queued"),
            description=data.get("description", ""),
            cells=data.get("cells") or {},
            accounting=data.get("accounting"),
            error=data.get("error"),
            error_status=int(data.get("error_status", 500)),
            error_traceback=data.get("error_traceback"),
            attempts={
                str(k): int(v) for k, v in (data.get("attempts") or {}).items()
            },
            quarantined={
                str(k): str(v) for k, v in (data.get("quarantined") or {}).items()
            },
        )


class JobJournal:
    """Append-only, fsync'd event log backing the service's job queue.

    ``compact=True`` folds the existing log into per-job ``snapshot`` lines
    before opening for append — the daemon's startup path, keeping the
    journal's size proportional to the number of *jobs*, not the number of
    lifecycle events ever emitted.
    """

    def __init__(self, path: Union[str, Path], compact: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if compact and self.path.exists():
            compact_journal(self.path)
        self._handle = self.path.open("a", encoding="utf-8")
        # Admission appends from executor threads; the worker loop appends
        # from the event-loop thread.  One lock keeps lines whole.
        self._lock = threading.Lock()

    def append(self, event: Dict[str, Any]) -> None:
        """Durably append one event (returns only after fsync)."""
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def replay_journal(path: Union[str, Path]) -> List[JobRecord]:
    """Fold a journal file into job records, in submission order.

    Unknown events and a torn trailing line are skipped; events referencing
    jobs with no ``submitted``/``snapshot`` record are ignored (they cannot
    be resumed without their document).
    """
    path = Path(path)
    records: Dict[str, JobRecord] = {}
    if not path.exists():
        return []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn tail from a mid-append kill
            if not isinstance(event, dict):
                continue
            name = event.get("event")
            job_id = event.get("id")
            if name == "submitted" and isinstance(job_id, str):
                records[job_id] = JobRecord(
                    id=job_id,
                    seq=int(event.get("seq", 0)),
                    document=event.get("document") or {},
                    description=event.get("description", ""),
                    cells=event.get("cells") or {},
                )
            elif name == "snapshot" and isinstance(job_id, str):
                record_data = event.get("record")
                if isinstance(record_data, dict) and "id" in record_data:
                    records[job_id] = JobRecord.from_snapshot(record_data)
            elif job_id in records:
                record = records[job_id]
                if name == "started":
                    record.state = "running"
                elif name == "finished":
                    record.state = "done"
                    record.accounting = event.get("accounting")
                elif name == "failed":
                    record.state = "failed"
                    record.error = event.get("error", "unknown error")
                    record.error_status = int(event.get("status", 500))
                    record.error_traceback = event.get("traceback")
                elif name == "lease" and event.get("action") == "claim":
                    for cell in event.get("cells") or []:
                        cell = str(cell)
                        record.attempts[cell] = record.attempts.get(cell, 0) + 1
                elif name == "quarantined":
                    cell = str(event.get("cell"))
                    record.quarantined[cell] = str(
                        event.get("error", "unknown cause")
                    )
    return sorted(records.values(), key=lambda record: record.seq)


def compact_journal(path: Union[str, Path]) -> List[JobRecord]:
    """Fold ``path`` into one ``snapshot`` line per job, atomically.

    Replays the existing log (tolerating a torn tail), writes the folded
    records to a temp file in the same directory, fsyncs, and
    ``os.replace``\\ s it over the original — a crash at any point leaves
    either the old or the new journal, never a mix.  Returns the records,
    saving callers a second replay.
    """
    path = Path(path)
    records = replay_journal(path)
    if not path.exists():
        return records
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".journal-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in records:
                line = json.dumps(
                    {"event": "snapshot", "id": record.id,
                     "record": record.snapshot()},
                    sort_keys=True,
                )
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return records


def next_seq(records: List[JobRecord]) -> int:
    """The first unused submission sequence number."""
    return max((record.seq for record in records), default=0) + 1


__all__ = [
    "JOB_STATES",
    "JobJournal",
    "JobRecord",
    "compact_journal",
    "next_seq",
    "replay_journal",
]
