"""The durable job queue: an fsync'd append-only journal plus its replay.

Durability contract: the admission response for ``POST /v1/jobs`` is not
sent until the job's ``submitted`` event is flushed *and fsync'd* to the
journal.  From that moment a killed daemon cannot lose the job — on restart
:func:`replay_journal` folds the event log into per-job records, and every
job whose latest state is ``queued`` or ``running`` is re-enqueued (the
result cache makes re-execution of already-finished cells free, so a job
killed mid-run only re-simulates its unfinished cells).

The journal is JSON-lines, one event per line::

    {"event": "submitted", "id": "j000001", "seq": 1, "document": {...}, ...}
    {"event": "started",   "id": "j000001"}
    {"event": "finished",  "id": "j000001", "accounting": {...}}
    {"event": "failed",    "id": "j000001", "status": 500, "error": "..."}

A torn final line (the daemon died mid-append) is ignored on replay; every
complete line before it is intact because appends are single ``write`` calls
followed by ``flush`` + ``fsync``.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class JobRecord:
    """One job's current state, as folded from the journal."""

    id: str
    seq: int
    document: Dict[str, Any]
    state: str = "queued"
    description: str = ""
    cells: Dict[str, int] = field(default_factory=dict)
    accounting: Optional[Dict[str, int]] = None
    error: Optional[str] = None
    #: HTTP status class of a failure (400 bad spec vs 500 simulation crash).
    error_status: int = 500

    def summary(self) -> Dict[str, Any]:
        """The JSON shape ``GET /v1/jobs`` and ``GET /v1/jobs/<id>`` return."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "kind": self.document.get("kind"),
            "description": self.description,
            "cells": self.cells,
        }
        if self.accounting is not None:
            payload["accounting"] = self.accounting
        if self.error is not None:
            payload["error"] = self.error
            payload["error_status"] = self.error_status
        return payload


class JobJournal:
    """Append-only, fsync'd event log backing the service's job queue."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        # Admission appends from executor threads; the worker loop appends
        # from the event-loop thread.  One lock keeps lines whole.
        self._lock = threading.Lock()

    def append(self, event: Dict[str, Any]) -> None:
        """Durably append one event (returns only after fsync)."""
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def replay_journal(path: Union[str, Path]) -> List[JobRecord]:
    """Fold a journal file into job records, in submission order.

    Unknown events and a torn trailing line are skipped; events referencing
    jobs with no ``submitted`` record are ignored (they cannot be resumed
    without their document).
    """
    path = Path(path)
    records: Dict[str, JobRecord] = {}
    if not path.exists():
        return []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn tail from a mid-append kill
            if not isinstance(event, dict):
                continue
            name = event.get("event")
            job_id = event.get("id")
            if name == "submitted" and isinstance(job_id, str):
                records[job_id] = JobRecord(
                    id=job_id,
                    seq=int(event.get("seq", 0)),
                    document=event.get("document") or {},
                    description=event.get("description", ""),
                    cells=event.get("cells") or {},
                )
            elif job_id in records:
                record = records[job_id]
                if name == "started":
                    record.state = "running"
                elif name == "finished":
                    record.state = "done"
                    record.accounting = event.get("accounting")
                elif name == "failed":
                    record.state = "failed"
                    record.error = event.get("error", "unknown error")
                    record.error_status = int(event.get("status", 500))
    return sorted(records.values(), key=lambda record: record.seq)


def next_seq(records: List[JobRecord]) -> int:
    """The first unused submission sequence number."""
    return max((record.seq for record in records), default=0) + 1


__all__ = ["JOB_STATES", "JobJournal", "JobRecord", "next_seq", "replay_journal"]
