"""``repro serve`` — the always-on asyncio experiment service.

One process, three moving parts:

* an **asyncio HTTP/JSON API** (stdlib streams, HTTP/1.1, one request per
  connection) — see the route table in :meth:`ExperimentService._dispatch`;
* a **durable job queue**: admission appends an fsync'd ``submitted`` event
  to the journal *before* the 202 response is sent, so a killed daemon
  resumes every incomplete job on restart (:mod:`repro.service.journal`);
* a **worker loop** feeding the shared
  :class:`~repro.simulation.engine.ExperimentEngine`: bounded concurrency
  (``max_concurrent`` jobs at a time, each with the engine's own process
  pool underneath), per-cell progress events, and a shared content-addressed
  result cache that dedupes across tenants.

Backpressure: when ``max_queue`` jobs are already waiting, ``POST /v1/jobs``
returns **429 with a Retry-After header** instead of accepting unbounded
work.  Dedupe: the admission response reports how many of the document's
cells are already in the shared cache — a fully-cached submission runs in
milliseconds without simulating anything.

Graceful shutdown: SIGINT/SIGTERM stop admission, cancel running jobs at
their next cell boundary (completed cells are already in the result cache),
flush the journal, and exit — interrupted jobs stay ``queued``/``running``
in the journal and resume on the next start.

Fleet: when remote workers register (``repro work``, ``/v1/workers``), jobs
execute through the :class:`~repro.service.fleet.FleetCoordinator` — cells
are leased to workers over HTTP, results flow back through ``complete``,
and this daemon stays the *only* cache writer.  With no workers registered
the engine's in-process pool path is used unchanged.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import tempfile
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    BadSpecError,
    JobCancelled,
)
from repro.service.documents import ParsedDocument, parse_document
from repro.service.fleet import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    FleetCoordinator,
    FleetProtocolError,
)
from repro.service.journal import JobJournal, JobRecord, next_seq, replay_journal
from repro.simulation.engine import ExperimentEngine

#: Largest accepted request body; a SweepSpec/StudySpec is a few KB.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Default long-poll timeout for ``GET /v1/jobs/<id>/events`` (seconds).
DEFAULT_EVENT_TIMEOUT = 25.0

_HTTP_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _Job:
    """Runtime state wrapped around a journal :class:`JobRecord`."""

    def __init__(self, record: JobRecord) -> None:
        self.record = record
        #: Progress events, each ``{"seq": n, "type": ..., ...}``.
        self.events: List[Dict[str, Any]] = []
        #: Futures of long-poll waiters, resolved on the next event.
        self.waiters: List[asyncio.Future] = []

    @property
    def terminal(self) -> bool:
        return self.record.state in ("done", "failed")


class ExperimentService:
    """The experiment daemon: HTTP API + durable queue + engine workers.

    Construct, then ``await start()`` inside a running event loop (or use
    :class:`ServiceThread` / :func:`serve` which do it for you).  ``port=0``
    binds an ephemeral port, published as ``self.port`` after ``start()``.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        max_queue: int = 8,
        max_concurrent: int = 1,
        max_cache_bytes: Optional[int] = None,
        retry_after: float = 5.0,
        start_paused: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        fault_plan: Optional[Any] = None,
        log=None,
    ) -> None:
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir = self.state_dir / "results"
        self.results_dir.mkdir(exist_ok=True)
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.max_concurrent = max_concurrent
        self.retry_after = retry_after
        self.start_paused = start_paused
        self._log = log or (lambda line: None)
        self.engine = ExperimentEngine(
            workers=workers,
            cache_dir=cache_dir if cache_dir is not None else self.state_dir / "cache",
        )
        assert self.engine.cache is not None
        self.engine.cache.max_bytes = max_cache_bytes
        # Startup compaction folds prior lifecycles into snapshot records so
        # the journal's size tracks jobs, not events ever emitted.
        self.journal = JobJournal(self.state_dir / "journal.jsonl", compact=True)
        self.jobs: Dict[str, _Job] = {}
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._next_seq = 1
        #: Threading (not asyncio) event: checked from executor threads at
        #: every cell boundary to cancel running engine work cooperatively.
        self._stop = threading.Event()
        #: Test-only fault injection (see ``tests/chaos.py``): consulted per
        #: HTTP request (drop/delay/error) and per lease sweep (early expiry).
        self.fault_plan = fault_plan
        self.fleet = FleetCoordinator(
            journal=self.journal,
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            stop_event=self._stop,
            fault_plan=fault_plan,
            event_sink=self._fleet_event_sink,
            log=self._log,
        )
        self._interrupted_jobs = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-job"
        )

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listener, recover journaled jobs, start workers."""
        self._loop = asyncio.get_running_loop()
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if not self.start_paused:
            self.resume_workers()
        self._log(
            f"repro service listening on http://{self.host}:{self.port} "
            f"(state: {self.state_dir}, cache: {self.engine.cache.directory})"
        )

    def _recover(self) -> None:
        """Replay the journal; re-enqueue every job that never finished."""
        records = replay_journal(self.journal.path)
        self._next_seq = next_seq(records)
        resumed = 0
        for record in records:
            job = _Job(record)
            self.jobs[record.id] = job
            if record.state in ("queued", "running"):
                record.state = "queued"
                self._queue.put_nowait(record.id)
                resumed += 1
        if resumed:
            self._log(f"journal recovery: resuming {resumed} incomplete job(s)")

    def resume_workers(self) -> None:
        """Start the worker tasks (no-op if already running)."""
        assert self._loop is not None
        while len(self._worker_tasks) < self.max_concurrent:
            self._worker_tasks.append(self._loop.create_task(self._worker_loop()))

    async def stop(self) -> int:
        """Graceful shutdown; returns the process exit code.

        Stops admission, cancels running jobs at their next cell boundary,
        waits for worker threads to unwind, flushes/closes the journal.
        Returns ``EXIT_INTERRUPTED`` when a running job was cut short (it
        stays incomplete in the journal and resumes on restart), else 0.
        """
        self._stop.set()
        self.fleet.wake()  # distributed job threads re-check _stop now
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Join the worker *threads* first: they observe _stop at their next
        # cell boundary and return a "cancelled" outcome, which the worker
        # tasks must still be alive to record (cancelling the tasks first
        # would discard the outcome with the cancelled future).
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._executor.shutdown(wait=True)
        )
        for _ in range(500):  # let outcome processing drain (bounded ~5s)
            if not any(
                job.record.state == "running" for job in self.jobs.values()
            ):
                break
            await asyncio.sleep(0.01)
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks.clear()
        self.journal.close()
        return EXIT_INTERRUPTED if self._interrupted_jobs else EXIT_OK

    # ------------------------------------------------------------ job worker

    async def _worker_loop(self) -> None:
        assert self._loop is not None
        while True:
            job_id = await self._queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.record.state not in ("queued",):
                continue
            job.record.state = "running"
            self.journal.append({"event": "started", "id": job_id})
            self._post_event(job, {"type": "started"})
            try:
                outcome = await self._loop.run_in_executor(
                    self._executor, self._execute_job, job
                )
            except asyncio.CancelledError:
                # stop() cancelled us mid-await; the thread unwinds on its
                # own via the _stop flag and the job resumes next start.
                raise
            except BaseException as exc:  # noqa: BLE001
                # _execute_job never raises, but the await around it can
                # (executor shutdown races, broken futures).  Swallowing
                # this here used to kill the worker task and strand the job
                # in "running" forever — fail it loudly instead.
                outcome = (
                    "failed", 500, f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            kind = outcome[0]
            try:
                if kind == "ok":
                    _, result_doc, accounting, _ = outcome
                    self._write_result(job_id, result_doc)
                    job.record.accounting = accounting
                    job.record.state = "done"
                    self.journal.append(
                        {"event": "finished", "id": job_id, "accounting": accounting}
                    )
                    self._post_event(job, {"type": "done", "accounting": accounting})
                    self._log(f"job {job_id} done: {accounting}")
                elif kind == "cancelled":
                    # No journal event: the job is still queued/running on disk
                    # and will be resumed by the next daemon start.
                    job.record.state = "queued"
                    self._interrupted_jobs += 1
                    self._log(f"job {job_id} interrupted; will resume on restart")
                else:
                    self._fail_job(job, outcome)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 — e.g. _write_result OSError
                self._fail_job(
                    job,
                    ("failed", 500, f"{type(exc).__name__}: {exc}",
                     traceback.format_exc()),
                )

    def _fail_job(self, job: _Job, outcome: Tuple[Any, ...]) -> None:
        """Journal and publish a terminal failure (traceback included)."""
        _, status, message, trace = outcome
        job_id = job.record.id
        job.record.state = "failed"
        job.record.error = message
        job.record.error_status = status
        job.record.error_traceback = trace
        event: Dict[str, Any] = {
            "event": "failed", "id": job_id, "status": status, "error": message,
        }
        if trace is not None:
            event["traceback"] = trace
        self.journal.append(event)
        self._post_event(
            job, {"type": "failed", "status": status, "error": message}
        )
        self._log(f"job {job_id} failed ({status}): {message}")

    def _execute_job(self, job: _Job) -> Tuple[Any, ...]:
        """Run one job in a worker thread; never raises (returns outcomes).

        Per-job accounting is counted from the engine's progress callback
        (not ``engine.last_run_stats``), so concurrent jobs sharing the
        engine cannot misattribute each other's cells.
        """
        counts = {"total": 0, "cached": 0, "simulated": 0}
        loop = self._loop
        assert loop is not None

        def progress(done: int, total: int, kind: str) -> None:
            if self._stop.is_set():
                raise JobCancelled()
            counts[kind] += 1
            counts["total"] = total
            loop.call_soon_threadsafe(
                self._post_event,
                job,
                {"type": "cell", "done": done, "total": total, "source": kind},
            )

        try:
            parsed: ParsedDocument = parse_document(job.record.document)
            # The fleet path is taken only when workers are registered; with
            # none, executor=None keeps the engine's in-process pool path.
            executor = None
            if self.fleet.has_workers():
                executor = self.fleet.make_executor(job.record)
            result_doc = parsed.execute(
                self.engine, progress=progress, executor=executor
            )
        except JobCancelled:
            return ("cancelled", None, None, None)
        except BadSpecError as exc:
            return ("failed", 400, str(exc), traceback.format_exc())
        except BaseException as exc:  # noqa: BLE001 — worker must not leak
            return (
                "failed", 500, f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        return ("ok", result_doc, counts, None)

    def _write_result(self, job_id: str, result_doc: Dict[str, Any]) -> None:
        """Persist a finished job's result document atomically."""
        path = self.results_dir / f"{job_id}.json"
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.results_dir), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result_doc, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -------------------------------------------------------------- events

    def _fleet_event_sink(self, job_id: str, event: Dict[str, Any]) -> None:
        """Fleet lifecycle events -> the job's event stream (any thread)."""
        job = self.jobs.get(job_id)
        if job is None or self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._post_event, job, dict(event))
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _post_event(self, job: _Job, event: Dict[str, Any]) -> None:
        """Append one progress event and wake every long-poll waiter."""
        event = dict(event)
        event["seq"] = len(job.events) + 1
        job.events.append(event)
        waiters, job.waiters = job.waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def _wait_for_events(self, job: _Job, after: int, timeout: float) -> None:
        """Block until ``job`` has events beyond ``after`` (or timeout)."""
        if len(job.events) > after or job.terminal:
            return
        assert self._loop is not None
        waiter: asyncio.Future = self._loop.create_future()
        job.waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            pass

    # ------------------------------------------------------------ admission

    def queued_jobs(self) -> int:
        """Jobs admitted but not yet running (the admission bound's measure)."""
        return sum(1 for job in self.jobs.values() if job.record.state == "queued")

    async def _admit(self, document: Any) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """``POST /v1/jobs``: validate, dedupe-probe, journal, enqueue."""
        if self.queued_jobs() >= self.max_queue:
            return (
                429,
                {
                    "error": "admission queue is full",
                    "queued": self.queued_jobs(),
                    "max_queue": self.max_queue,
                    "retry_after": self.retry_after,
                },
                {"Retry-After": str(int(max(1, self.retry_after)))},
            )
        assert self._loop is not None
        # Parsing reads trace headers and the dedupe probe stats cache files:
        # both are I/O, so neither runs on the event loop.
        parsed = await self._loop.run_in_executor(
            None, lambda: parse_document(document)
        )
        cells = await self._loop.run_in_executor(
            None, lambda: parsed.cache_probe(self.engine)
        )
        if self.queued_jobs() >= self.max_queue:  # re-check across the await
            return (
                429,
                {
                    "error": "admission queue is full",
                    "queued": self.queued_jobs(),
                    "max_queue": self.max_queue,
                    "retry_after": self.retry_after,
                },
                {"Retry-After": str(int(max(1, self.retry_after)))},
            )
        seq = self._next_seq
        self._next_seq += 1
        job_id = f"j{seq:06d}"
        record = JobRecord(
            id=job_id,
            seq=seq,
            document=parsed.document,
            description=parsed.describe(),
            cells=cells,
        )
        job = _Job(record)
        self.jobs[job_id] = job
        # Durability point: the fsync'd submitted event *is* the admission.
        # Only after it returns may the client be told the job exists.
        await self._loop.run_in_executor(
            None,
            self.journal.append,
            {
                "event": "submitted",
                "id": job_id,
                "seq": seq,
                "document": parsed.document,
                "description": record.description,
                "cells": cells,
            },
        )
        self._queue.put_nowait(job_id)
        self._log(f"job {job_id} admitted: {record.description} (cells: {cells})")
        return 202, {"id": job_id, "state": "queued", "cells": cells}, {}

    # ----------------------------------------------------------- HTTP layer

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload, headers = 500, {"error": "internal error"}, {}
        drop_response = False
        delay = 0.0
        try:
            request = await self._read_request(reader)
            if request is None:
                return  # client closed without sending a request
            fault = self._fault_action(request[0], request[1])
            if fault is not None and fault[0] == "drop":
                writer.close()
                return  # connection dies before the daemon acts
            if fault is not None and fault[0] == "error":
                status, payload = int(fault[1]), {"error": "injected fault"}
            else:
                if fault is not None and fault[0] == "drop-after":
                    drop_response = True  # daemon acts; client never hears
                elif fault is not None and fault[0] == "delay":
                    delay = float(fault[1])
                status, payload, headers = await self._dispatch(*request)
        except _HttpError as exc:
            status, payload, headers = exc.status, {"error": exc.message}, {}
        except FleetProtocolError as exc:
            status, payload, headers = exc.status, {"error": exc.message}, {}
        except BadSpecError as exc:
            status, payload, headers = 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 — a request must never kill the loop
            status, payload, headers = 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        if drop_response:
            writer.close()
            return
        if delay:
            await asyncio.sleep(delay)
        try:
            body = json.dumps(payload).encode()
            lines = [
                f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close",
            ]
            lines.extend(f"{name}: {value}" for name, value in headers.items())
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _fault_action(self, method: str, path: str) -> Optional[Tuple[Any, ...]]:
        """Consult the chaos plan (if any) for this request; None = healthy."""
        if self.fault_plan is None:
            return None
        on_request = getattr(self.fault_plan, "on_request", None)
        if on_request is None:
            return None
        return on_request(method, path)

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, List[str]], Any]]:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _HttpError(400, "request line too long")
        if not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("ascii").split()
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Any = None
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise _HttpError(400, "request body is not valid JSON")
        parts = urlsplit(target)
        return method.upper(), parts.path.rstrip("/"), parse_qs(parts.query), body

    async def _dispatch(
        self, method: str, path: str, query: Dict[str, List[str]], body: Any
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path == "/v1/jobs":
            if method == "POST":
                return await self._admit(body)
            if method == "GET":
                return (
                    200,
                    {"jobs": [job.record.summary() for job in self.jobs.values()]},
                    {},
                )
            raise _HttpError(405, f"{method} not supported on {path}")
        if path == "/v1/status":
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on {path}")
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.record.state] = states.get(job.record.state, 0) + 1
            return (
                200,
                {
                    "state_dir": str(self.state_dir),
                    "jobs": states,
                    "queued": self.queued_jobs(),
                    "max_queue": self.max_queue,
                    "max_concurrent": self.max_concurrent,
                    "workers": self.engine.workers,
                    "paused": not self._worker_tasks,
                    "cache": self.engine.cache.stats().to_dict(),
                    "fleet": self.fleet.snapshot(),
                },
                {},
            )
        if path == "/v1/workers":
            if method == "POST":
                name = (body or {}).get("name")
                return 200, self.fleet.register(name), {}
            if method == "GET":
                return 200, self.fleet.snapshot(), {}
            raise _HttpError(405, f"{method} not supported on {path}")
        if path.startswith("/v1/workers/"):
            return await self._dispatch_worker(method, path, body)
        if path == "/v1/cache/stats":
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on {path}")
            return 200, self.engine.cache.stats().to_dict(), {}
        if path == "/v1/cache/prune":
            if method != "POST":
                raise _HttpError(405, f"{method} not supported on {path}")
            max_bytes = (body or {}).get("max_bytes")
            if max_bytes is None and self.engine.cache.max_bytes is None:
                raise _HttpError(
                    400, "prune needs max_bytes (service has no configured bound)"
                )
            assert self._loop is not None
            result = await self._loop.run_in_executor(
                None, lambda: self.engine.cache.prune(max_bytes)
            )
            return 200, result.to_dict(), {}
        if path.startswith("/v1/jobs/"):
            return await self._dispatch_job(method, path, query)
        raise _HttpError(404, f"no route for {path!r}")

    async def _dispatch_worker(
        self, method: str, path: str, body: Any
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """The fleet's worker API: ``/v1/workers/<id>[/<verb>]``.

        ``claim`` and ``complete`` append fsync'd journal events, so both
        run in an executor thread instead of blocking the event loop.
        """
        parts = path.split("/")  # ['', 'v1', 'workers', '<id>', maybe verb]
        worker_id = parts[3]
        assert self._loop is not None
        if len(parts) == 4:
            if method != "DELETE":
                raise _HttpError(405, f"{method} not supported on {path}")
            return 200, self.fleet.deregister(worker_id), {}
        if len(parts) != 5:
            raise _HttpError(404, f"no route for {path!r}")
        verb = parts[4]
        if method != "POST":
            raise _HttpError(405, f"{method} not supported on {path}")
        if verb == "claim":
            max_cells = int((body or {}).get("max_cells", 1))
            reply = await self._loop.run_in_executor(
                None, lambda: self.fleet.claim(worker_id, max_cells)
            )
            return 200, reply, {}
        if verb == "heartbeat":
            leases = [str(lease) for lease in (body or {}).get("leases", [])]
            return 200, self.fleet.heartbeat(worker_id, leases), {}
        if verb == "complete":
            lease_id = str((body or {}).get("lease", ""))
            outcomes = (body or {}).get("outcomes", [])
            if not isinstance(outcomes, list):
                raise _HttpError(400, "outcomes must be a list")
            reply = await self._loop.run_in_executor(
                None, lambda: self.fleet.complete(worker_id, lease_id, outcomes)
            )
            return 200, reply, {}
        if verb == "drain":
            return 200, self.fleet.drain(worker_id), {}
        raise _HttpError(404, f"no route for {path!r}")

    async def _dispatch_job(
        self, method: str, path: str, query: Dict[str, List[str]]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        parts = path.split("/")  # ['', 'v1', 'jobs', '<id>', maybe more]
        job = self.jobs.get(parts[3])
        if job is None:
            raise _HttpError(404, f"no such job {parts[3]!r}")
        if len(parts) == 4:
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on {path}")
            summary = job.record.summary()
            summary["events"] = len(job.events)
            return 200, summary, {}
        if len(parts) == 5 and parts[4] == "events":
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on {path}")
            after = int(query.get("after", ["0"])[0])
            timeout = min(
                float(query.get("timeout", [str(DEFAULT_EVENT_TIMEOUT)])[0]), 120.0
            )
            await self._wait_for_events(job, after, timeout)
            events = [event for event in job.events if event["seq"] > after]
            return (
                200,
                {
                    "id": job.record.id,
                    "state": job.record.state,
                    "events": events,
                    "next": after + len(events),
                },
                {},
            )
        if len(parts) == 5 and parts[4] == "result":
            if method != "GET":
                raise _HttpError(405, f"{method} not supported on {path}")
            if job.record.state == "failed":
                return (
                    job.record.error_status,
                    {"error": job.record.error, "id": job.record.id},
                    {},
                )
            if job.record.state != "done":
                raise _HttpError(
                    404, f"job {job.record.id} is {job.record.state}, not done"
                )
            assert self._loop is not None
            path_obj = self.results_dir / f"{job.record.id}.json"
            try:
                result_doc = await self._loop.run_in_executor(
                    None, lambda: json.loads(path_obj.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError):
                raise _HttpError(
                    500, f"result document for {job.record.id} is missing/corrupt"
                )
            return (
                200,
                {
                    "id": job.record.id,
                    "kind": job.record.document.get("kind"),
                    "accounting": job.record.accounting,
                    "result": result_doc,
                },
                {},
            )
        raise _HttpError(404, f"no route for {path!r}")


class _HttpError(Exception):
    """An HTTP-visible request error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


# ----------------------------------------------------------- embedding helpers


class ServiceThread:
    """Run an :class:`ExperimentService` on a background event loop.

    The test suite's (and any embedder's) way to get a real listening server
    without blocking the calling thread::

        handle = ServiceThread(state_dir=tmp, max_queue=2)
        try:
            client = ServiceClient(handle.base_url)
            ...
        finally:
            handle.stop()
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self.service: Optional[ExperimentService] = None
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, kwargs=service_kwargs, daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start within 30s")
        if self.error is not None:
            raise self.error

    def _run(self, **service_kwargs: Any) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.service = ExperimentService(**service_kwargs)
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 — surfaced to the caller
            self.error = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()

    @property
    def base_url(self) -> str:
        assert self.service is not None
        return f"http://{self.service.host}:{self.service.port}"

    def resume(self) -> None:
        """Start the workers of a ``start_paused=True`` service."""
        assert self._loop is not None and self.service is not None
        self._loop.call_soon_threadsafe(self.service.resume_workers)

    def stop(self, timeout: float = 30.0) -> int:
        """Gracefully stop the service and join its thread."""
        assert self._loop is not None and self.service is not None
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self._loop)
        code = future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop.close()
        return code


async def serve(service: ExperimentService) -> int:
    """Run ``service`` until SIGINT/SIGTERM; returns the process exit code."""
    await service.start()
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal support fall back to the default
            # KeyboardInterrupt path, which the CLI maps to EXIT_INTERRUPTED.
            pass
    await stop_requested.wait()
    print("shutting down: flushing journal ...", file=sys.stderr)
    return await service.stop()


__all__ = [
    "DEFAULT_EVENT_TIMEOUT",
    "ExperimentService",
    "MAX_BODY_BYTES",
    "ServiceThread",
    "serve",
]
