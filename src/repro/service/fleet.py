"""Lease-based fleet coordination: surviving worker death without corruption.

The daemon owns a :class:`FleetCoordinator`; remote workers (``repro work``,
:mod:`repro.service.worker`) pull **cell batches** from it over HTTP.  The
protocol is built so that *any* worker can disappear at *any* moment — SIGKILL,
network partition, OOM — and the job still completes with results bit-identical
to a serial in-process run:

* **Leases.**  A claim hands a worker up to ``max_cells`` cells under a lease
  with a deadline.  Heartbeats renew it; a worker that stops heartbeating
  (dead or partitioned) lets the lease expire, and the coordinator *reclaims*
  it — every unfinished cell goes back to the pending queue for someone else.
  Completions quote their lease; a completion under an expired/reclaimed lease
  is rejected as **stale**, so a partitioned-but-alive worker racing its own
  replacement can never double-deliver a cell.  The daemon is the only writer
  of the result cache, and it writes each cell exactly once.
* **Attempts and quarantine.**  Every claim (remote or local fallback)
  increments the cell's attempt count — journaled, so it survives a daemon
  restart.  A cell that is claimed ``max_attempts`` times without ever
  completing (it keeps crashing workers, or keeps raising) is **quarantined**:
  parked with its last traceback on the job record, and the job fails promptly
  with :class:`~repro.errors.CellQuarantined` instead of retrying forever.
* **Graceful degradation.**  A job only enters the fleet path when workers are
  registered.  If every worker dies or partitions mid-job (no heartbeat within
  ``worker_timeout``), the coordinator's run loop executes the remaining cells
  *locally* in the job thread — a fully partitioned fleet degrades to the
  in-process path instead of hanging.
* **Draining.**  ``POST /v1/workers/<id>/drain`` marks a worker draining: its
  next claim/heartbeat tells it to finish the current batch, deregister, and
  exit cleanly — no cells are abandoned, no leases expire.

Fault injection: a ``fault_plan`` (see ``tests/chaos.py``) may force leases to
expire early; the HTTP layer consults the same plan to drop or delay
responses.  All chaos is deterministic — triggered by counters, not clocks —
so every robustness claim above is provable by digest-identical tests.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import CellQuarantined, JobCancelled
from repro.simulation.engine import execute_cell_payload, job_cache_key

#: Seconds a lease stays valid without a renewal.
DEFAULT_LEASE_TTL = 15.0

#: Claims (remote or local) a cell may consume before quarantine.
DEFAULT_MAX_ATTEMPTS = 3

#: Seconds without any worker contact before the fleet counts as partitioned
#: (expressed as a multiple of the lease TTL).
WORKER_TIMEOUT_FACTOR = 2.0

#: Run-loop poll granularity (seconds): how often an executing job thread
#: sweeps expired leases and checks for the local-fallback condition.
DEFAULT_TICK = 0.05

#: Hex prefix length of a cell's content hash used as its wire/journal id.
CELL_ID_HEX = 16


class FleetProtocolError(Exception):
    """A worker API call the coordinator must reject (maps to HTTP)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class WorkerInfo:
    """One registered worker's liveness and accounting."""

    __slots__ = (
        "id", "name", "state", "registered_at", "last_seen",
        "claims", "cells_completed", "cells_failed",
    )

    def __init__(self, worker_id: str, name: str, now: float) -> None:
        self.id = worker_id
        self.name = name
        self.state = "active"  # active | draining
        self.registered_at = now
        self.last_seen = now
        self.claims = 0
        self.cells_completed = 0
        self.cells_failed = 0

    def summary(self, now: float) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "idle_s": round(max(0.0, now - self.last_seen), 3),
            "claims": self.claims,
            "cells_completed": self.cells_completed,
            "cells_failed": self.cells_failed,
        }


class Lease:
    """One claim's grant: a worker, its cells, and a renewal deadline."""

    __slots__ = ("id", "worker_id", "job_id", "cell_ids", "deadline", "state")

    def __init__(
        self, lease_id: str, worker_id: str, job_id: str,
        cell_ids: List[str], deadline: float,
    ) -> None:
        self.id = lease_id
        self.worker_id = worker_id
        self.job_id = job_id
        self.cell_ids = cell_ids
        self.deadline = deadline
        self.state = "active"  # active | completed | reclaimed | stale


class _Cell:
    """One pending payload of a distributed run."""

    __slots__ = ("cell_id", "offset", "payload", "attempts", "state", "lease_id")

    def __init__(self, cell_id: str, offset: int, payload: Dict[str, Any]) -> None:
        self.cell_id = cell_id
        self.offset = offset
        self.payload = payload
        self.attempts = 0
        self.state = "pending"  # pending | leased | local | done | quarantined
        self.lease_id: Optional[str] = None


class _FleetRun:
    """One job's cells while its executing thread sits in ``execute()``."""

    def __init__(self, record: Any, payloads: Sequence[Dict[str, Any]]) -> None:
        self.record = record
        self.job_id = record.id
        self.cells: Dict[str, _Cell] = {}
        #: Claimable by remote workers (payloads with no in-memory trace).
        self.pending_remote: deque = deque()
        #: Payloads that cannot cross the wire; executed by the job thread.
        self.pending_local: deque = deque()
        #: Completions not yet delivered to the engine's ``on_result``.
        self.ready: List[Any] = []
        self.done = 0
        #: First quarantined cell ``(cell, cause)``; poisons the whole run.
        self.poison: Optional[Any] = None
        seen: Dict[str, int] = {}
        for offset, payload in enumerate(payloads):
            base = job_cache_key(payload)[:CELL_ID_HEX]
            dup = seen.get(base, 0)
            seen[base] = dup + 1
            cell_id = base if dup == 0 else f"{base}#{dup}"
            cell = _Cell(cell_id, offset, payload)
            cell.attempts = int(record.attempts.get(cell_id, 0))
            self.cells[cell_id] = cell
            if cell_id in record.quarantined:
                # Parked in a previous daemon life: stay parked.
                cell.state = "quarantined"
                if self.poison is None:
                    self.poison = (cell, record.quarantined[cell_id])
            elif payload.get("trace") is not None:
                self.pending_local.append(cell_id)
            else:
                self.pending_remote.append(cell_id)

    @property
    def finished(self) -> bool:
        return self.done >= len(self.cells)

    def take_ready(self) -> List[Any]:
        ready, self.ready = self.ready, []
        return ready


class FleetCoordinator:
    """Thread-safe broker between executing job threads and remote workers.

    Worker-facing methods (:meth:`register`, :meth:`claim`, :meth:`heartbeat`,
    :meth:`complete`, :meth:`drain`, :meth:`deregister`) are called from the
    server's HTTP handlers; :meth:`execute` is the engine's cell-batch
    executor seam, called from a job's executor thread and blocking until
    every cell is delivered (or the run is poisoned/cancelled).  One lock
    guards all state; a condition variable wakes executing threads when
    results arrive or leases change.
    """

    def __init__(
        self,
        journal: Optional[Any] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        worker_timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        stop_event: Optional[threading.Event] = None,
        fault_plan: Optional[Any] = None,
        event_sink: Optional[Callable[[str, Dict[str, Any]], None]] = None,
        tick: float = DEFAULT_TICK,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.worker_timeout = (
            worker_timeout
            if worker_timeout is not None
            else WORKER_TIMEOUT_FACTOR * lease_ttl
        )
        self._journal = journal
        self._clock = clock
        self._stop = stop_event
        self._fault_plan = fault_plan
        self._event_sink = event_sink
        self._tick = tick
        self._log = log or (lambda line: None)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.workers: Dict[str, WorkerInfo] = {}
        self.leases: Dict[str, Lease] = {}
        self._runs: Dict[str, _FleetRun] = {}
        self._next_worker = 1
        self._next_lease = 1
        self.reclaimed_leases = 0
        self.stale_completions = 0

    # ------------------------------------------------------------ worker API

    def register(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Admit a worker; returns its id and the protocol parameters."""
        with self._lock:
            worker_id = f"w{self._next_worker:04d}"
            self._next_worker += 1
            worker = WorkerInfo(worker_id, name or worker_id, self._clock())
            self.workers[worker_id] = worker
            self._cond.notify_all()
        self._log(f"fleet: worker {worker_id} ({worker.name}) registered")
        return {
            "worker": worker_id,
            "lease_ttl": self.lease_ttl,
            "heartbeat_every": self.lease_ttl / 3.0,
        }

    def claim(self, worker_id: str, max_cells: int = 1) -> Dict[str, Any]:
        """Grant up to ``max_cells`` pending cells under a fresh lease."""
        if max_cells < 1:
            raise FleetProtocolError(400, f"max_cells must be >= 1, got {max_cells}")
        with self._lock:
            worker = self._worker_locked(worker_id)
            now = self._clock()
            worker.last_seen = now
            self._sweep_locked(now)
            if worker.state == "draining":
                return {"worker": worker_id, "drain": True, "cells": []}
            for run in self._runs.values():
                if not run.pending_remote or run.poison is not None:
                    continue
                cell_ids: List[str] = []
                lease_id = f"L{self._next_lease:06d}"
                while run.pending_remote and len(cell_ids) < max_cells:
                    cell_id = run.pending_remote.popleft()
                    cell = run.cells[cell_id]
                    cell.state = "leased"
                    cell.lease_id = lease_id
                    cell.attempts += 1
                    run.record.attempts[cell_id] = cell.attempts
                    cell_ids.append(cell_id)
                self._next_lease += 1
                lease = Lease(
                    lease_id, worker_id, run.job_id, cell_ids, now + self.lease_ttl
                )
                self.leases[lease_id] = lease
                worker.claims += 1
                self._journal_append(
                    {"event": "lease", "action": "claim", "id": run.job_id,
                     "lease": lease_id, "worker": worker_id, "cells": cell_ids}
                )
                self._post_fleet_event(
                    run.job_id,
                    {"type": "fleet", "action": "claim", "lease": lease_id,
                     "worker": worker_id, "cells": len(cell_ids)},
                )
                return {
                    "worker": worker_id,
                    "drain": False,
                    "lease": {"id": lease_id, "deadline_s": self.lease_ttl},
                    "cells": [
                        {"cell": cid, "payload": run.cells[cid].payload}
                        for cid in cell_ids
                    ],
                }
            return {"worker": worker_id, "drain": False, "cells": []}

    def heartbeat(
        self, worker_id: str, lease_ids: Sequence[str] = ()
    ) -> Dict[str, Any]:
        """Renew liveness and the given leases; reports stale ones."""
        with self._lock:
            worker = self._worker_locked(worker_id)
            now = self._clock()
            worker.last_seen = now
            self._sweep_locked(now)
            stale: List[str] = []
            for lease_id in lease_ids:
                lease = self.leases.get(lease_id)
                if (
                    lease is not None
                    and lease.worker_id == worker_id
                    and lease.state == "active"
                ):
                    lease.deadline = now + self.lease_ttl
                else:
                    stale.append(lease_id)
            return {
                "worker": worker_id,
                "drain": worker.state == "draining",
                "stale": stale,
            }

    def complete(
        self, worker_id: str, lease_id: str, outcomes: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Deliver a lease's results; stale leases are rejected whole.

        Each outcome is ``{"cell": id, "result": {...}}`` or ``{"cell": id,
        "error": traceback}``.  Cells the worker leased but did not report
        are requeued (the worker gave up on them).  The daemon writes the
        cache from these results exactly once — a second delivery (reclaimed
        lease, duplicated retry after a dropped response) is ``stale`` and
        discarded.
        """
        with self._lock:
            worker = self._worker_locked(worker_id)
            now = self._clock()
            worker.last_seen = now
            self._sweep_locked(now)
            lease = self.leases.get(lease_id)
            if (
                lease is None
                or lease.worker_id != worker_id
                or lease.state != "active"
            ):
                self.stale_completions += 1
                return {"accepted": 0, "stale": True}
            run = self._runs.get(lease.job_id)
            if run is None:
                lease.state = "stale"
                self.stale_completions += 1
                return {"accepted": 0, "stale": True}
            accepted = 0
            failed: List[str] = []
            reported = set()
            for outcome in outcomes:
                cell_id = str(outcome.get("cell"))
                cell = run.cells.get(cell_id)
                if cell is None or cell.lease_id != lease_id or cell.state != "leased":
                    continue
                reported.add(cell_id)
                if "result" in outcome:
                    cell.state = "done"
                    run.done += 1
                    run.ready.append((cell.offset, outcome["result"]))
                    worker.cells_completed += 1
                    accepted += 1
                else:
                    worker.cells_failed += 1
                    failed.append(cell_id)
                    self._cell_failed_locked(
                        run, cell, str(outcome.get("error", "worker error"))
                    )
            for cell_id in lease.cell_ids:
                if cell_id in reported:
                    continue
                cell = run.cells.get(cell_id)
                if cell is not None and cell.lease_id == lease_id and cell.state == "leased":
                    cell.state = "pending"
                    cell.lease_id = None
                    run.pending_remote.append(cell_id)
            lease.state = "completed"
            self._journal_append(
                {"event": "lease", "action": "complete", "id": run.job_id,
                 "lease": lease_id, "worker": worker_id,
                 "done": accepted, "failed": failed}
            )
            self._post_fleet_event(
                run.job_id,
                {"type": "fleet", "action": "complete", "lease": lease_id,
                 "worker": worker_id, "done": accepted, "failed": len(failed)},
            )
            self._cond.notify_all()
            return {"accepted": accepted, "stale": False}

    def drain(self, worker_id: str) -> Dict[str, Any]:
        """Mark a worker draining: finish the current batch, then exit."""
        with self._lock:
            worker = self._worker_locked(worker_id)
            worker.state = "draining"
        self._log(f"fleet: worker {worker_id} draining")
        return {"worker": worker_id, "state": "draining"}

    def deregister(self, worker_id: str) -> Dict[str, Any]:
        """Remove a worker; its outstanding leases are reclaimed immediately."""
        with self._lock:
            worker = self.workers.pop(worker_id, None)
            if worker is None:
                raise FleetProtocolError(404, f"unknown worker {worker_id!r}")
            now = self._clock()
            for lease in list(self.leases.values()):
                if lease.worker_id == worker_id and lease.state == "active":
                    self._reclaim_locked(lease, reason="deregistered")
            self._cond.notify_all()
        self._log(f"fleet: worker {worker_id} deregistered")
        return {"worker": worker_id, "state": "gone"}

    # -------------------------------------------------------------- fleet API

    def has_workers(self) -> bool:
        """Whether any worker is registered (the fleet-path gate)."""
        with self._lock:
            return bool(self.workers)

    def live_workers(self) -> int:
        """Workers heard from within ``worker_timeout`` and not draining."""
        with self._lock:
            return self._live_workers_locked(self._clock())

    def wake(self) -> None:
        """Wake every executing job thread (used by daemon shutdown)."""
        with self._lock:
            self._cond.notify_all()

    def snapshot(self) -> Dict[str, Any]:
        """Fleet state for ``GET /v1/status`` and ``GET /v1/workers``."""
        with self._lock:
            now = self._clock()
            return {
                "workers": [w.summary(now) for w in self.workers.values()],
                "live_workers": self._live_workers_locked(now),
                "active_leases": sum(
                    1 for lease in self.leases.values() if lease.state == "active"
                ),
                "reclaimed_leases": self.reclaimed_leases,
                "stale_completions": self.stale_completions,
                "distributed_jobs": len(self._runs),
                "lease_ttl": self.lease_ttl,
                "max_attempts": self.max_attempts,
            }

    def make_executor(self, record: Any) -> Callable:
        """The engine ``executor`` seam for one job (see ``_run_jobs``)."""

        def executor(payloads, on_result):
            self.execute(record, payloads, on_result)

        return executor

    # ---------------------------------------------------------- the run loop

    def execute(
        self,
        record: Any,
        payloads: Sequence[Dict[str, Any]],
        on_result: Callable[[int, Dict[str, Any]], None],
        local_execute: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> None:
        """Distribute ``payloads`` across the fleet; blocks until delivered.

        Runs in the job's executor thread.  Delivers every result through
        ``on_result(offset, result_dict)`` (the engine caches and accounts on
        its side).  Raises :class:`CellQuarantined` when a cell exhausts
        ``max_attempts`` and :class:`~repro.errors.JobCancelled` when the
        daemon is stopping.  With no live workers, remaining cells execute
        locally in this thread — the degradation path.
        """
        local_execute = local_execute or execute_cell_payload
        run = _FleetRun(record, payloads)
        with self._lock:
            self._runs[record.id] = run
            self._cond.notify_all()
        try:
            while True:
                if self._stop is not None and self._stop.is_set():
                    raise JobCancelled()
                with self._lock:
                    self._sweep_locked(self._clock())
                    ready = run.take_ready()
                    poison = run.poison
                for offset, produced in ready:
                    on_result(offset, produced)
                if poison is not None:
                    cell, cause = poison
                    cell_id = cell.cell_id if isinstance(cell, _Cell) else cell
                    attempts = record.attempts.get(cell_id, self.max_attempts)
                    raise CellQuarantined(
                        f"cell {cell_id} quarantined after {attempts} "
                        f"attempt(s); last failure:\n{cause}"
                    )
                with self._lock:
                    if run.finished and not run.ready:
                        return
                    cell = self._pop_local_cell_locked(run)
                if cell is not None:
                    self._execute_local(run, cell, local_execute)
                    continue
                with self._cond:
                    self._cond.wait(self._tick)
        finally:
            with self._lock:
                self._runs.pop(record.id, None)
                for lease in self.leases.values():
                    if lease.job_id == record.id and lease.state == "active":
                        lease.state = "stale"
                self._cond.notify_all()

    # ------------------------------------------------------------- internals

    def _worker_locked(self, worker_id: str) -> WorkerInfo:
        worker = self.workers.get(worker_id)
        if worker is None:
            raise FleetProtocolError(
                404, f"unknown worker {worker_id!r} (register first)"
            )
        return worker

    def _live_workers_locked(self, now: float) -> int:
        return sum(
            1
            for worker in self.workers.values()
            if worker.state == "active"
            and now - worker.last_seen <= self.worker_timeout
        )

    def _pop_local_cell_locked(self, run: _FleetRun) -> Optional[_Cell]:
        """Claim a cell for in-thread execution (fallback + wire-unsafe cells)."""
        cell_id: Optional[str] = None
        if run.pending_local:
            cell_id = run.pending_local.popleft()
        elif run.pending_remote and not self._live_workers_locked(self._clock()):
            cell_id = run.pending_remote.popleft()
        if cell_id is None:
            return None
        cell = run.cells[cell_id]
        cell.state = "local"
        cell.lease_id = None
        cell.attempts += 1
        run.record.attempts[cell_id] = cell.attempts
        self._journal_append(
            {"event": "lease", "action": "claim", "id": run.job_id,
             "lease": "local", "worker": "local", "cells": [cell_id]}
        )
        return cell

    def _execute_local(
        self, run: _FleetRun, cell: _Cell, local_execute: Callable
    ) -> None:
        """Run one cell in the job thread; failures count toward quarantine."""
        try:
            produced = local_execute(cell.payload)
        except JobCancelled:
            raise
        except Exception:
            with self._lock:
                self._cell_failed_locked(run, cell, traceback.format_exc())
            return
        with self._lock:
            cell.state = "done"
            run.done += 1
            run.ready.append((cell.offset, produced))
            self._cond.notify_all()

    def _cell_failed_locked(self, run: _FleetRun, cell: _Cell, cause: str) -> None:
        """One attempt failed: requeue the cell, or quarantine it."""
        cell.lease_id = None
        if cell.attempts >= self.max_attempts:
            self._quarantine_locked(run, cell, cause)
            return
        cell.state = "pending"
        if cell.payload.get("trace") is not None:
            run.pending_local.append(cell.cell_id)
        else:
            run.pending_remote.append(cell.cell_id)
        self._cond.notify_all()

    def _quarantine_locked(self, run: _FleetRun, cell: _Cell, cause: str) -> None:
        cell.state = "quarantined"
        run.record.quarantined[cell.cell_id] = cause
        if run.poison is None:
            run.poison = (cell, cause)
        self._journal_append(
            {"event": "quarantined", "id": run.job_id, "cell": cell.cell_id,
             "attempts": cell.attempts, "error": cause}
        )
        self._post_fleet_event(
            run.job_id,
            {"type": "fleet", "action": "quarantine", "cell": cell.cell_id,
             "attempts": cell.attempts},
        )
        self._log(
            f"fleet: cell {cell.cell_id} of {run.job_id} quarantined "
            f"after {cell.attempts} attempt(s)"
        )
        self._cond.notify_all()

    def _sweep_locked(self, now: float) -> None:
        """Reclaim expired leases (and fault-plan-forced early expiries)."""
        for lease in list(self.leases.values()):
            if lease.state != "active":
                continue
            expired = now > lease.deadline
            if not expired and self._fault_plan is not None:
                expire = getattr(self._fault_plan, "expire_lease", None)
                if expire is not None and expire(lease.id, lease.worker_id):
                    expired = True
            if expired:
                self._reclaim_locked(lease, reason="expired")

    def _reclaim_locked(self, lease: Lease, reason: str) -> None:
        lease.state = "reclaimed"
        self.reclaimed_leases += 1
        run = self._runs.get(lease.job_id)
        requeued: List[str] = []
        quarantined: List[str] = []
        if run is not None:
            for cell_id in lease.cell_ids:
                cell = run.cells.get(cell_id)
                if cell is None or cell.lease_id != lease.id or cell.state != "leased":
                    continue  # already delivered or re-leased
                if cell.attempts >= self.max_attempts:
                    self._quarantine_locked(
                        run, cell,
                        f"worker {lease.worker_id} lost lease {lease.id} "
                        f"({reason}) on attempt {cell.attempts}",
                    )
                    quarantined.append(cell_id)
                else:
                    cell.state = "pending"
                    cell.lease_id = None
                    run.pending_remote.append(cell_id)
                    requeued.append(cell_id)
        self._journal_append(
            {"event": "lease", "action": "reclaim", "id": lease.job_id,
             "lease": lease.id, "worker": lease.worker_id, "reason": reason,
             "requeued": requeued, "quarantined": quarantined}
        )
        self._post_fleet_event(
            lease.job_id,
            {"type": "fleet", "action": "reclaim", "lease": lease.id,
             "worker": lease.worker_id, "requeued": len(requeued)},
        )
        self._log(
            f"fleet: lease {lease.id} ({lease.worker_id}) reclaimed "
            f"[{reason}]: {len(requeued)} cell(s) requeued, "
            f"{len(quarantined)} quarantined"
        )
        self._cond.notify_all()

    def _journal_append(self, event: Dict[str, Any]) -> None:
        if self._journal is not None:
            self._journal.append(event)

    def _post_fleet_event(self, job_id: str, event: Dict[str, Any]) -> None:
        if self._event_sink is not None:
            self._event_sink(job_id, event)


__all__ = [
    "CELL_ID_HEX",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_TICK",
    "FleetCoordinator",
    "FleetProtocolError",
    "Lease",
    "WorkerInfo",
]
