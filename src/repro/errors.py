"""Shared error taxonomy and process exit codes.

The CLI historically collapsed every failure into ``sys.exit(1)``/``2``; with
the experiment service in the picture, callers (shell scripts, CI jobs, and
the HTTP layer) need to tell *whose fault* a failure was:

* **bad spec** — the submitted document/flags were malformed or referenced
  unknown registry names.  The input must change before a retry can succeed.
  CLI exit code :data:`EXIT_BAD_SPEC`; HTTP status 400.
* **simulation failure** — the spec was valid but executing it raised.  This
  is the simulator's (or environment's) fault, and a retry *might* succeed.
  CLI exit code :data:`EXIT_SIM_FAILURE`; HTTP status 500.
* **busy** — the service's admission queue is full; retry after a delay.
  CLI exit code :data:`EXIT_BUSY` (``EX_TEMPFAIL``); HTTP status 429.
* **interrupted** — SIGINT/SIGTERM arrived mid-run; outstanding work was
  cancelled and state flushed.  CLI exit code :data:`EXIT_INTERRUPTED`
  (the conventional ``128 + SIGINT``).

The bench ``--compare`` regression gate keeps its historical exit code ``1``:
it is neither a bad spec nor a crash, just a failed assertion about speed.
``repro lint`` similarly gets its own code (:data:`EXIT_LINT_FINDINGS`): a
non-baselined finding is a failed assertion about the code under analysis,
distinct from the lint invocation itself being malformed (that stays
:data:`EXIT_BAD_SPEC`).
"""

from __future__ import annotations

#: Everything worked.
EXIT_OK = 0

#: A regression/comparison gate failed (``bench --compare``).
EXIT_REGRESSION = 1

#: The user's spec/flags/document were invalid (fix the input, then retry).
EXIT_BAD_SPEC = 2

#: A valid spec failed during simulation/execution (the run crashed).
EXIT_SIM_FAILURE = 3

#: ``repro lint`` found non-baselined findings.  Like :data:`EXIT_REGRESSION`
#: this is a failed assertion about the *code*, not a crash and not a bad
#: spec: the diff (or the committed baseline) must change before CI goes
#: green again.
EXIT_LINT_FINDINGS = 4

#: The service refused admission because its queue is full (retry later);
#: matches BSD ``EX_TEMPFAIL``.
EXIT_BUSY = 75

#: SIGINT/SIGTERM cancelled the run (128 + SIGINT).
EXIT_INTERRUPTED = 130


class BadSpecError(ValueError):
    """A submitted spec/document/flag set is invalid (HTTP 400, exit 2)."""


class SimulationError(RuntimeError):
    """A valid job failed while executing (HTTP 500, exit 3)."""


class JobCancelled(BaseException):
    """Raised inside an engine run to abort it cooperatively.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so ordinary
    ``except Exception`` recovery paths in simulation code cannot swallow a
    shutdown request; the engine's execution loop catches it explicitly,
    cancels outstanding work, and re-raises.
    """


class CellQuarantined(SimulationError):
    """A cell exhausted its fleet ``max_attempts`` and was parked.

    Raised by the fleet executor (:mod:`repro.service.fleet`) when one cell
    of a distributed job has crashed — or taken down its worker — on every
    allowed attempt.  The cell is *quarantined*: its last traceback is
    journaled and surfaced on the job record, and the job fails promptly
    instead of wedging the whole fleet on a poisoned input.  Like any
    :class:`SimulationError` it maps to HTTP 500 / exit code 3.
    """


__all__ = [
    "BadSpecError",
    "CellQuarantined",
    "EXIT_BAD_SPEC",
    "EXIT_BUSY",
    "EXIT_INTERRUPTED",
    "EXIT_LINT_FINDINGS",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_SIM_FAILURE",
    "JobCancelled",
    "SimulationError",
]
