"""Stalling Slice Table (SST).

The SST (Section 3.2) is a small fully-associative cache of instruction
addresses (PCs): an instruction whose PC hits in the SST is part of a stalling
slice — a backward dependency chain that leads to a long-latency load.

The table is populated iteratively:

1. whenever a load blocks the ROB (a full-window stall), its PC is inserted;
2. whenever a decoded instruction hits in the SST, the PCs of the producers of
   its source registers — read from the RAT's producer-PC extension — are
   inserted as well.

After a few loop iterations the SST therefore holds the complete slices of
*all* stalling loads, which is what lets PRE prefetch across multiple distinct
slices where the runahead buffer is limited to one.

The paper provisions 256 entries with 4-byte tags (1 KB of storage) and
reports that this captures stalling slices with almost no misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass
class SSTStats:
    """Access statistics for the Stalling Slice Table."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0


class StallingSliceTable:
    """Fully-associative, LRU-replaced cache of stalling-slice PCs."""

    #: Bytes of storage per entry (4-byte PC tag, Section 3.6).
    TAG_BYTES = 4

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = SSTStats()
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pc: int) -> bool:
        return pc in self._entries

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    @property
    def storage_bytes(self) -> int:
        """Total SRAM storage required by the table (Section 3.6: 1 KB at 256 entries)."""
        return self.capacity * self.TAG_BYTES

    def lookup(self, pc: int) -> bool:
        """Probe the table for ``pc``; update LRU order and statistics."""
        self.stats.lookups += 1
        if pc in self._entries:
            self._entries.move_to_end(pc)
            self.stats.hits += 1
            return True
        return False

    def contains(self, pc: int) -> bool:
        """Check membership without updating LRU order or statistics."""
        return pc in self._entries

    def insert(self, pc: int) -> Optional[int]:
        """Insert ``pc``; return the evicted PC if the table was full."""
        if pc in self._entries:
            self._entries.move_to_end(pc)
            return None
        self.stats.inserts += 1
        evicted: Optional[int] = None
        if len(self._entries) >= self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[pc] = None
        return evicted

    def pcs(self) -> List[int]:
        """All PCs currently in the table, LRU to MRU."""
        return list(self._entries)

    def clear(self) -> None:
        """Remove every entry (the paper never clears the SST; provided for experiments)."""
        self._entries.clear()
