"""Traditional runahead execution (RA).

Models the runahead proposal of Mutlu et al. [2], [6] as described in
Sections 2.2 and 5 of the paper:

* on a full-window stall the processor checkpoints architectural state and
  enters runahead mode (only if the estimated remaining miss latency exceeds a
  threshold — the short-interval optimisation of [6]);
* in runahead mode the whole pipeline keeps running: instructions dispatch,
  execute and *pseudo-retire* from the ROB without updating architectural
  state, and loads that miss are marked invalid (INV) so their dependents
  drain instead of blocking;
* every load executed in runahead mode acts as a prefetch;
* when the stalling load returns, the pipeline is flushed, the checkpoint is
  restored, and fetch restarts at the stalling load — the flush/refill
  overhead (~56 cycles for a 192-entry ROB, Section 2.4) emerges naturally
  from the model as the front-end and window refill.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import RunaheadController
from repro.uarch.core import ExecutionMode
from repro.uarch.stats import RunaheadInterval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hierarchy import AccessResult
    from repro.uarch.core import DynInstr


class TraditionalRunaheadController(RunaheadController):
    """Runahead execution with the Mutlu et al. efficiency optimisations."""

    name = "runahead"
    pseudo_retire_in_runahead = True
    commit_in_runahead = True

    #: Consecutive useless (no-prefetch) intervals after which runahead entry
    #: is throttled, following the "useless period elimination" optimisation
    #: of Mutlu et al. [6].
    USELESS_STREAK_LIMIT = 3
    #: While throttled, only one stall in this many re-samples runahead mode.
    THROTTLE_SAMPLE_PERIOD = 16

    def __init__(self, minimum_interval: Optional[int] = None) -> None:
        super().__init__()
        self._minimum_interval = minimum_interval
        self._stalling_load: Optional["DynInstr"] = None
        self._restart_index: Optional[int] = None
        self._interval: Optional[RunaheadInterval] = None
        self._useless_streak = 0
        self._throttled_stalls = 0

    # ------------------------------------------------------------- lifecycle

    def attach(self, core) -> None:
        super().attach(core)
        if self._minimum_interval is None:
            self._minimum_interval = core.config.runahead_minimum_interval

    # ------------------------------------------------------------------ entry

    def on_full_window_stall(self, head: "DynInstr", cycle: int) -> None:
        core = self.core
        if core is None or core.mode == ExecutionMode.RUNAHEAD:
            return
        remaining = (head.completion_cycle or cycle) - cycle
        if remaining < (self._minimum_interval or 0):
            core.stats.runahead_entries_skipped_short += 1
            return
        if self._useless_streak >= self.USELESS_STREAK_LIMIT:
            # Recent runahead periods produced no prefetches (e.g. pure pointer
            # chasing): throttle entry, re-sampling occasionally to detect
            # phase changes.
            self._throttled_stalls += 1
            if self._throttled_stalls % self.THROTTLE_SAMPLE_PERIOD != 0:
                core.stats.runahead_entries_skipped_short += 1
                return
        self._interval = core.enter_runahead(cycle)
        self._stalling_load = head
        self._restart_index = head.seq

    # ------------------------------------------------------------------- exit

    def on_complete(self, instr: "DynInstr", cycle: int) -> None:
        core = self.core
        if core is None or core.mode != ExecutionMode.RUNAHEAD:
            return
        if instr is not self._stalling_load:
            return
        restart = self._restart_index if self._restart_index is not None else instr.seq
        core.flush_pipeline(restart)
        core.exit_runahead(cycle)
        if self._interval is not None:
            if self._interval.prefetches_issued < 2:
                self._useless_streak += 1
            else:
                self._useless_streak = 0
                self._throttled_stalls = 0
        self._stalling_load = None
        self._restart_index = None
        self._interval = None

    # --------------------------------------------------------------- dispatch

    def runahead_dispatch(self, cycle: int) -> int:
        """Dispatch future instructions speculatively, exactly like normal mode.

        The only difference from normal dispatch is that the instructions are
        marked as runahead instructions: their loads count as prefetches and
        the whole window is discarded at exit.
        """
        core = self.core
        assert core is not None
        queue = core.frontend.uop_queue
        width = core.config.pipeline_width
        core_cycle = core.cycle
        dispatched = 0
        while dispatched < width and queue:
            entry = queue[0]
            if entry.ready_cycle > core_cycle:
                break
            if not core.can_dispatch(entry.uop):
                break
            queue.popleft()
            core.rename_and_dispatch(entry, runahead=True, enter_rob=True)
            dispatched += 1
        return dispatched

    # ---------------------------------------------------------------- queries

    def treat_poison_as_ready(self, instr: "DynInstr") -> bool:
        core = self.core
        return core is not None and core.mode == ExecutionMode.RUNAHEAD

    def on_runahead_prefetch(self, instr: "DynInstr", result: "AccessResult", cycle: int) -> None:
        if self._interval is not None:
            self._interval.prefetches_issued += 1
