"""Precise Runahead Execution (PRE) — the paper's contribution.

PRE (Section 3) removes the two structural costs of earlier runahead
proposals:

* **No pipeline flush.**  On a full-window stall the Register Alias Table is
  checkpointed and the ROB is left untouched; the instructions in the stalled
  window keep executing, no instruction commits, and on exit the checkpoint is
  restored and commit resumes immediately from the stalling load.
* **Full slice coverage.**  All stalling slices are learned in the Stalling
  Slice Table (SST); in runahead mode, decoded micro-ops that hit in the SST —
  and only those — are renamed onto free physical registers and executed
  speculatively, generating prefetches for every future long-latency load
  whose address does not depend on the missing data.

Free physical registers are recycled through the Precise Register Deallocation
Queue (PRDQ, Section 3.4) so that runahead execution never steals registers
from the stalled window.  The optional Extended Micro-op Queue (EMQ,
Section 3.3) additionally buffers every micro-op decoded during runahead mode
and replays it at exit, saving the second fetch/decode at the cost of bounding
the runahead depth by the EMQ capacity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set, Tuple

from repro.core.base import RunaheadController
from repro.core.emq import ExtendedMicroOpQueue
from repro.core.prdq import PreciseRegisterDeallocationQueue
from repro.core.sst import StallingSliceTable
from repro.uarch.core import ExecutionMode
from repro.uarch.rename import RATCheckpoint
from repro.uarch.stats import RunaheadInterval
from repro.workloads.trace import MicroOp, is_fp_reg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hierarchy import AccessResult
    from repro.uarch.core import DynInstr


class PreciseRunaheadController(RunaheadController):
    """PRE, optionally with the Extended Micro-op Queue (PRE+EMQ)."""

    pseudo_retire_in_runahead = False
    commit_in_runahead = False

    def __init__(
        self,
        use_emq: bool = False,
        sst_entries: Optional[int] = None,
        prdq_entries: Optional[int] = None,
        emq_entries: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.use_emq = use_emq
        self.name = "pre_emq" if use_emq else "pre"
        self._sst_entries = sst_entries
        self._prdq_entries = prdq_entries
        self._emq_entries = emq_entries
        self.sst: Optional[StallingSliceTable] = None
        self.prdq: Optional[PreciseRegisterDeallocationQueue] = None
        self.emq: Optional[ExtendedMicroOpQueue] = None

        self._stalling_load: Optional["DynInstr"] = None
        self._rat_checkpoint: Optional[RATCheckpoint] = None
        self._resume_seq: Optional[int] = None
        self._interval: Optional[RunaheadInterval] = None
        #: Physical registers allocated by runahead instructions and not yet reclaimed.
        self._runahead_pregs: Set[Tuple[bool, int]] = set()
        self._runahead_instrs: list = []

    # ------------------------------------------------------------- lifecycle

    def attach(self, core) -> None:
        super().attach(core)
        self.sst = StallingSliceTable(self._sst_entries or core.config.sst_entries)
        self.prdq = PreciseRegisterDeallocationQueue(
            self._prdq_entries or core.config.prdq_entries
        )
        self.emq = (
            ExtendedMicroOpQueue(self._emq_entries or core.config.emq_entries)
            if self.use_emq
            else None
        )

    # ---------------------------------------------------------- SST learning

    def on_decode(self, uop: MicroOp, runahead: bool) -> None:
        if runahead:
            # Runahead-mode micro-ops are looked up explicitly in
            # :meth:`runahead_dispatch` before the rename decision is made.
            return
        self._lookup_and_learn(uop)

    def _lookup_and_learn(self, uop: MicroOp) -> bool:
        """Probe the SST for ``uop`` and, on a hit, learn its producers' PCs.

        Implements the iterative slice-tracking of Section 3.2: the producers
        are found through the RAT's producer-PC extension, so one additional
        level of the backward slice is learned every time the instruction is
        decoded again.
        """
        core = self.core
        assert core is not None and self.sst is not None
        core.stats.events.sst_lookups += 1
        hit = self.sst.lookup(uop.pc)
        if not hit:
            return False
        core.stats.events.sst_hits += 1
        for src in uop.srcs:
            producer_pc = core.rat.producer_pc(src)
            if producer_pc is not None and not self.sst.contains(producer_pc):
                self.sst.insert(producer_pc)
                core.stats.events.sst_inserts += 1
        return True

    # ------------------------------------------------------------------ entry

    def on_full_window_stall(self, head: "DynInstr", cycle: int) -> None:
        core = self.core
        if core is None or core.mode == ExecutionMode.RUNAHEAD:
            return
        assert self.sst is not None
        if not self.sst.contains(head.uop.pc):
            self.sst.insert(head.uop.pc)
            core.stats.events.sst_inserts += 1

        self._interval = core.enter_runahead(cycle)
        self._stalling_load = head
        self._rat_checkpoint = core.rat.checkpoint()
        self._resume_seq = core.frontend.next_dispatch_seq()
        self._runahead_pregs.clear()
        self._runahead_instrs = []
        if head.dest_preg is not None:
            core.poisoned_pregs.add((bool(head.dest_is_fp), head.dest_preg))

    # ------------------------------------------------------------------- exit

    def on_complete(self, instr: "DynInstr", cycle: int) -> None:
        core = self.core
        if core is None:
            return
        if instr.runahead and self.prdq is not None and core.mode == ExecutionMode.RUNAHEAD:
            self.prdq.mark_executed(instr)
            if self._interval is not None:
                self._interval.uops_executed += 1
        if core.mode == ExecutionMode.RUNAHEAD and instr is self._stalling_load:
            self._exit_runahead(cycle)

    def _exit_runahead(self, cycle: int) -> None:
        core = self.core
        assert core is not None and self.prdq is not None
        # Squash runahead instructions still waiting in the issue queue or in
        # flight in the execution units; their results are never used.
        for instr in core.iq.squash(lambda item: item.runahead):
            instr.squashed = True
            core.stats.events.squashed_uops += 1
        for instr in self._runahead_instrs:
            if not instr.completed:
                instr.squashed = True
        self.prdq.clear()
        # Restore the RAT checkpoint (Section 3.5) and return every register
        # borrowed by runahead execution to the free lists.
        if self._rat_checkpoint is not None:
            core.rat.restore(self._rat_checkpoint)
        for is_fp, preg in self._runahead_pregs:
            regfile = core.regfile_for(is_fp)
            if regfile.is_allocated(preg):
                regfile.free(preg)
        self._runahead_pregs.clear()
        core.poisoned_pregs.clear()
        core.exit_runahead(cycle)

        if self.use_emq and self.emq is not None:
            # Replay the micro-ops captured during runahead mode directly from
            # the EMQ: no re-fetch or re-decode is required (Section 3.3).
            entries = self.emq.drain()
            core.stats.events.emq_reads += len(entries)
            for entry in reversed(entries):
                entry.ready_cycle = cycle
                core.frontend.uop_queue.appendleft(entry)
        elif self._resume_seq is not None:
            # Without the EMQ the speculatively consumed micro-ops must be
            # fetched and decoded again.
            core.frontend.redirect(self._resume_seq, cycle)

        self._stalling_load = None
        self._rat_checkpoint = None
        self._resume_seq = None
        self._interval = None
        self._runahead_instrs = []

    # --------------------------------------------------------------- dispatch

    def runahead_dispatch(self, cycle: int) -> int:
        """Filter the decoded micro-op stream through the SST.

        The SST sits right after decode (Figure 1), so micro-ops that miss in
        it are discarded at the front-end delivery rate (up to ``fetch_width``
        per cycle) without consuming rename/dispatch bandwidth; only the
        SST hits are renamed and dispatched, at most ``pipeline_width`` per
        cycle.  This is what lets PRE run much further ahead than traditional
        runahead, which must rename and execute every fetched micro-op.
        """
        core = self.core
        assert core is not None and self.sst is not None and self.prdq is not None
        queue = core.frontend.uop_queue
        if not queue:
            return 0
        emq = self.emq if self.use_emq else None
        events = core.stats.events
        fetch_width = core.config.fetch_width
        pipeline_width = core.config.pipeline_width
        consumed = 0
        dispatched_hits = 0
        while consumed < fetch_width and queue:
            entry = queue[0]
            if entry.ready_cycle > cycle:
                break
            uop = entry.uop
            if emq is not None and emq.is_full:
                # Runahead depth is bounded by the EMQ: the core waits for the
                # stalling load once the queue fills up (Section 3.3).
                break
            hit = self._lookup_and_learn(uop)
            if hit:
                if dispatched_hits >= pipeline_width:
                    break
                if not self._can_dispatch_runahead(uop):
                    # Not enough free resources (issue queue, registers or
                    # PRDQ): stall runahead dispatch until some are reclaimed.
                    break
                queue.popleft()
                if emq is not None:
                    emq.append(entry)
                    events.emq_writes += 1
                instr = core.rename_and_dispatch(entry, runahead=True, enter_rob=False)
                self._record_runahead_instr(instr)
                dispatched_hits += 1
            else:
                queue.popleft()
                if emq is not None:
                    emq.append(entry)
                    events.emq_writes += 1
                self._discard_runahead_uop(entry, cycle)
            consumed += 1
        return consumed

    def _can_dispatch_runahead(self, uop: MicroOp) -> bool:
        core = self.core
        assert core is not None and self.prdq is not None
        if core.iq.is_full or self.prdq.is_full:
            return False
        if uop.dst is not None and core.regfile_for(is_fp_reg(uop.dst)).num_free == 0:
            return False
        return True

    def _record_runahead_instr(self, instr: "DynInstr") -> None:
        core = self.core
        assert core is not None and self.prdq is not None
        reclaim_old = (
            instr.prev_preg is not None
            and (bool(instr.dest_is_fp), instr.prev_preg) in self._runahead_pregs
        )
        self.prdq.allocate(
            instr,
            old_preg=instr.prev_preg,
            old_is_fp=instr.dest_is_fp,
            reclaim_old=reclaim_old,
        )
        core.stats.events.prdq_writes += 1
        if instr.dest_preg is not None:
            self._runahead_pregs.add((bool(instr.dest_is_fp), instr.dest_preg))
        self._runahead_instrs.append(instr)

    def _discard_runahead_uop(self, entry, cycle: int) -> None:
        """Drop a micro-op that is not part of any stalling slice.

        Discarded branches are resolved immediately so that a mispredicted
        branch does not stall runahead fetch forever (the simulator never
        executes wrong-path instructions; see
        :class:`repro.uarch.frontend.FrontEnd`).
        """
        core = self.core
        assert core is not None
        uop = entry.uop
        if uop.is_branch:
            mispredicted = entry.predicted_taken != uop.branch_taken
            core.predictor.update(uop.pc, uop.branch_taken, entry.predicted_taken)
            core.frontend.branch_resolved(entry.seq, cycle, mispredicted)

    # ------------------------------------------------------------------ ticks

    def tick(self, cycle: int) -> int:
        core = self.core
        if core is None or self.prdq is None or core.mode != ExecutionMode.RUNAHEAD:
            return 0
        reclaimed = self.prdq.deallocate_ready(self._free_runahead_register)
        if reclaimed:
            core.stats.events.prdq_deallocations += reclaimed
        return reclaimed

    def _free_runahead_register(self, is_fp: bool, preg: int) -> None:
        core = self.core
        assert core is not None
        regfile = core.regfile_for(is_fp)
        if regfile.is_allocated(preg):
            regfile.free(preg)
        self._runahead_pregs.discard((is_fp, preg))
        core.poisoned_pregs.discard((is_fp, preg))

    # ---------------------------------------------------------------- queries

    def treat_poison_as_ready(self, instr: "DynInstr") -> bool:
        return instr.runahead

    def on_runahead_prefetch(self, instr: "DynInstr", result: "AccessResult", cycle: int) -> None:
        if self._interval is not None:
            self._interval.prefetches_issued += 1
