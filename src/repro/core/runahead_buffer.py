"""Filtered runahead execution with a runahead buffer (RA-buffer).

Models the proposal of Hashemi et al. [4] as described in Section 2.3:

* on a full-window stall, a backward data-flow walk through the ROB finds the
  dependency chain ("stalling slice") that produces another dynamic instance
  of the stalling load;
* the chain is stored in the runahead buffer, the front-end is power gated,
  and in runahead mode the chain alone is renamed, dispatched and executed in
  a loop — each iteration generating a prefetch for the *next* dynamic
  instance of the stalling load;
* when the stalling load returns the pipeline is flushed and normal execution
  restarts at the stalling load, exactly as in traditional runahead.

Because the chain tracks a single static load, prefetch coverage is limited to
that one slice per runahead interval — the coverage limitation PRE removes.

A chain whose address computation transitively depends on the stalling load's
own value (classic pointer chasing) cannot produce valid prefetch addresses;
such intervals execute the replay loop but generate no prefetches, matching
the INV-propagation behaviour of the hardware proposal.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.base import RunaheadController
from repro.uarch.core import ExecutionMode
from repro.uarch.isa import execution_latency
from repro.uarch.stats import RunaheadInterval
from repro.workloads.trace import MicroOp, UopClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.core import DynInstr


@dataclass
class DependencyChain:
    """A stalling slice extracted by the backward data-flow walk."""

    root_pc: int
    uops: List[MicroOp]
    self_dependent: bool
    iteration_latency: int

    @property
    def length(self) -> int:
        """Number of micro-ops in the chain."""
        return len(self.uops)


@dataclass
class RunaheadBufferStats:
    """Statistics specific to the runahead buffer mechanism."""

    chains_built: int = 0
    chain_walks_failed: int = 0
    self_dependent_chains: int = 0
    replay_iterations: int = 0
    total_chain_length: int = 0

    @property
    def average_chain_length(self) -> float:
        """Mean extracted chain length in micro-ops."""
        return self.total_chain_length / self.chains_built if self.chains_built else 0.0


class RunaheadBufferController(RunaheadController):
    """Runahead buffer: replay a single stalling slice per runahead interval."""

    name = "runahead_buffer"
    pseudo_retire_in_runahead = False
    commit_in_runahead = False
    #: The replay loop prefetches *future* dynamic instances of the stalling
    #: load by indexing the whole trace; streaming sources are materialised
    #: for this controller (see :class:`repro.uarch.core.OoOCore`).
    requires_trace_oracle = True

    #: Consecutive useless (no-prefetch) intervals after which runahead entry
    #: is throttled ("useless period elimination", Mutlu et al. [6]).
    USELESS_STREAK_LIMIT = 3
    #: While throttled, only one stall in this many re-samples runahead mode.
    THROTTLE_SAMPLE_PERIOD = 16

    def __init__(
        self,
        max_chain_length: Optional[int] = None,
        minimum_interval: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._max_chain_length = max_chain_length
        self._minimum_interval = minimum_interval
        self._useless_streak = 0
        self._throttled_stalls = 0
        self.buffer_stats = RunaheadBufferStats()
        self._stalling_load: Optional["DynInstr"] = None
        self._restart_index: Optional[int] = None
        self._interval: Optional[RunaheadInterval] = None
        self._chain: Optional[DependencyChain] = None
        self._next_replay_cycle = 0
        self._prefetch_seqs: List[int] = []
        self._prefetch_pointer = 0
        self._pc_index: Dict[int, List[int]] = {}

    # ------------------------------------------------------------ properties

    #: Bytes of runahead-buffer storage per chain micro-op (pc + class + regs).
    BYTES_PER_CHAIN_UOP = 8
    #: Chain length assumed before :meth:`attach` provides the core's config.
    DEFAULT_MAX_CHAIN_LENGTH = 32
    #: Smallest SRAM macro the energy model will instantiate for the buffer.
    MIN_STORAGE_BYTES = 64

    @property
    def max_chain_length(self) -> int:
        """Maximum dependence-chain length the buffer stores."""
        return self._max_chain_length or self.DEFAULT_MAX_CHAIN_LENGTH

    @property
    def storage_bytes(self) -> int:
        """SRAM capacity of the runahead buffer, as modelled for energy."""
        return max(self.max_chain_length * self.BYTES_PER_CHAIN_UOP, self.MIN_STORAGE_BYTES)

    # ------------------------------------------------------------- lifecycle

    def attach(self, core) -> None:
        super().attach(core)
        if self._max_chain_length is None:
            self._max_chain_length = core.config.runahead_buffer_chain_length
        if self._minimum_interval is None:
            self._minimum_interval = core.config.runahead_minimum_interval
        self._pc_index = {}
        for seq, uop in enumerate(core.trace):
            if uop.is_load:
                self._pc_index.setdefault(uop.pc, []).append(seq)

    # ------------------------------------------------------------------ entry

    def on_full_window_stall(self, head: "DynInstr", cycle: int) -> None:
        core = self.core
        if core is None or core.mode == ExecutionMode.RUNAHEAD:
            return
        remaining = (head.completion_cycle or cycle) - cycle
        if remaining < (self._minimum_interval or 0):
            core.stats.runahead_entries_skipped_short += 1
            return
        if self._useless_streak >= self.USELESS_STREAK_LIMIT:
            # Recent replay loops produced no prefetches (e.g. the chain is
            # self-dependent pointer chasing): throttle entry, re-sampling
            # occasionally to detect phase changes.
            self._throttled_stalls += 1
            if self._throttled_stalls % self.THROTTLE_SAMPLE_PERIOD != 0:
                core.stats.runahead_entries_skipped_short += 1
                return
        chain = self._extract_chain(head)
        if chain is None:
            self.buffer_stats.chain_walks_failed += 1
            return
        self.buffer_stats.chains_built += 1
        self.buffer_stats.total_chain_length += chain.length
        if chain.self_dependent:
            self.buffer_stats.self_dependent_chains += 1
        core.stats.events.runahead_buffer_writes += chain.length

        self._interval = core.enter_runahead(cycle)
        core.frontend.power_gated = True
        self._stalling_load = head
        self._restart_index = head.seq
        self._chain = chain
        self._next_replay_cycle = cycle + 1

        # The replay loop prefetches dynamic instances of the stalling load
        # beyond the ones already inside the stalled window.
        window_max_seq = max((instr.seq for instr in core.rob), default=head.seq)
        instances = self._pc_index.get(head.uop.pc, [])
        self._prefetch_seqs = instances
        self._prefetch_pointer = bisect.bisect_right(instances, window_max_seq)

    def _extract_chain(self, head: "DynInstr") -> Optional[DependencyChain]:
        """Backward data-flow walk in the ROB from a second instance of the stalling load."""
        core = self.core
        assert core is not None
        other = core.rob.find_other_instance(head.uop.pc, head.seq)
        if other is None:
            return None
        max_length = self.max_chain_length
        chain: List["DynInstr"] = [other]
        chain_pcs = {other.uop.pc}
        needed = set(other.uop.srcs)
        for instr in core.rob.entries_before(other.seq):
            if not needed or len(chain) >= max_length:
                break
            dst = instr.uop.dst
            if dst is None or dst not in needed:
                continue
            if instr.uop.pc in chain_pcs:
                # The walk reached an earlier dynamic instance of a static
                # instruction already in the chain: the slice is a loop (e.g.
                # an induction variable), so one iteration has been captured
                # and the walk stops here, exactly as the runahead buffer
                # stores a single loop body to replay.
                needed.discard(dst)
                continue
            chain.append(instr)
            chain_pcs.add(instr.uop.pc)
            needed.discard(dst)
            needed.update(instr.uop.srcs)
        chain_uops = [instr.uop for instr in sorted(chain, key=lambda item: item.seq)]
        return DependencyChain(
            root_pc=head.uop.pc,
            uops=chain_uops,
            self_dependent=self._is_self_dependent(chain_uops, head.uop.pc),
            iteration_latency=self._iteration_latency(chain_uops),
        )

    @staticmethod
    def _is_self_dependent(chain_uops: Sequence[MicroOp], root_pc: int) -> bool:
        """Whether the root load's address transitively depends on its own value."""
        producers: Dict[int, int] = {}
        for uop in chain_uops:
            if uop.dst is not None:
                producers[uop.dst] = uop.pc
        root = next((uop for uop in chain_uops if uop.pc == root_pc), None)
        if root is None:
            return False
        visited = set()
        frontier = list(root.srcs)
        while frontier:
            reg = frontier.pop()
            if reg in visited:
                continue
            visited.add(reg)
            producer_pc = producers.get(reg)
            if producer_pc is None:
                continue
            if producer_pc == root_pc:
                return True
            producer = next((uop for uop in chain_uops if uop.pc == producer_pc), None)
            if producer is not None:
                frontier.extend(producer.srcs)
        return False

    def _iteration_latency(self, chain_uops: Sequence[MicroOp]) -> int:
        """Cycles between successive replay iterations.

        Successive iterations of the chain are independent except for the
        address-generation (induction) micro-ops, so the replay loop is
        limited by how fast the chain can be renamed and dispatched from the
        runahead buffer, not by the full serial latency of one iteration.
        Loads inside the chain that feed the root load's address (e.g. an
        index load) still gate the initiation rate with their L1 hit latency.
        """
        core = self.core
        assert core is not None
        dispatch_cycles = -(-len(chain_uops) // core.config.pipeline_width)
        feeding_load_cycles = sum(
            core.hierarchy.config.l1d.latency
            for uop in chain_uops[:-1]
            if uop.is_load
        )
        return max(dispatch_cycles, feeding_load_cycles, 1)

    # ------------------------------------------------------------------- exit

    def on_complete(self, instr: "DynInstr", cycle: int) -> None:
        core = self.core
        if core is None or core.mode != ExecutionMode.RUNAHEAD:
            return
        if instr is not self._stalling_load:
            return
        restart = self._restart_index if self._restart_index is not None else instr.seq
        core.frontend.power_gated = False
        core.flush_pipeline(restart)
        core.exit_runahead(cycle)
        if self._interval is not None:
            if self._interval.prefetches_issued < 2:
                self._useless_streak += 1
            else:
                self._useless_streak = 0
                self._throttled_stalls = 0
        self._stalling_load = None
        self._restart_index = None
        self._interval = None
        self._chain = None

    # ---------------------------------------------------------------- replay

    def runahead_dispatch(self, cycle: int) -> int:
        """The front-end is power gated; dispatch happens from the buffer in :meth:`tick`."""
        return 0

    def tick(self, cycle: int) -> int:
        core = self.core
        if core is None or core.mode != ExecutionMode.RUNAHEAD or self._chain is None:
            return 0
        if cycle < self._next_replay_cycle:
            return 0
        chain = self._chain
        self.buffer_stats.replay_iterations += 1
        core.stats.events.runahead_buffer_reads += chain.length
        core.stats.events.renamed_uops += chain.length
        core.stats.events.dispatched_uops += chain.length
        core.stats.events.issued_uops += chain.length
        core.stats.events.executed_uops += chain.length
        core.stats.runahead_uops_executed += chain.length
        self._next_replay_cycle = cycle + chain.iteration_latency

        if chain.self_dependent:
            return 1
        if self._prefetch_pointer >= len(self._prefetch_seqs):
            return 1
        # Each replay iteration regenerates exactly one future dynamic instance
        # of the stalling load.  Instances whose line is already resident (for
        # example the next few elements of a unit-stride stream) simply hit in
        # the L1 and generate no prefetch; instances to new lines prefetch.
        seq = self._prefetch_seqs[self._prefetch_pointer]
        uop = core.trace[seq]
        if core.hierarchy.l1d.contains(uop.mem_addr):
            self._prefetch_pointer += 1
            return 1
        result = core.hierarchy.access_data(
            uop.mem_addr, cycle, is_write=False, is_prefetch=True, pc=uop.pc
        )
        if result.retried:
            # MSHRs full: retry the same instance on the next iteration.
            return 1
        self._prefetch_pointer += 1
        core.stats.runahead_prefetches += 1
        if self._interval is not None:
            self._interval.prefetches_issued += 1
        return 1

    def next_wake_cycle(self, cycle: int) -> Optional[int]:
        core = self.core
        if core is None or core.mode != ExecutionMode.RUNAHEAD or self._chain is None:
            return None
        return max(self._next_replay_cycle, cycle + 1)

    # ---------------------------------------------------------------- queries

    def treat_poison_as_ready(self, instr: "DynInstr") -> bool:
        core = self.core
        return core is not None and core.mode == ExecutionMode.RUNAHEAD
