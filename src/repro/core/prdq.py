"""Precise Register Deallocation Queue (PRDQ).

Runahead-mode instructions borrow free physical registers but never commit, so
the conventional "free the previous mapping at commit" policy cannot reclaim
them.  The PRDQ (Section 3.4) is an in-order FIFO that implements *runahead
register reclamation*:

* an entry is allocated, in program order, for every runahead instruction that
  writes a register, recording the **previous** physical register mapped to
  the same architectural destination;
* the entry's ``executed`` bit is set when the instruction finishes executing
  (possibly out of order);
* entries deallocate strictly from the head, and only when executed — at that
  point no in-flight runahead instruction can still need the previous mapping,
  so it is returned to the free list.

One deviation from a literal reading of the paper is documented here: a
previous mapping that belongs to the *checkpointed* (pre-runahead) RAT is not
freed, because the stalled window still needs it after runahead exit; only
registers allocated during the current runahead interval are recycled.  The
queue is discarded wholesale at runahead exit (Section 3.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.core import DynInstr


@dataclass
class PRDQEntry:
    """One PRDQ slot: the instruction, the mapping it superseded, and an execute bit."""

    instr: "DynInstr"
    old_preg: Optional[int]
    old_is_fp: Optional[bool]
    #: Whether the previous mapping may be freed at deallocation (it must have
    #: been allocated during the current runahead interval).
    reclaim_old: bool
    executed: bool = False


@dataclass
class PRDQStats:
    """Occupancy and throughput statistics."""

    allocations: int = 0
    deallocations: int = 0
    registers_reclaimed: int = 0
    peak_occupancy: int = 0
    stalls_full: int = 0


class PreciseRegisterDeallocationQueue:
    """In-order FIFO used to reclaim physical registers in runahead mode."""

    #: Bytes of storage per entry (instruction id + register tag + execute bit,
    #: Section 3.6: 192 entries -> 768 bytes).
    ENTRY_BYTES = 4

    def __init__(self, capacity: int = 192) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = PRDQStats()
        self._entries: Deque[PRDQEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether runahead dispatch must stall for lack of PRDQ space."""
        return len(self._entries) >= self.capacity

    @property
    def storage_bytes(self) -> int:
        """Total SRAM storage required by the queue."""
        return self.capacity * self.ENTRY_BYTES

    def allocate(
        self,
        instr: "DynInstr",
        old_preg: Optional[int],
        old_is_fp: Optional[bool],
        reclaim_old: bool,
    ) -> PRDQEntry:
        """Append an entry at the tail (program order)."""
        if self.is_full:
            self.stats.stalls_full += 1
            raise OverflowError("PRDQ overflow")
        entry = PRDQEntry(instr=instr, old_preg=old_preg, old_is_fp=old_is_fp, reclaim_old=reclaim_old)
        self._entries.append(entry)
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._entries))
        return entry

    def mark_executed(self, instr: "DynInstr") -> bool:
        """Set the execute bit of the entry belonging to ``instr``; return whether found."""
        for entry in self._entries:
            if entry.instr is instr:
                entry.executed = True
                return True
        return False

    def deallocate_ready(self, free_register: Callable[[bool, int], None]) -> int:
        """Deallocate executed entries from the head, in order.

        ``free_register(is_fp, preg)`` is called for every previous mapping
        that may be reclaimed.  Returns the number of entries deallocated.
        """
        deallocated = 0
        while self._entries and self._entries[0].executed:
            entry = self._entries.popleft()
            self.stats.deallocations += 1
            deallocated += 1
            if entry.reclaim_old and entry.old_preg is not None and entry.old_is_fp is not None:
                free_register(entry.old_is_fp, entry.old_preg)
                self.stats.registers_reclaimed += 1
        return deallocated

    def clear(self) -> List[PRDQEntry]:
        """Discard all entries (runahead exit); return them for inspection."""
        entries = list(self._entries)
        self._entries.clear()
        return entries
