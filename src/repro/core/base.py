"""Runahead controller interface.

A *controller* implements one runahead technique on top of the baseline
out-of-order core.  The core (:class:`repro.uarch.core.OoOCore`) calls the
controller at well-defined points:

* :meth:`on_full_window_stall` — the ROB is full and its head is an
  uncompleted long-latency load (the runahead entry condition);
* :meth:`on_complete` — an instruction finished executing (used to detect the
  stalling load's return, i.e. the runahead exit condition);
* :meth:`on_decode` — a micro-op is renamed (PRE's SST learning hook);
* :meth:`runahead_dispatch` — called instead of normal dispatch while the core
  is in runahead mode;
* :meth:`tick` / :meth:`next_wake_cycle` — per-cycle controller work and idle
  skipping support;
* :meth:`treat_poison_as_ready` — whether an instruction may consume an
  invalid (INV) register value, which is how runahead execution drains past
  miss-dependent instructions.

The base class implements the "no runahead" behaviour so the baseline core can
also be expressed as ``OoOCore(trace)`` with no controller at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hierarchy import AccessResult
    from repro.uarch.core import DynInstr, OoOCore
    from repro.workloads.trace import MicroOp


class RunaheadController:
    """Base class for runahead techniques; does nothing by itself."""

    #: Human-readable variant name used in reports.
    name = "ooo"

    #: Whether the ROB pseudo-retires (drains without architectural effect)
    #: while in runahead mode — true for traditional runahead.
    pseudo_retire_in_runahead = False

    #: Whether normal commit continues in runahead mode.  PRE stops commit
    #: (Section 3.1); it is moot in practice because the ROB head is the
    #: stalling load, which cannot commit until it returns.
    commit_in_runahead = True

    #: Whether the controller needs random access over the *whole* trace (an
    #: oracle of future dynamic instances, e.g. the runahead buffer's replay
    #: index).  Streaming sources are materialised for such controllers; all
    #: others run at O(window) memory on any :class:`TraceSource`.
    requires_trace_oracle = False

    def __init__(self) -> None:
        self.core: Optional["OoOCore"] = None

    # ------------------------------------------------------------- lifecycle

    def attach(self, core: "OoOCore") -> None:
        """Bind the controller to a core; called once by the core constructor."""
        self.core = core

    # ----------------------------------------------------------------- hooks

    def on_full_window_stall(self, head: "DynInstr", cycle: int) -> None:
        """The ROB filled up behind an outstanding long-latency load."""

    def on_complete(self, instr: "DynInstr", cycle: int) -> None:
        """``instr`` finished executing at ``cycle``."""

    def on_decode(self, uop: "MicroOp", runahead: bool) -> None:
        """``uop`` is being renamed (in normal or runahead mode)."""

    def on_runahead_prefetch(self, instr: "DynInstr", result: "AccessResult", cycle: int) -> None:
        """A runahead-mode load accessed the memory hierarchy."""

    def runahead_dispatch(self, cycle: int) -> int:
        """Dispatch work while in runahead mode; return the number of micro-ops handled."""
        return 0

    def tick(self, cycle: int) -> int:
        """Perform per-cycle controller work; return a progress count."""
        return 0

    def next_wake_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which the controller has work to do, if any."""
        return None

    def treat_poison_as_ready(self, instr: "DynInstr") -> bool:
        """Whether ``instr`` may issue with an invalid (poisoned) source value."""
        return False
