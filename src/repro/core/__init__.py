"""The paper's contribution: runahead controllers and their hardware structures.

This package implements the four runahead configurations the paper evaluates
(Section 5) on top of the baseline core in :mod:`repro.uarch`:

* ``"ooo"`` — the baseline out-of-order core (no controller);
* ``"runahead"`` — traditional runahead execution (RA) with the Mutlu et al.
  short-interval optimisation;
* ``"runahead_buffer"`` — filtered runahead with a runahead buffer (RA-buffer);
* ``"pre"`` — Precise Runahead Execution;
* ``"pre_emq"`` — PRE with the Extended Micro-op Queue optimisation.

Use :func:`build_controller` or :func:`build_core` to construct them by name.

Variants live in the :data:`repro.registry.VARIANT_REGISTRY`; additional
variants can be added from anywhere with
:func:`repro.registry.register_variant` and are then accepted by
:func:`build_controller`, the experiment engine and the ``python -m repro``
CLI without further changes here.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import RunaheadController
from repro.core.emq import ExtendedMicroOpQueue
from repro.core.prdq import PRDQEntry, PreciseRegisterDeallocationQueue
from repro.core.pre import PreciseRunaheadController
from repro.core.runahead import TraditionalRunaheadController
from repro.core.runahead_buffer import DependencyChain, RunaheadBufferController
from repro.core.sst import StallingSliceTable
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.registry import VARIANT_REGISTRY, register_variant
from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore
from repro.workloads.trace import Trace


@register_variant("ooo", label="OoO", description="baseline out-of-order core")
def _build_ooo() -> None:
    return None


@register_variant(
    "runahead",
    label="RA",
    description="traditional runahead execution with the short-interval filter",
)
def _build_runahead() -> TraditionalRunaheadController:
    return TraditionalRunaheadController()


@register_variant(
    "runahead_buffer",
    label="RA-buffer",
    description="filtered runahead replaying one stalling slice from a buffer",
)
def _build_runahead_buffer() -> RunaheadBufferController:
    return RunaheadBufferController()


@register_variant("pre", label="PRE", description="precise runahead execution")
def _build_pre() -> PreciseRunaheadController:
    return PreciseRunaheadController(use_emq=False)


@register_variant(
    "pre_emq",
    label="PRE+EMQ",
    description="precise runahead execution with the extended micro-op queue",
)
def _build_pre_emq() -> PreciseRunaheadController:
    return PreciseRunaheadController(use_emq=True)


#: The built-in variant names, in the order the paper's figures present them.
#: New code should prefer :func:`repro.registry.variant_names`, which also
#: covers variants registered after import.
VARIANTS = tuple(VARIANT_REGISTRY.names())

#: Human-readable labels used by reports, matching the paper's terminology.
#: This is a live view: variants registered later appear automatically.
VARIANT_LABELS = VARIANT_REGISTRY.labels_view()


def build_controller(variant: str) -> Optional[RunaheadController]:
    """Build the runahead controller for ``variant`` (``None`` for the baseline).

    Raises
    ------
    ValueError
        If ``variant`` is not registered in the variant registry.
    """
    try:
        entry = VARIANT_REGISTRY.get(variant)
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of "
            f"{', '.join(VARIANT_REGISTRY.names())}"
        ) from None
    return entry.create()


def build_core(
    trace: Trace,
    variant: str = "pre",
    config: Optional[CoreConfig] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
) -> OoOCore:
    """Build a simulated core running ``trace`` with the given runahead variant."""
    if hierarchy is None:
        hierarchy = MemoryHierarchy(hierarchy_config)
    controller = build_controller(variant)
    return OoOCore(trace, config=config, hierarchy=hierarchy, controller=controller)


__all__ = [
    "VARIANTS",
    "VARIANT_LABELS",
    "RunaheadController",
    "TraditionalRunaheadController",
    "RunaheadBufferController",
    "PreciseRunaheadController",
    "StallingSliceTable",
    "PreciseRegisterDeallocationQueue",
    "PRDQEntry",
    "ExtendedMicroOpQueue",
    "DependencyChain",
    "build_controller",
    "build_core",
]
