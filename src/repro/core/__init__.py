"""The paper's contribution: runahead controllers and their hardware structures.

This package implements the four runahead configurations the paper evaluates
(Section 5) on top of the baseline core in :mod:`repro.uarch`:

* ``"ooo"`` — the baseline out-of-order core (no controller);
* ``"runahead"`` — traditional runahead execution (RA) with the Mutlu et al.
  short-interval optimisation;
* ``"runahead_buffer"`` — filtered runahead with a runahead buffer (RA-buffer);
* ``"pre"`` — Precise Runahead Execution;
* ``"pre_emq"`` — PRE with the Extended Micro-op Queue optimisation.

Use :func:`build_controller` or :func:`build_core` to construct them by name.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import RunaheadController
from repro.core.emq import ExtendedMicroOpQueue
from repro.core.prdq import PRDQEntry, PreciseRegisterDeallocationQueue
from repro.core.pre import PreciseRunaheadController
from repro.core.runahead import TraditionalRunaheadController
from repro.core.runahead_buffer import DependencyChain, RunaheadBufferController
from repro.core.sst import StallingSliceTable
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.core import OoOCore
from repro.workloads.trace import Trace

#: The variant names accepted by :func:`build_controller` and :func:`build_core`,
#: in the order the paper's figures present them.
VARIANTS = ("ooo", "runahead", "runahead_buffer", "pre", "pre_emq")

#: Human-readable labels used by reports, matching the paper's terminology.
VARIANT_LABELS = {
    "ooo": "OoO",
    "runahead": "RA",
    "runahead_buffer": "RA-buffer",
    "pre": "PRE",
    "pre_emq": "PRE+EMQ",
}


def build_controller(variant: str) -> Optional[RunaheadController]:
    """Build the runahead controller for ``variant`` (``None`` for the baseline).

    Raises
    ------
    ValueError
        If ``variant`` is not one of :data:`VARIANTS`.
    """
    if variant == "ooo":
        return None
    if variant == "runahead":
        return TraditionalRunaheadController()
    if variant == "runahead_buffer":
        return RunaheadBufferController()
    if variant == "pre":
        return PreciseRunaheadController(use_emq=False)
    if variant == "pre_emq":
        return PreciseRunaheadController(use_emq=True)
    raise ValueError(f"unknown variant {variant!r}; expected one of {', '.join(VARIANTS)}")


def build_core(
    trace: Trace,
    variant: str = "pre",
    config: Optional[CoreConfig] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
) -> OoOCore:
    """Build a simulated core running ``trace`` with the given runahead variant."""
    if hierarchy is None:
        hierarchy = MemoryHierarchy(hierarchy_config)
    controller = build_controller(variant)
    return OoOCore(trace, config=config, hierarchy=hierarchy, controller=controller)


__all__ = [
    "VARIANTS",
    "VARIANT_LABELS",
    "RunaheadController",
    "TraditionalRunaheadController",
    "RunaheadBufferController",
    "PreciseRunaheadController",
    "StallingSliceTable",
    "PreciseRegisterDeallocationQueue",
    "PRDQEntry",
    "ExtendedMicroOpQueue",
    "DependencyChain",
    "build_controller",
    "build_core",
]
