"""Extended Micro-op Queue (EMQ).

The optional PRE+EMQ configuration (Section 3.3) buffers *every* micro-op
decoded during runahead mode — both the ones that hit in the SST and execute
speculatively and the ones that are filtered out.  When the stalling load
returns and normal execution resumes, these micro-ops are dispatched straight
from the EMQ instead of being fetched and decoded a second time, saving
front-end energy at the cost of bounding how far runahead execution can run
(once the EMQ is full the core waits for the stalling load).

The paper provisions 768 entries (4x the ROB size), about 3 KB of storage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.uarch.frontend import FetchedUop


@dataclass
class EMQStats:
    """Occupancy and throughput statistics."""

    enqueued: int = 0
    drained: int = 0
    stalls_full: int = 0
    peak_occupancy: int = 0


class ExtendedMicroOpQueue:
    """FIFO of decoded micro-ops captured during runahead mode."""

    #: Bytes of storage per decoded micro-op (Section 3.6: 768 entries ~ 3 KB).
    ENTRY_BYTES = 4

    def __init__(self, capacity: int = 768) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = EMQStats()
        self._entries: Deque[FetchedUop] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether runahead execution must stall until the stalling load returns."""
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """Whether the queue holds no micro-ops."""
        return not self._entries

    @property
    def storage_bytes(self) -> int:
        """Total SRAM storage required by the queue."""
        return self.capacity * self.ENTRY_BYTES

    def append(self, entry: FetchedUop) -> None:
        """Record a micro-op decoded in runahead mode."""
        if self.is_full:
            self.stats.stalls_full += 1
            raise OverflowError("EMQ overflow")
        self._entries.append(entry)
        self.stats.enqueued += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._entries))

    def drain(self) -> List[FetchedUop]:
        """Remove and return every buffered micro-op, oldest first (runahead exit)."""
        entries = list(self._entries)
        self._entries.clear()
        self.stats.drained += len(entries)
        return entries

    def clear(self) -> None:
        """Discard the queue contents without counting them as drained."""
        self._entries.clear()
