"""Paper-style textual reports.

The paper's evaluation artefacts are two bar charts (Figure 2: performance
normalised to the baseline core; Figure 3: energy savings) and a configuration
table (Table 1).  This module renders the same information as aligned text
tables so that examples and benchmarks can print exactly the rows/series the
paper reports.

Sensitivity studies (:mod:`repro.simulation.study`) render here too:
:func:`format_study_markdown` produces one markdown table per study — one row
per configuration point, IPC/speedup/energy columns per variant, a geomean
row across points — and :func:`study_csv_rows`/:func:`write_study_csv` emit
the long-format per-(point, workload, variant) data behind the curves.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.simulation.experiment import ComparisonResult
from repro.simulation.metrics import geometric_mean
from repro.uarch.config import CoreConfig

if TYPE_CHECKING:  # import cycle: study.py renders through this module
    from repro.simulation.study import StudyResult


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    value_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render a nested mapping (row -> column -> value) as an aligned text table."""
    if not rows:
        return title or ""
    columns: List[str] = []
    for row_values in rows.values():
        for column in row_values:
            if column not in columns:
                columns.append(column)
    row_width = max(len(str(name)) for name in rows)
    col_widths = {
        column: max(len(column), 10)
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (row_width + 2) + "  ".join(column.rjust(col_widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row_name, row_values in rows.items():
        cells = []
        for column in columns:
            value = row_values.get(column)
            text = value_format.format(value) if value is not None else "-"
            cells.append(text.rjust(col_widths[column]))
        lines.append(str(row_name).ljust(row_width + 2) + "  ".join(cells))
    return "\n".join(lines)


def format_performance_figure(comparison: ComparisonResult) -> str:
    """Render Figure 2: performance normalised to the out-of-order baseline."""
    return format_table(
        comparison.performance_table(),
        value_format="{:.3f}",
        title="Figure 2 - performance normalized to OoO (higher is better)",
    )


def format_energy_figure(comparison: ComparisonResult) -> str:
    """Render Figure 3: energy savings relative to the out-of-order baseline."""
    return format_table(
        comparison.energy_table(),
        value_format="{:+.1f}%",
        title="Figure 3 - energy savings relative to OoO (positive = less energy)",
    )


def format_table1_configuration(config: Optional[CoreConfig] = None) -> str:
    """Render Table 1: the baseline core configuration."""
    config = config or CoreConfig()
    summary = config.summary()
    width = max(len(key) for key in summary)
    lines = ["Table 1 - baseline configuration for the out-of-order core"]
    for key, value in summary.items():
        lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)


def summarize_comparison(comparison: ComparisonResult) -> str:
    """One-paragraph summary mirroring the paper's headline numbers."""
    lines = []
    for variant in comparison.variants:
        if variant == "ooo":
            continue
        speedup = comparison.mean_speedup_percent(variant)
        energy = comparison.mean_energy_savings_percent(variant)
        invocations = None
        if variant in ("pre", "pre_emq") and "runahead" in comparison.variants:
            try:
                invocations = comparison.mean_invocation_ratio(variant)
            except ValueError:
                # Every per-benchmark ratio was degenerate (no runahead
                # entries on this suite); omit the statistic from the line.
                invocations = None
        line = f"{variant:>16}: speedup {speedup:+6.1f}%, energy saving {energy:+5.1f}%"
        if invocations:
            line += f", {invocations:.2f}x more runahead invocations than RA"
        lines.append(line)
    return "\n".join(lines)


# ------------------------------------------------------- sensitivity studies


def _markdown_row(cells: Sequence[str]) -> str:
    return "| " + " | ".join(cells) + " |"


def format_study_markdown(study: "StudyResult") -> str:
    """Render a study as a markdown report: one row per configuration point.

    Columns: one per axis (the point's coordinates), then per variant the
    suite-geomean IPC, and per non-baseline variant the geomean speedup and
    mean energy saving versus the ``ooo`` baseline *at the same point*.  A
    final ``geomean`` row aggregates each column across points, mirroring the
    AVG bars of the paper's figures.
    """
    spec = study.spec
    variants = study.variants()
    axis_names = [axis.name for axis in spec.axes]
    header = list(axis_names)
    header += [f"IPC {variant}" for variant in variants]
    header += [f"Δ% {variant}" for variant in variants if variant != "ooo"]
    header += [f"energy Δ% {variant}" for variant in variants if variant != "ooo"]

    lines = [
        f"## Study: {spec.name}",
        "",
        spec.description or "(no description)",
        "",
        f"- workloads: {', '.join(spec.workloads)}",
        f"- variants: {', '.join(variants)}",
        f"- micro-ops per cell: {spec.num_uops}",
        f"- cells: {study.total_jobs} "
        f"({study.simulated} simulated, {study.cache_hits} from cache)",
        "",
        _markdown_row(header),
        _markdown_row(["---"] * len(header)),
    ]

    ipc_columns: Dict[str, List[float]] = {variant: [] for variant in variants}
    speedup_columns: Dict[str, List[float]] = {
        variant: [] for variant in variants if variant != "ooo"
    }
    energy_columns: Dict[str, List[float]] = {
        variant: [] for variant in variants if variant != "ooo"
    }
    for point_result in study.points:
        cells = [point_result.point.coordinates[name] for name in axis_names]
        for variant in variants:
            ipc = study.geomean_ipc(point_result, variant)
            ipc_columns[variant].append(ipc)
            cells.append(f"{ipc:.3f}")
        for variant in variants:
            if variant == "ooo":
                continue
            speedup = study.mean_speedup_percent(point_result, variant)
            speedup_columns[variant].append(speedup)
            cells.append(f"{speedup:+.1f}")
        for variant in variants:
            if variant == "ooo":
                continue
            energy = study.mean_energy_savings_percent(point_result, variant)
            energy_columns[variant].append(energy)
            cells.append(f"{energy:+.1f}")
        lines.append(_markdown_row(cells))

    if study.points:
        geo = ["**geomean**"] + [""] * (len(axis_names) - 1)
        geo += [f"{geometric_mean(ipc_columns[variant]):.3f}" for variant in variants]
        # Speedup/energy are signed percentages (a geomean would be
        # ill-defined across sign changes), so their summary row is the
        # arithmetic mean of the per-point values.
        geo += [
            f"{sum(values) / len(values):+.1f}"
            for values in speedup_columns.values()
        ]
        geo += [
            f"{sum(values) / len(values):+.1f}"
            for values in energy_columns.values()
        ]
        lines.append(_markdown_row(geo))

    appendix: List[str] = []
    for point_result in study.points:
        for bench in point_result.comparison.benchmarks:
            for variant, result in bench.results.items():
                uncore = result.uncore
                if not result.cores or uncore is None:
                    continue
                for core in result.cores:
                    appendix.append(
                        _markdown_row(
                            [
                                point_result.point.label or "-",
                                bench.benchmark,
                                variant,
                                str(core.core_id),
                                core.variant,
                                core.trace_name,
                                f"{core.ipc:.3f}",
                                str(uncore.dram_reads[core.core_id]),
                                str(uncore.dram_queue_delay_cycles[core.core_id]),
                                str(uncore.bus_busy_cycles[core.core_id]),
                            ]
                        )
                    )
    if appendix:
        core_header = [
            "point",
            "workload",
            "variant",
            "core",
            "core variant",
            "core workload",
            "IPC",
            "DRAM reads",
            "queue-delay cyc",
            "bus-busy cyc",
        ]
        lines += [
            "",
            "### Per-core shared-resource attribution",
            "",
            "One row per core of each multi-core cell: queue-delay counts the "
            "cycles that core's DRAM requests waited on busy banks/bus, "
            "bus-busy the cycles its transfers occupied the shared data bus.",
            "",
            _markdown_row(core_header),
            _markdown_row(["---"] * len(core_header)),
            *appendix,
        ]
    return "\n".join(lines)


def study_csv_rows(study: "StudyResult") -> List[Dict[str, Any]]:
    """Long-format rows: one per (point, workload, variant) simulation.

    Each row carries the point's axis coordinates as leading columns, so the
    file pivots directly into per-axis curves in any plotting tool.
    """
    axis_names = [axis.name for axis in study.spec.axes]
    rows: List[Dict[str, Any]] = []
    for point_result in study.points:
        coordinates = point_result.point.coordinates
        for bench in point_result.comparison.benchmarks:
            for variant, result in bench.results.items():
                row: Dict[str, Any] = {name: coordinates[name] for name in axis_names}
                row.update(
                    workload=bench.benchmark,
                    variant=variant,
                    ipc=result.ipc,
                    cycles=result.cycles,
                    committed_uops=result.stats.committed_uops,
                    speedup_percent=(
                        0.0 if variant == "ooo" else bench.speedup_percent(variant)
                    ),
                    energy_savings_percent=(
                        0.0
                        if variant == "ooo"
                        else bench.energy_savings_percent(variant)
                    ),
                    total_energy_nj=result.energy.total_nj,
                )
                rows.append(row)
    return rows


def write_study_csv(study: "StudyResult", path: Union[str, Path]) -> Path:
    """Write :func:`study_csv_rows` to ``path`` as CSV; returns the path."""
    path = Path(path)
    rows = study_csv_rows(study)
    fieldnames = list(rows[0]) if rows else ["workload", "variant"]
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path
