"""Paper-style textual reports.

The paper's evaluation artefacts are two bar charts (Figure 2: performance
normalised to the baseline core; Figure 3: energy savings) and a configuration
table (Table 1).  This module renders the same information as aligned text
tables so that examples and benchmarks can print exactly the rows/series the
paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.simulation.experiment import ComparisonResult
from repro.uarch.config import CoreConfig


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    value_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render a nested mapping (row -> column -> value) as an aligned text table."""
    if not rows:
        return title or ""
    columns: List[str] = []
    for row_values in rows.values():
        for column in row_values:
            if column not in columns:
                columns.append(column)
    row_width = max(len(str(name)) for name in rows)
    col_widths = {
        column: max(len(column), 10)
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (row_width + 2) + "  ".join(column.rjust(col_widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row_name, row_values in rows.items():
        cells = []
        for column in columns:
            value = row_values.get(column)
            text = value_format.format(value) if value is not None else "-"
            cells.append(text.rjust(col_widths[column]))
        lines.append(str(row_name).ljust(row_width + 2) + "  ".join(cells))
    return "\n".join(lines)


def format_performance_figure(comparison: ComparisonResult) -> str:
    """Render Figure 2: performance normalised to the out-of-order baseline."""
    return format_table(
        comparison.performance_table(),
        value_format="{:.3f}",
        title="Figure 2 - performance normalized to OoO (higher is better)",
    )


def format_energy_figure(comparison: ComparisonResult) -> str:
    """Render Figure 3: energy savings relative to the out-of-order baseline."""
    return format_table(
        comparison.energy_table(),
        value_format="{:+.1f}%",
        title="Figure 3 - energy savings relative to OoO (positive = less energy)",
    )


def format_table1_configuration(config: Optional[CoreConfig] = None) -> str:
    """Render Table 1: the baseline core configuration."""
    config = config or CoreConfig()
    summary = config.summary()
    width = max(len(key) for key in summary)
    lines = ["Table 1 - baseline configuration for the out-of-order core"]
    for key, value in summary.items():
        lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)


def summarize_comparison(comparison: ComparisonResult) -> str:
    """One-paragraph summary mirroring the paper's headline numbers."""
    lines = []
    for variant in comparison.variants:
        if variant == "ooo":
            continue
        speedup = comparison.mean_speedup_percent(variant)
        energy = comparison.mean_energy_savings_percent(variant)
        invocations = None
        if variant in ("pre", "pre_emq") and "runahead" in comparison.variants:
            try:
                invocations = comparison.mean_invocation_ratio(variant)
            except ValueError:
                # Every per-benchmark ratio was degenerate (no runahead
                # entries on this suite); omit the statistic from the line.
                invocations = None
        line = f"{variant:>16}: speedup {speedup:+6.1f}%, energy saving {energy:+5.1f}%"
        if invocations:
            line += f", {invocations:.2f}x more runahead invocations than RA"
        lines.append(line)
    return "\n".join(lines)
