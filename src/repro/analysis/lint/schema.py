"""Structural fingerprints of the cache-key-visible dataclasses.

Everything :func:`repro.simulation.engine._job_cache_key` hashes flows
through a small set of serde dataclasses — job/sweep/study/replay specs and
the core/hierarchy configuration tree.  Adding, removing, renaming or
retyping a field on any of them changes what the content-addressed
``ResultCache`` (and the service's admission-time dedupe) considers "the same
experiment", so the repo's contract is: **any such change must come with a
``CACHE_SCHEMA_VERSION`` bump**, which invalidates every cached result.

This module derives a canonical *structure* for each of those classes —
``{field name -> rendered type}``, transitively including every nested
dataclass reachable through field types — and hashes it into a single
fingerprint.  The committed golden (``tests/goldens/schema_fingerprint.json``,
refreshed by ``scripts/capture_schema_fingerprint.py``) pins the fingerprint
the current ``CACHE_SCHEMA_VERSION`` was minted for; the ``cache-schema``
lint rule fails when the live structure drifts away from it without a bump.

The structure is deliberately *insensitive* to field order (fields are
sorted by name) and to everything that cannot change a cache key's meaning
(docstrings, methods, validation); it is sensitive exactly to the field
add/remove/rename/type-change class of edits.
"""

from __future__ import annotations

import dataclasses
import hashlib
import types
import typing
from typing import Any, Dict, List, Tuple, Union

from repro.serde import canonical_json

#: Where the committed fingerprint lives, relative to the repo root.
GOLDEN_RELPATH = "tests/goldens/schema_fingerprint.json"

#: The root set of cache-key-visible dataclasses.  Nested dataclasses
#: (DRAMConfig under HierarchyConfig, StudyAxis/AxisPoint under StudySpec,
#: ...) are pulled in transitively by :func:`schema_structures`.
SCHEMA_ROOTS: Tuple[str, ...] = (
    "repro.simulation.engine:JobSpec",
    "repro.simulation.engine:SweepSpec",
    "repro.simulation.simulator:SimulationRequest",
    "repro.simulation.study:StudySpec",
    "repro.simulation.shard:ReplaySpec",
    "repro.uarch.config:CoreConfig",
    "repro.memory.hierarchy:HierarchyConfig",
    "repro.memory.cache:CacheConfig",
    "repro.memory.dram:DRAMConfig",
)

_ABC_NAMES = {
    "Sequence": "Sequence",
    "MutableSequence": "MutableSequence",
    "Mapping": "Mapping",
    "MutableMapping": "MutableMapping",
    "Set": "AbstractSet",
    "Iterable": "Iterable",
}


def _load_roots() -> List[type]:
    import importlib

    classes = []
    for spec in SCHEMA_ROOTS:
        module_name, _, class_name = spec.partition(":")
        classes.append(getattr(importlib.import_module(module_name), class_name))
    return classes


def render_type(hint: Any) -> str:
    """A Python-version-stable string form of a field type hint.

    ``repr(hint)`` is *not* stable across 3.10—3.13 (``Optional`` collapsing,
    PEP 604 unions, ``typing`` vs ``collections.abc`` generics), so this walks
    origins/args explicitly and normalises: unions render as
    ``Optional[...]``/``Union[...]``, dataclasses as ``module.QualName``, and
    bare builtins by name.
    """
    if hint is type(None):
        return "None"
    if hint is Any:
        return "Any"
    if hint is Ellipsis:
        return "..."
    origin = typing.get_origin(hint)
    if origin is None:
        if dataclasses.is_dataclass(hint) and isinstance(hint, type):
            return f"{hint.__module__}.{hint.__qualname__}"
        if isinstance(hint, type):
            return hint.__name__
        return str(hint)
    args = typing.get_args(hint)
    if origin is Union or origin is getattr(types, "UnionType", None):
        non_none = [a for a in args if a is not type(None)]
        if len(non_none) == len(args) - 1:
            inner = ", ".join(render_type(a) for a in non_none)
            return f"Optional[{inner}]" if len(non_none) == 1 else f"Optional[Union[{inner}]]"
        return "Union[" + ", ".join(render_type(a) for a in args) + "]"
    name = getattr(origin, "__name__", None) or str(origin)
    name = _ABC_NAMES.get(name, name)
    if name in ("list", "tuple", "dict", "set", "frozenset"):
        name = name.capitalize() if name != "frozenset" else "FrozenSet"
    if not args:
        return name
    return name + "[" + ", ".join(render_type(a) for a in args) + "]"


def structure_of(cls: type) -> Dict[str, str]:
    """``{field name: rendered type}`` for one dataclass, sorted by name."""
    hints = typing.get_type_hints(cls)
    return {
        field.name: render_type(hints.get(field.name, Any))
        for field in sorted(dataclasses.fields(cls), key=lambda f: f.name)
    }


def _nested_dataclasses(hint: Any) -> List[type]:
    found = []
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        found.append(hint)
    for arg in typing.get_args(hint):
        found.extend(_nested_dataclasses(arg))
    return found


def schema_structures() -> Dict[str, Dict[str, str]]:
    """Structures of every schema root plus transitively nested dataclasses."""
    pending = _load_roots()
    seen: Dict[str, Dict[str, str]] = {}
    while pending:
        cls = pending.pop()
        key = f"{cls.__module__}.{cls.__qualname__}"
        if key in seen:
            continue
        seen[key] = structure_of(cls)
        hints = typing.get_type_hints(cls)
        for field in dataclasses.fields(cls):
            for nested in _nested_dataclasses(hints.get(field.name)):
                pending.append(nested)
    return dict(sorted(seen.items()))


def fingerprint(structures: Dict[str, Dict[str, str]]) -> str:
    """A content hash of the full structure map (dict-order-insensitive)."""
    return hashlib.sha256(canonical_json(structures).encode()).hexdigest()


def current_record() -> Dict[str, Any]:
    """The record ``scripts/capture_schema_fingerprint.py`` commits."""
    from repro.simulation.engine import CACHE_SCHEMA_VERSION

    structures = schema_structures()
    return {
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "fingerprint": fingerprint(structures),
        "classes": structures,
    }


def diff_structures(
    old: Dict[str, Dict[str, str]], new: Dict[str, Dict[str, str]]
) -> List[str]:
    """Human-readable structural differences, one message per drifted class."""
    messages: List[str] = []
    for name in sorted(set(old) | set(new)):
        if name not in old:
            messages.append(f"{name}: class is new to the cache-key schema")
            continue
        if name not in new:
            messages.append(f"{name}: class left the cache-key schema")
            continue
        before, after = old[name], new[name]
        if before == after:
            continue
        parts = []
        for fld in sorted(set(before) | set(after)):
            if fld not in before:
                parts.append(f"+{fld}: {after[fld]}")
            elif fld not in after:
                parts.append(f"-{fld}")
            elif before[fld] != after[fld]:
                parts.append(f"{fld}: {before[fld]} -> {after[fld]}")
        messages.append(f"{name}: " + ", ".join(parts))
    return messages
