"""The ``repro lint`` engine: repo index, rule protocol and runner.

The engine parses every module under ``src/repro`` once into a
:class:`RepoIndex` and hands that index to each registered rule.  Rules come
in two granularities:

* **per-module** rules override :meth:`LintRule.check_module` and are called
  once per indexed module (most rules — determinism, hot-path, hygiene);
* **repo-level** rules override :meth:`LintRule.check_repo` and see the whole
  index at once (cross-file invariants: the cache-schema drift gate, the
  probe-dispatch audit).

Rules are registered in :data:`LINT_REGISTRY` — a plain
:class:`repro.registry.Registry`, so ``repro lint --rules`` name resolution,
listing and duplicate detection behave exactly like workloads and variants —
and new rules can be added by any module that imports
:func:`register_lint_rule` (see the README's "Static analysis" section).

This package is deliberately *not* imported by :mod:`repro.simulation` or
:mod:`repro.uarch`: lint depends on the simulator (the schema gate inspects
the live dataclasses), never the reverse, so attaching the linter costs the
hot paths nothing at import time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import BadSpecError
from repro.registry import Registry
from repro.analysis.lint.findings import Finding, sort_findings

#: Registered lint rules; factories take no arguments and return a
#: :class:`LintRule` instance.
LINT_REGISTRY = Registry("lint rule", plural="lint rules")


def register_lint_rule(name: str, *, description: str = "", **metadata):
    """Decorator registering a :class:`LintRule` factory under ``name``."""
    return LINT_REGISTRY.register(name, description=description, **metadata)


@dataclass
class ModuleInfo:
    """One parsed source module of the linted tree."""

    #: Absolute path on disk (informational; findings use :attr:`relpath`).
    path: Path
    #: Repo-relative POSIX path, e.g. ``src/repro/uarch/core.py``.
    relpath: str
    #: Dotted module name, e.g. ``repro.uarch.core``.
    module: str
    tree: ast.Module
    source: str

    @property
    def package(self) -> str:
        """The subpackage this module lints as (``repro.uarch`` for
        ``repro.uarch.core``; top-level modules lint as ``repro``)."""
        parts = self.module.split(".")
        return ".".join(parts[:2]) if len(parts) > 2 else parts[0]

    @classmethod
    def from_source(
        cls, source: str, *, module: str, relpath: Optional[str] = None
    ) -> "ModuleInfo":
        """Build an in-memory module (inline rule fixtures in tests)."""
        rel = relpath or ("src/" + module.replace(".", "/") + ".py")
        return cls(
            path=Path(rel),
            relpath=rel,
            module=module,
            tree=ast.parse(source),
            source=source,
        )


class RepoIndex:
    """Every parsed module of the linted tree plus derived lookup tables."""

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules: List[ModuleInfo] = list(modules)
        self.by_module: Dict[str, ModuleInfo] = {m.module: m for m in self.modules}
        self._private_names: Dict[str, frozenset] = {}

    @classmethod
    def load(cls, root: Path, package_dir: Optional[Path] = None) -> "RepoIndex":
        """Parse every ``*.py`` under ``package_dir`` (default ``src/repro``)."""
        root = root.resolve()
        package_dir = (package_dir or root / "src" / "repro").resolve()
        if not package_dir.is_dir():
            raise BadSpecError(f"lint: no package directory at {package_dir}")
        modules: List[ModuleInfo] = []
        for path in sorted(package_dir.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise BadSpecError(f"lint: cannot parse {path}: {exc}") from exc
            relative = path.relative_to(package_dir)
            parts = ("repro",) + relative.with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            modules.append(
                ModuleInfo(
                    path=path,
                    relpath=path.relative_to(root).as_posix(),
                    module=".".join(parts),
                    tree=tree,
                    source=source,
                )
            )
        return cls(root=root, modules=modules)

    def private_names(self, package: str) -> frozenset:
        """Every single-underscore name *defined* anywhere in ``package``.

        The privacy rule treats access to ``obj._name`` as in-family — and
        therefore allowed — when some module of the accessor's own package
        defines ``_name`` (method, function, attribute or module global);
        anything else is a cross-package reach-through.
        """
        if package not in self._private_names:
            names = set()
            for info in self.modules:
                if info.package != package:
                    continue
                for node in ast.walk(info.tree):
                    if isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        names.add(node.name)
                    elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            for leaf in ast.walk(target):
                                if isinstance(leaf, ast.Name):
                                    names.add(leaf.id)
                                elif isinstance(leaf, ast.Attribute):
                                    names.add(leaf.attr)
            self._private_names[package] = frozenset(
                name
                for name in names
                if name.startswith("_") and not name.endswith("__")
            )
        return self._private_names[package]


class LintRule:
    """Base class for lint rules; override one (or both) ``check_*`` hooks."""

    #: Registry name (set by subclasses; mirrors the registration name).
    name = "rule"

    def check_module(self, module: ModuleInfo, index: RepoIndex) -> Iterator[Finding]:
        """Yield findings for one module (called once per indexed module)."""
        return iter(())

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        """Yield repo-level findings (called once per run)."""
        return iter(())


def qualname_map(module: ModuleInfo) -> Dict[int, str]:
    """Map ``id(node)`` -> enclosing qualname for every node of ``module``.

    One pass instead of one :func:`qualname_at` walk per finding; rules that
    expect many hits use this.
    """
    mapping: Dict[int, str] = {}
    chain: List[str] = []

    def visit(node: ast.AST) -> None:
        scoped = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        if scoped:
            chain.append(node.name)
        mapping[id(node)] = ".".join(chain) if chain else module.module
        for child in ast.iter_child_nodes(node):
            visit(child)
        if scoped:
            chain.pop()

    visit(module.tree)
    return mapping


@dataclass
class LintRun:
    """The outcome of one engine run, pre-baseline."""

    findings: List[Finding] = field(default_factory=list)
    #: Rule names that actually executed (presentation/debugging aid).
    rules: List[str] = field(default_factory=list)


class LintEngine:
    """Run a set of registered rules over a :class:`RepoIndex`."""

    def __init__(self, index: RepoIndex, rules: Optional[Sequence[str]] = None) -> None:
        self.index = index
        names = list(rules) if rules else LINT_REGISTRY.names()
        try:
            #: name -> constructed rule instance, in registry order.
            self.rules = {name: LINT_REGISTRY.create(name) for name in names}
        except KeyError as exc:
            # Unknown --rules selection is a bad invocation, not a finding.
            raise BadSpecError(str(exc.args[0])) from None

    def run(self, paths: Optional[Sequence[Path]] = None) -> LintRun:
        """Execute every selected rule; optionally restrict findings to ``paths``.

        ``paths`` filters *reporting*, not analysis: cross-file rules always
        see the whole index, and a finding survives the filter when its file
        lies under any of the given paths.
        """
        run = LintRun(rules=list(self.rules))
        for rule in self.rules.values():
            for module in self.index.modules:
                run.findings.extend(rule.check_module(module, self.index))
            run.findings.extend(rule.check_repo(self.index))
        if paths:
            resolved = [Path(p).resolve() for p in paths]
            run.findings = [
                f for f in run.findings if _under_any(self.index.root / f.path, resolved)
            ]
        run.findings = sort_findings(run.findings)
        return run


def _under_any(path: Path, roots: Iterable[Path]) -> bool:
    path = path.resolve()
    for root in roots:
        if path == root or root in path.parents:
            return True
    return False


def find_repo_root() -> Path:
    """The repository root, derived from the installed ``repro`` package.

    The in-tree layout is ``<root>/src/repro/__init__.py``; lint is a repo
    tool, so running it from a ``site-packages`` install (no ``src`` parent,
    no goldens) is reported as a bad invocation rather than half-working.
    """
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    if package_dir.parent.name != "src":
        raise BadSpecError(
            f"lint: repro is imported from {package_dir}, which is not the "
            "in-tree src/repro layout the linter analyses"
        )
    return package_dir.parent.parent
