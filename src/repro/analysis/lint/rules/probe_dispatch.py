"""Probe-hook audit: every declared hook must actually be dispatched.

The probe system is pay-as-you-go: :class:`repro.uarch.probes.Probe` declares
``on_*`` hook methods, ``_HOOKS`` names the dispatchable subset, and the core
calls ``probes.on_X(...)`` only at the matching pipeline events.  Two drift
modes have bitten similar designs:

* a hook is added to ``Probe`` but never wired into ``_HOOKS`` — subclass
  overrides are silently ignored by the fast-path dispatch tables;
* a hook is in ``_HOOKS`` but no simulator site ever calls it — dead API that
  probes implement for nothing.

Both are invisible to tests that only exercise existing hooks, so the linter
closes the loop structurally:

* ``P601`` — an ``on_*`` method on ``Probe`` missing from ``_HOOKS``
  (lifecycle methods ``on_attach``/``on_finish`` are dispatched explicitly by
  the engine, not via the table, and are exempt).
* ``P602`` — a ``_HOOKS`` entry with no ``<expr>.on_X(...)`` call site
  anywhere in ``src/repro``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.lint.engine import LintRule, RepoIndex, register_lint_rule
from repro.analysis.lint.findings import Finding

PROBE_MODULE = "repro.uarch.probes"

#: Lifecycle hooks dispatched directly by the engine, outside ``_HOOKS``.
LIFECYCLE_HOOKS = frozenset({"on_attach", "on_finish"})


def _find_probe_decl(
    index: RepoIndex,
) -> Tuple[Optional[ast.ClassDef], List[Tuple[str, int]], str]:
    """Locate the Probe class and the ``_HOOKS`` tuple (name, lineno) pairs."""
    info = index.by_module.get(PROBE_MODULE)
    if info is None:
        return None, [], ""
    probe_cls = None
    hooks: List[Tuple[str, int]] = []
    for node in ast.iter_child_nodes(info.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Probe":
            probe_cls = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "_HOOKS":
                    for element in getattr(node.value, "elts", []):
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            hooks.append((element.value, element.lineno))
    return probe_cls, hooks, info.relpath


@register_lint_rule(
    "probe-dispatch",
    description="every Probe on_* hook must be in _HOOKS and have a dispatch "
    "site (P6xx)",
)
class ProbeDispatchRule(LintRule):
    name = "probe-dispatch"

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        probe_cls, hooks, probes_relpath = _find_probe_decl(index)
        if probe_cls is None:
            return  # nothing to audit (synthetic indexes in tests)
        hook_names = {name for name, _ in hooks}

        # P601: declared on Probe, absent from _HOOKS --------------------
        for stmt in probe_cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not stmt.name.startswith("on_") or stmt.name in LIFECYCLE_HOOKS:
                continue
            if stmt.name not in hook_names:
                yield Finding(
                    rule=self.name,
                    code="P601",
                    path=probes_relpath,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    symbol=f"Probe.{stmt.name}",
                    message=(
                        f"Probe.{stmt.name} is not listed in _HOOKS; subclass "
                        "overrides will never be dispatched"
                    ),
                    detail=stmt.name,
                )

        # P602: in _HOOKS but never dispatched ---------------------------
        dispatched = set()
        for info in index.modules:
            for node in ast.walk(info.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in hook_names
                    # The hook *definition* site (def on_X) is not a call, but
                    # ProbeSet forwards via getattr-built dispatchers too; any
                    # attribute call with the hook's name counts as a site.
                ):
                    dispatched.add(node.func.attr)
        for name, lineno in hooks:
            if name not in dispatched:
                yield Finding(
                    rule=self.name,
                    code="P602",
                    path=probes_relpath,
                    line=lineno,
                    col=0,
                    symbol=f"_HOOKS.{name}",
                    message=(
                        f"hook {name!r} is declared in _HOOKS but no "
                        "simulator site dispatches it; dead probe API"
                    ),
                    detail=name,
                )
