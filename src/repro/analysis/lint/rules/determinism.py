"""Determinism sanitizer: simulation code must be bit-deterministic.

Everything downstream of the simulator assumes bit-determinism: the 30-cell
golden-digest suite, ``_job_cache_key``'s content addressing (a re-run must
reproduce the cached cell exactly), parallel==serial sweep identity, and
sharded stitching.  One stray ``random.random()`` or wall-clock read inside
:data:`DETERMINISTIC_PACKAGES` silently poisons all of them, so this rule
forbids the nondeterminism sources statically:

* ``D101`` — the module-global ``random.*`` API (``random.random()``,
  ``random.shuffle`` ...) and unseeded ``random.Random()`` /
  ``random.SystemRandom``.  Seeded construction — ``random.Random(seed)`` —
  is the sanctioned pattern (see ``workloads/generators.py``).
* ``D102`` — ``from random import shuffle``-style imports that alias the
  global RNG into the module namespace where call sites can no longer be
  distinguished from seeded-instance methods.
* ``D103`` — wall-clock reads: ``time.time``/``time.monotonic`` (and their
  ``_ns`` twins) and ``datetime.now``/``utcnow``/``today``.
  ``time.perf_counter`` stays legal: measuring *how long* a simulation took
  (``perfbench``) never feeds simulated state.
* ``D104`` — entropy sources: ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  anything from ``secrets``.
* ``D105`` — ``id()``-keyed ordering (``sorted(xs, key=id)``): CPython
  addresses vary run to run, so any such order is nondeterministic.
* ``D106`` — iterating a set straight into ordered output (``for x in
  set(...)``, ``list(set(...))``, ``",".join(set(...))``): set iteration
  order depends on insertion history and hash seeds.  ``sorted(set(...))``
  is the fix and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    LintRule,
    ModuleInfo,
    RepoIndex,
    qualname_map,
    register_lint_rule,
)
from repro.analysis.lint.findings import Finding

#: Subpackages whose code must be bit-deterministic.  ``repro.service`` and
#: the analysis/energy/report layers may read clocks (timeouts, logs); the
#: simulation core may not.
DETERMINISTIC_PACKAGES = frozenset(
    {"repro.uarch", "repro.core", "repro.memory", "repro.simulation", "repro.workloads"}
)

_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns"}
)
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_ENTROPY = {
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}
_SET_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_lint_rule(
    "determinism",
    description="forbid unseeded RNG, wall clocks, entropy, id()-ordering and "
    "set-iteration order in simulation packages (D1xx)",
)
class DeterminismRule(LintRule):
    name = "determinism"

    def check_module(self, module: ModuleInfo, index: RepoIndex) -> Iterator[Finding]:
        if module.package not in DETERMINISTIC_PACKAGES:
            return
        symbols = qualname_map(module)

        def finding(node: ast.AST, code: str, message: str, detail: str) -> Finding:
            return Finding(
                rule=self.name,
                code=code,
                path=module.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                symbol=symbols.get(id(node), module.module),
                message=message,
                detail=detail,
            )

        for node in ast.walk(module.tree):
            # D101: module-global RNG / unseeded Random ---------------------
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                ):
                    attr = func.attr
                    if attr == "Random":
                        if not node.args and not node.keywords:
                            yield finding(
                                node,
                                "D101",
                                "unseeded random.Random(): pass an explicit "
                                "seed (or accept an injected rng=)",
                                "random.Random",
                            )
                    elif attr == "SystemRandom":
                        yield finding(
                            node,
                            "D101",
                            "random.SystemRandom draws OS entropy and can "
                            "never be reproduced",
                            "random.SystemRandom",
                        )
                    else:
                        yield finding(
                            node,
                            "D101",
                            f"random.{attr}() uses the process-global RNG; "
                            "use a seeded random.Random instance",
                            f"random.{attr}",
                        )
                # D105: id()-keyed ordering ---------------------------------
                for keyword in node.keywords:
                    if (
                        keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id == "id"
                    ):
                        yield finding(
                            node,
                            "D105",
                            "ordering by id() depends on allocation addresses "
                            "and differs run to run",
                            "key=id",
                        )
                # D103/D104: clocks and entropy -----------------------------
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    base, attr = func.value.id, func.attr
                    if base == "time" and attr in _WALL_CLOCK_TIME_ATTRS:
                        yield finding(
                            node,
                            "D103",
                            f"time.{attr}() reads the wall clock; simulation "
                            "state must derive only from its inputs",
                            f"time.{attr}",
                        )
                    elif base in ("datetime", "date") and attr in _WALL_CLOCK_DATETIME_ATTRS:
                        yield finding(
                            node,
                            "D103",
                            f"{base}.{attr}() reads the wall clock",
                            f"{base}.{attr}",
                        )
                    elif (base, attr) in _ENTROPY:
                        yield finding(
                            node,
                            "D104",
                            f"{base}.{attr}() is an entropy source",
                            f"{base}.{attr}",
                        )
                    elif base == "secrets":
                        yield finding(
                            node,
                            "D104",
                            f"secrets.{attr}() is an entropy source",
                            f"secrets.{attr}",
                        )
                # D106: consuming a set in order ----------------------------
                if (
                    isinstance(func, ast.Name)
                    and func.id in _SET_CONSUMERS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield finding(
                        node,
                        "D106",
                        f"{func.id}(set(...)) materialises set iteration "
                        "order; wrap in sorted(...)",
                        f"{func.id}(set)",
                    )
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield finding(
                        node,
                        "D106",
                        "str.join over a set materialises set iteration "
                        "order; wrap in sorted(...)",
                        "join(set)",
                    )
            # D102: from random import <global-RNG function> ----------------
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in ("Random",):
                            yield finding(
                                node,
                                "D102",
                                f"'from random import {alias.name}' aliases "
                                "the process-global RNG; import random.Random "
                                "and seed it instead",
                                f"from-random-import-{alias.name}",
                            )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME_ATTRS:
                            yield finding(
                                node,
                                "D103",
                                f"'from time import {alias.name}' imports a "
                                "wall clock into a deterministic package",
                                f"from-time-import-{alias.name}",
                            )
            # D106: for-loop straight over a set ----------------------------
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield finding(
                        node,
                        "D106",
                        "iterating a set directly; order depends on hashing "
                        "— iterate sorted(...) instead",
                        "for-in-set",
                    )
