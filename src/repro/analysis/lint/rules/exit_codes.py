"""Exit-code taxonomy hygiene: process exits must speak ``repro.errors``.

The whole point of :mod:`repro.errors` is that CI scripts and the service can
dispatch on exit codes.  A stray ``sys.exit(1)`` deep in a subcommand silently
re-overloads the bench-regression code; a ``SystemExit("message")`` exits with
code 1 while *looking* like an error string.  Two codes:

* ``T401`` — ``sys.exit(<nonzero int literal>)`` / ``raise SystemExit(<nonzero
  int literal>)`` anywhere outside :mod:`repro.errors` itself.  Exiting with a
  named constant (``sys.exit(EXIT_BAD_SPEC)``) or a computed status
  (``sys.exit(main())``) is fine — the rule only flags raw literals.
  ``sys.exit(0)`` is allowed but better spelled ``EXIT_OK``.
* ``T402`` — ``sys.exit("message")`` / ``SystemExit("message")``: exits with
  status 1 via stderr side effect, bypassing the taxonomy entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.engine import (
    LintRule,
    ModuleInfo,
    RepoIndex,
    qualname_map,
    register_lint_rule,
)
from repro.analysis.lint.findings import Finding


def _exit_call(node: ast.AST) -> Optional[ast.Call]:
    """Return the Call node when ``node`` is sys.exit(...) / SystemExit(...)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == "SystemExit":
        return node
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "exit"
        and isinstance(func.value, ast.Name)
        and func.value.id == "sys"
    ):
        return node
    return None


@register_lint_rule(
    "exit-codes",
    description="process exits must use repro.errors constants, not raw "
    "literals or message strings (T4xx)",
)
class ExitCodeRule(LintRule):
    name = "exit-codes"

    def check_module(self, module: ModuleInfo, index: RepoIndex) -> Iterator[Finding]:
        if module.module == "repro.errors":
            return
        symbols = qualname_map(module)
        for node in ast.walk(module.tree):
            call = _exit_call(node)
            if call is None or not call.args:
                continue
            arg = call.args[0]
            if not isinstance(arg, ast.Constant):
                continue
            value = arg.value
            if isinstance(value, bool):
                # True/False are ints but never a sane exit status.
                code, message, detail = (
                    "T401",
                    f"exit status {value!r} is a bool; use a repro.errors "
                    "constant",
                    f"literal-{value}",
                )
            elif isinstance(value, int):
                if value == 0:
                    continue  # exit(0) is unambiguous
                code, message, detail = (
                    "T401",
                    f"raw exit status {value}; name it via a repro.errors "
                    "constant so callers can dispatch on it",
                    f"literal-{value}",
                )
            elif isinstance(value, str):
                code, message, detail = (
                    "T402",
                    "SystemExit with a message string exits 1 outside the "
                    "taxonomy; print the message and exit a repro.errors "
                    "constant",
                    "literal-str",
                )
            else:
                continue
            yield Finding(
                rule=self.name,
                code=code,
                path=module.relpath,
                line=call.lineno,
                col=call.col_offset,
                symbol=symbols.get(id(call), module.module),
                message=message,
                detail=detail,
            )
