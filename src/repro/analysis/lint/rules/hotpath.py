"""Hot-path lint: per-cycle code must stay allocation- and indirection-lean.

PR 4's profile showed two recurring costs in the per-cycle loop: attribute
dictionaries on objects allocated millions of times, and re-deriving values
off the frozen config tree (``config.num_sets`` walks a property every call)
when the owning object already captured them in ``__init__``.  Two codes keep
those wins from regressing:

* ``H301`` — a class defined in ``repro.uarch`` or ``repro.memory`` declares
  no ``__slots__``.  Exemptions: dataclasses (the config tree is frozen
  dataclasses, where ``__dict__`` is the serde surface), enums, exceptions,
  and classes that subclass something outside the two packages (slots on a
  subclass of an unslotted base buy nothing).
* ``H302`` — code outside ``__init__``/``__post_init__`` reads a *derived
  property* of a config object through ``self.<cfg>.<prop>`` (e.g.
  ``self.config.num_sets`` inside ``fill()``).  Derived properties are
  discovered from the live config classes, so adding one to
  ``CacheConfig``/``DRAMConfig`` extends the rule automatically.  The fix is
  to capture the value once in ``__init__`` (``self._num_sets``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.lint.engine import (
    LintRule,
    ModuleInfo,
    RepoIndex,
    register_lint_rule,
)
from repro.analysis.lint.findings import Finding

#: Packages whose classes run inside the per-cycle simulation loop.
HOT_PACKAGES = frozenset({"repro.uarch", "repro.memory"})

#: Attribute names under which hot-path objects hold their config.
_CONFIG_ATTRS = frozenset({"config", "cfg"})

#: Base-class name fragments that exempt a class from H301.
_EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning", "Enum", "Protocol")


def derived_config_properties() -> Set[str]:
    """Names of ``@property`` members on the frozen config dataclasses.

    Resolved from the live classes so the rule tracks the code: a new
    ``CacheConfig.ways_log2`` property would be covered without touching the
    linter.
    """
    from repro.memory.cache import CacheConfig
    from repro.memory.dram import DRAMConfig
    from repro.memory.hierarchy import HierarchyConfig
    from repro.uarch.config import CoreConfig

    names: Set[str] = set()
    for cls in (CacheConfig, DRAMConfig, HierarchyConfig, CoreConfig):
        for attr, value in vars(cls).items():
            if isinstance(value, property):
                names.add(attr)
    return names


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(node, ast.Name) and node.id == "dataclass":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "dataclass":
            return True
    return False


def _base_names(cls: ast.ClassDef) -> Iterator[str]:
    for base in cls.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def _slots_exempt(cls: ast.ClassDef, module: ModuleInfo, index: RepoIndex) -> bool:
    if _is_dataclass(cls):
        return True
    for base in _base_names(cls):
        if base.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
        # Subclassing a base we cannot see (stdlib, another package) means we
        # cannot know whether the base is slotted; slots on the subclass alone
        # would not remove __dict__, so don't demand them.
        if not _base_defined_in_hot_packages(base, index):
            return True
    return False


def _base_defined_in_hot_packages(base: str, index: RepoIndex) -> bool:
    for info in index.modules:
        if info.package not in HOT_PACKAGES:
            continue
        for node in ast.iter_child_nodes(info.tree):
            if isinstance(node, ast.ClassDef) and node.name == base:
                return True
    return False


@register_lint_rule(
    "hot-path",
    description="require __slots__ and pre-captured config geometry in "
    "repro.uarch / repro.memory (H3xx)",
)
class HotPathRule(LintRule):
    name = "hot-path"

    def __init__(self) -> None:
        self._derived_props = derived_config_properties()

    def check_module(self, module: ModuleInfo, index: RepoIndex) -> Iterator[Finding]:
        if module.package not in HOT_PACKAGES:
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not _has_slots(cls) and not _slots_exempt(cls, module, index):
                yield Finding(
                    rule=self.name,
                    code="H301",
                    path=module.relpath,
                    line=cls.lineno,
                    col=cls.col_offset,
                    symbol=cls.name,
                    message=f"class {cls.name} in a hot-path package has no "
                    "__slots__; per-cycle objects must not carry __dict__",
                    detail="no-slots",
                )
            yield from self._check_derived_reads(cls, module)

    def _check_derived_reads(
        self, cls: ast.ClassDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__"):
                continue
            for node in ast.walk(method):
                # Match self.<config-attr>.<derived-property>
                if not (
                    isinstance(node, ast.Attribute)
                    and node.attr in self._derived_props
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr in _CONFIG_ATTRS
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                ):
                    continue
                cfg = node.value.attr
                yield Finding(
                    rule=self.name,
                    code="H302",
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=f"{cls.name}.{method.name}",
                    message=(
                        f"self.{cfg}.{node.attr} re-derives frozen-config "
                        f"geometry inside {method.name}(); capture it once in "
                        "__init__"
                    ),
                    detail=f"{cfg}.{node.attr}",
                )
