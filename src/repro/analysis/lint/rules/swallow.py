"""Exception-swallow hygiene in the service layer (W7xx).

The experiment daemon and its fleet are long-running: an exception silently
dropped in :mod:`repro.service` does not crash a CLI run, it wedges a job in
``running`` forever or leaks a lease until timeout — the exact failure class
this repo's robustness tests exist to prevent.  One code:

* ``W701`` — a handler that catches everything (bare ``except:``,
  ``except Exception:``, or ``except BaseException:``) inside
  ``repro.service`` whose body does nothing but ``pass``/``...``.  Broad
  catches are legitimate at documented boundaries (the HTTP layer, the job
  worker) *when they record an outcome*; a silent ``pass`` is never — at
  minimum the handler must log, journal, count, or re-raise.  Narrow catches
  (``except OSError: pass``) are out of scope: dropping a specific,
  anticipated error is a policy decision the author can defend in review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    LintRule,
    ModuleInfo,
    RepoIndex,
    qualname_map,
    register_lint_rule,
)
from repro.analysis.lint.findings import Finding

#: Packages the rule patrols (prefix match on the module path).
SERVICE_PACKAGES = ("repro.service",)

_BROAD = ("Exception", "BaseException")


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception:``, ``except BaseException:``.

    Tuples count when any element is broad; an ``except (OSError,
    Exception):`` swallows everything just the same.
    """
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_is_broad_name(element) for element in node.elts)
    return _is_broad_name(node)


def _is_broad_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in _BROAD


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """Only ``pass`` / ``...`` statements: the exception leaves no trace."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ) and statement.value.value is Ellipsis:
            continue
        return False
    return True


@register_lint_rule(
    "swallow",
    description="service-layer handlers must not silently swallow broad "
    "exceptions (W7xx)",
)
class SwallowRule(LintRule):
    name = "swallow"

    def check_module(self, module: ModuleInfo, index: RepoIndex) -> Iterator[Finding]:
        if not module.module.startswith(SERVICE_PACKAGES):
            return
        symbols = qualname_map(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not (_catches_everything(node) and _body_is_silent(node)):
                continue
            caught = (
                "everything (bare except)"
                if node.type is None
                else ast.unparse(node.type)
            )
            yield Finding(
                rule=self.name,
                code="W701",
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                symbol=symbols.get(id(node), module.module),
                message=f"broad catch of {caught} silently dropped; a "
                "long-running service must log, journal, or re-raise "
                "— a silent pass wedges jobs and leaks leases",
                detail="silent-broad-except",
            )
