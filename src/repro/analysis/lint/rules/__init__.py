"""Built-in lint rules.

Importing this package registers every built-in rule in
:data:`repro.analysis.lint.engine.LINT_REGISTRY`; registration order here is
the default execution/listing order.
"""

from repro.analysis.lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    schema_drift,
    hotpath,
    exit_codes,
    privacy,
    probe_dispatch,
    swallow,
)
