"""API hygiene: no cross-package private-attribute reach-through.

Within a subpackage, touching a sibling's underscore attributes is a
deliberate idiom here (``repro.uarch.core`` walks ``iq._entries`` for speed;
the pair ship and change together).  *Across* packages it is how refactors
break silently: ``repro.core.runahead`` grabbing an OoO-core internal means a
rename inside ``repro.uarch`` compiles clean and explodes at runtime.

The ownership heuristic is name-based, matching how the codebase is actually
layered: an access ``obj._name`` is in-family when ``_name`` is *defined*
somewhere in the accessor's own package (:meth:`RepoIndex.private_names`);
otherwise some other package owns that name and the access is flagged.

* ``A501`` — reading/writing ``obj._name`` (base not ``self``/``cls``) where
  ``_name`` is not defined in the accessor's package.
* ``A502`` — ``from repro.<other>.<mod> import _name``: importing another
  package's private symbol by name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    LintRule,
    ModuleInfo,
    RepoIndex,
    qualname_map,
    register_lint_rule,
)
from repro.analysis.lint.findings import Finding


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.endswith("__")


@register_lint_rule(
    "privacy",
    description="forbid cross-package private-attribute access and private "
    "imports (A5xx)",
)
class PrivacyRule(LintRule):
    name = "privacy"

    def check_module(self, module: ModuleInfo, index: RepoIndex) -> Iterator[Finding]:
        symbols = qualname_map(module)
        own = index.private_names(module.package)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if not _is_private(node.attr):
                    continue
                base = node.value
                if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                    continue
                if node.attr in own:
                    continue
                yield Finding(
                    rule=self.name,
                    code="A501",
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=symbols.get(id(node), module.module),
                    message=(
                        f"private attribute {node.attr!r} is not defined in "
                        f"{module.package}; reaching into another package's "
                        "internals — add a public accessor there instead"
                    ),
                    detail=node.attr,
                )
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                if not source.startswith("repro."):
                    continue
                parts = source.split(".")
                source_package = ".".join(parts[:2])
                if source_package == module.package:
                    continue
                for alias in node.names:
                    if _is_private(alias.name):
                        yield Finding(
                            rule=self.name,
                            code="A502",
                            path=module.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            symbol=symbols.get(id(node), module.module),
                            message=(
                                f"importing private name {alias.name!r} from "
                                f"{source}; export a public name or move the "
                                "shared piece"
                            ),
                            detail=f"{source}.{alias.name}",
                        )
