"""Cache-schema drift gate: dataclass shape changes require a version bump.

``_job_cache_key`` content-addresses results by hashing the serde payload of
the cache-key-visible dataclasses (:data:`repro.analysis.lint.schema.SCHEMA_ROOTS`
and everything nested under them).  Editing a field on any of those classes
changes which cached results a spec maps to — stale hits or silent misses —
unless ``CACHE_SCHEMA_VERSION`` is bumped, which invalidates the cache
wholesale.

This repo-level rule compares the *live* structural fingerprint (derived at
lint time from the imported dataclasses) against the committed golden:

* ``S201`` — the structure drifted but ``CACHE_SCHEMA_VERSION`` did not move:
  the forbidden state.  The finding lists the per-class field diffs.
* ``S202`` — ``CACHE_SCHEMA_VERSION`` was bumped but the golden still records
  the old version: refresh it with ``scripts/capture_schema_fingerprint.py``.
* ``S203`` — the golden file is missing entirely.

The matching happy paths: identical fingerprint + identical version → silent;
bumped version + refreshed golden → silent.
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.analysis.lint.engine import LintRule, RepoIndex, register_lint_rule
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.schema import (
    GOLDEN_RELPATH,
    current_record,
    diff_structures,
)


@register_lint_rule(
    "cache-schema",
    description="fail when cache-key-visible dataclasses drift without a "
    "CACHE_SCHEMA_VERSION bump (S2xx)",
)
class CacheSchemaRule(LintRule):
    name = "cache-schema"

    def check_repo(self, index: RepoIndex) -> Iterator[Finding]:
        golden_path = index.root / GOLDEN_RELPATH
        live = current_record()
        if not golden_path.is_file():
            yield Finding(
                rule=self.name,
                code="S203",
                path=GOLDEN_RELPATH,
                line=1,
                col=0,
                symbol="schema_fingerprint",
                message="schema fingerprint golden is missing; run "
                "scripts/capture_schema_fingerprint.py and commit the result",
                detail="missing-golden",
            )
            return
        stored = json.loads(golden_path.read_text(encoding="utf-8"))
        if stored.get("cache_schema_version") != live["cache_schema_version"]:
            if stored.get("fingerprint") == live["fingerprint"]:
                return  # version bumped defensively with no structural change
            yield Finding(
                rule=self.name,
                code="S202",
                path=GOLDEN_RELPATH,
                line=1,
                col=0,
                symbol="schema_fingerprint",
                message=(
                    "CACHE_SCHEMA_VERSION moved "
                    f"({stored.get('cache_schema_version')} -> "
                    f"{live['cache_schema_version']}) but the golden was not "
                    "refreshed; run scripts/capture_schema_fingerprint.py"
                ),
                detail="stale-golden",
            )
            return
        if stored.get("fingerprint") == live["fingerprint"]:
            return
        diffs = diff_structures(stored.get("classes", {}), live["classes"])
        # One finding per drifted class: reviewable granularity, and each
        # class-level drift has a stable baseline key (not that these should
        # ever be baselined).
        for diff in diffs:
            class_name, _, rest = diff.partition(": ")
            yield Finding(
                rule=self.name,
                code="S201",
                path=GOLDEN_RELPATH,
                line=1,
                col=0,
                symbol=class_name,
                message=(
                    f"cache-key schema drift without a CACHE_SCHEMA_VERSION "
                    f"bump: {diff} — bump CACHE_SCHEMA_VERSION in "
                    "repro/simulation/engine.py, then refresh the golden with "
                    "scripts/capture_schema_fingerprint.py"
                ),
                detail="drift",
            )
        if not diffs:
            # Fingerprint differs but no class-level diff (e.g. a type
            # rendering change): still a drift, report it once.
            yield Finding(
                rule=self.name,
                code="S201",
                path=GOLDEN_RELPATH,
                line=1,
                col=0,
                symbol="schema_fingerprint",
                message="cache-key schema fingerprint drifted without a "
                "CACHE_SCHEMA_VERSION bump",
                detail="drift",
            )
