"""``repro.analysis.lint``: repo-invariant static analysis.

An AST-based linter encoding this repo's non-negotiables as machine-checked
rules: simulation code must be bit-deterministic, cache-key-visible dataclass
changes must bump ``CACHE_SCHEMA_VERSION``, hot-path classes must stay lean,
and the exit-code / privacy / probe-dispatch contracts must hold.  Run it with
``python -m repro lint``; see the README's "Static analysis" section.

Importing this package pulls in the built-in rules (registering them in
:data:`LINT_REGISTRY`).  Nothing in :mod:`repro.simulation` or
:mod:`repro.uarch` imports this package — lint depends on the simulator,
never the reverse.
"""

from repro.analysis.lint.engine import (
    LINT_REGISTRY,
    LintEngine,
    LintRule,
    LintRun,
    ModuleInfo,
    RepoIndex,
    find_repo_root,
    qualname_map,
    register_lint_rule,
)
from repro.analysis.lint.findings import (
    Baseline,
    Finding,
    sort_findings,
    write_baseline,
)
from repro.analysis.lint import rules  # noqa: F401  (registers built-in rules)

__all__ = [
    "Baseline",
    "Finding",
    "LINT_REGISTRY",
    "LintEngine",
    "LintRule",
    "LintRun",
    "ModuleInfo",
    "RepoIndex",
    "find_repo_root",
    "qualname_map",
    "register_lint_rule",
    "sort_findings",
    "write_baseline",
]
