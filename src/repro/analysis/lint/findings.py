"""Findings and the committed-baseline mechanism for ``repro lint``.

A :class:`Finding` is one rule violation at a ``file:line``.  Findings carry a
*stable key* — ``code:path:symbol:detail`` — that deliberately excludes line
and column numbers, so a baseline recorded against one revision keeps
suppressing the same grandfathered finding after unrelated edits move it
around the file.

The :class:`Baseline` is the goldens-style grandfathering mechanism: a
committed JSON file listing the keys of known findings.  ``repro lint`` fails
only on findings whose key is *not* in the baseline; refreshing it is an
explicit act (``repro lint --write-baseline``) that shows up in review as a
diff of ``tests/goldens/lint_baseline.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.serde import JSONSerializable


@dataclass(frozen=True)
class Finding(JSONSerializable):
    """One rule violation, pointing at a specific ``file:line``."""

    #: Registry name of the rule that produced this finding.
    rule: str
    #: Short stable code, e.g. ``D101`` — the first letter groups the family.
    code: str
    #: Repo-relative POSIX path of the offending file.
    path: str
    line: int
    col: int
    #: Dotted context (class/function qualname) the finding sits in, or the
    #: module itself when at top level.
    symbol: str
    message: str
    #: Stable discriminator distinguishing multiple findings of the same code
    #: in the same symbol (e.g. the offending attribute name).  Part of the
    #: baseline key, so it must not contain positions.
    detail: str = ""

    @property
    def key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.code}:{self.path}:{self.symbol}:{self.detail}"

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.message} [{self.rule}]"
        )


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic presentation order: path, then position, then code."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code, f.detail))


@dataclass
class Baseline:
    """A set of grandfathered finding keys loaded from a committed file."""

    path: str = ""
    #: key -> recorded message (the message is informational; only the key
    #: participates in matching).
    entries: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(f"{path}: not a lint baseline file")
        entries: Dict[str, str] = {}
        for entry in data["findings"]:
            entries[entry["key"]] = entry.get("message", "")
        return cls(path=str(path), entries=entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, grandfathered-by-this-baseline)."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if finding.key in self.entries else new).append(finding)
        return new, suppressed

    def unused_keys(self, findings: Sequence[Finding]) -> List[str]:
        """Baseline entries no current finding matches (stale, prunable)."""
        present = {finding.key for finding in findings}
        return sorted(key for key in self.entries if key not in present)


def write_baseline(findings: Sequence[Finding], path: Path) -> int:
    """Write ``findings`` as a baseline file; returns the entry count.

    Entries are keyed and sorted, one per unique key (the same grandfathered
    pattern hit twice in one function collapses to one entry).
    """
    entries: Dict[str, str] = {}
    for finding in sort_findings(findings):
        entries.setdefault(finding.key, finding.message)
    payload = {
        "version": 1,
        "findings": [
            {"key": key, "message": message}
            for key, message in sorted(entries.items())
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
