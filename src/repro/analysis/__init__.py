"""Result analysis and paper-style report formatting."""

from repro.analysis.report import (
    format_energy_figure,
    format_performance_figure,
    format_table,
    format_table1_configuration,
    summarize_comparison,
)

__all__ = [
    "format_energy_figure",
    "format_performance_figure",
    "format_table",
    "format_table1_configuration",
    "summarize_comparison",
]
