"""repro — a reproduction of "Precise Runahead Execution" (Naithani et al., 2019/2020).

The package is organised as:

* :mod:`repro.workloads` — micro-op traces and SPEC-surrogate workload generators;
* :mod:`repro.memory` — cache hierarchy, MSHRs and DRAM timing;
* :mod:`repro.uarch` — the cycle-level out-of-order core;
* :mod:`repro.core` — the paper's contribution: SST, PRDQ, EMQ and the
  runahead controllers (RA, RA-buffer, PRE, PRE+EMQ);
* :mod:`repro.energy` — McPAT/CACTI-like energy accounting;
* :mod:`repro.simulation` — single runs, suite comparisons and derived metrics;
* :mod:`repro.analysis` — paper-style report formatting.

Quickstart::

    from repro import build_core, build_surrogate

    trace = build_surrogate("milc", num_uops=5_000)
    core = build_core(trace, variant="pre")
    stats = core.run()
    print(stats.ipc, stats.runahead_invocations)
"""

from repro.core import (
    VARIANT_LABELS,
    VARIANTS,
    PreciseRunaheadController,
    RunaheadBufferController,
    TraditionalRunaheadController,
    build_controller,
    build_core,
)
from repro.energy import EnergyModel, EnergyReport
from repro.memory import HierarchyConfig, MemoryHierarchy
from repro.registry import (
    PROBE_REGISTRY,
    VARIANT_REGISTRY,
    WORKLOAD_REGISTRY,
    build_workload,
    build_workload_source,
    probe_names,
    register_probe,
    register_variant,
    register_workload,
    variant_names,
    workload_names,
)
from repro.simulation import (
    ComparisonResult,
    ExperimentEngine,
    SimPointRunResult,
    SimulationResult,
    Simulator,
    SweepResult,
    SweepSpec,
    run_comparison,
    run_performance_comparison,
    run_simpoints,
    run_variant,
)
from repro.uarch import CoreConfig, CoreStats, OoOCore
from repro.uarch.probes import Probe
from repro.workloads import (
    FileTraceSource,
    GeneratorSource,
    MaterializedTrace,
    MicroOp,
    Trace,
    TraceSource,
    UopClass,
    WindowedSource,
    as_source,
    build_surrogate,
    surrogate_names,
    surrogate_suite,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "VARIANTS",
    "VARIANT_LABELS",
    "PreciseRunaheadController",
    "RunaheadBufferController",
    "TraditionalRunaheadController",
    "build_controller",
    "build_core",
    "EnergyModel",
    "EnergyReport",
    "HierarchyConfig",
    "MemoryHierarchy",
    "PROBE_REGISTRY",
    "VARIANT_REGISTRY",
    "WORKLOAD_REGISTRY",
    "build_workload",
    "build_workload_source",
    "probe_names",
    "register_probe",
    "register_variant",
    "register_workload",
    "variant_names",
    "workload_names",
    "ComparisonResult",
    "ExperimentEngine",
    "SimPointRunResult",
    "SimulationResult",
    "Simulator",
    "SweepResult",
    "SweepSpec",
    "run_comparison",
    "run_performance_comparison",
    "run_simpoints",
    "run_variant",
    "CoreConfig",
    "CoreStats",
    "OoOCore",
    "Probe",
    "FileTraceSource",
    "GeneratorSource",
    "MaterializedTrace",
    "MicroOp",
    "Trace",
    "TraceSource",
    "UopClass",
    "WindowedSource",
    "as_source",
    "build_surrogate",
    "surrogate_names",
    "surrogate_suite",
]
