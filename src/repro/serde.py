"""JSON serialisation for the repro dataclasses.

Every result and configuration object the experiment engine persists —
:class:`~repro.uarch.config.CoreConfig`,
:class:`~repro.memory.hierarchy.HierarchyConfig`,
:class:`~repro.uarch.stats.CoreStats`,
:class:`~repro.energy.model.EnergyReport`,
:class:`~repro.simulation.simulator.SimulationResult` and
:class:`~repro.simulation.experiment.ComparisonResult` — is a (possibly
nested) dataclass.  Rather than hand-writing one encoder/decoder pair per
class, this module walks dataclass fields and their type hints generically:

* :func:`to_jsonable` lowers a dataclass tree to plain dicts, lists, strings
  and numbers (enums become their ``value``), i.e. something ``json.dumps``
  accepts directly;
* :func:`from_jsonable` rebuilds the typed object tree from that
  representation, dispatching on the declared field types (``Optional``,
  ``List``/``Sequence``, ``Tuple``, ``Dict``, enums and nested dataclasses).

Classes opt in by inheriting :class:`JSONSerializable`, which adds the
``to_dict``/``from_dict``/``to_json``/``from_json`` quartet.  Round-tripping
is exact: ints stay ints and floats survive ``repr`` round-trips, so a result
loaded from the on-disk cache compares equal to the freshly simulated one.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import enum
import json
import typing
from typing import Any, Dict, Type, TypeVar, Union

T = TypeVar("T")

#: Per-class cache of resolved field type hints (``get_type_hints`` is slow).
_HINT_CACHE: Dict[type, Dict[str, Any]] = {}


def _field_hints(cls: type) -> Dict[str, Any]:
    if cls not in _HINT_CACHE:
        _HINT_CACHE[cls] = typing.get_type_hints(cls)
    return _HINT_CACHE[cls]


def to_jsonable(value: Any) -> Any:
    """Lower ``value`` (dataclasses, enums, containers) to JSON-compatible types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {_encode_key(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


def from_jsonable(hint: Any, data: Any, strict: bool = False) -> Any:
    """Rebuild a typed value from :func:`to_jsonable` output, guided by ``hint``.

    With ``strict=True``, dictionaries feeding dataclasses may not carry keys
    the dataclass does not declare — unknown keys raise :class:`ValueError`
    instead of being silently dropped.  The experiment service uses this to
    turn a typo'd field in a submitted document into a clean 400 rather than
    accepting (and mis-running) a spec the author never wrote.
    """
    if hint is Any or hint is None:
        return data
    origin = typing.get_origin(hint)
    if origin is Union:  # Optional[X] and general unions
        args = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        if data is None:
            return None
        if len(args) == 1:
            return from_jsonable(args[0], data, strict)
        return data
    sequence_origins = (
        list,
        tuple,
        collections.abc.Sequence,
        collections.abc.MutableSequence,
    )
    if origin in sequence_origins or (origin is None and hint in (list, tuple)):
        args = typing.get_args(hint)
        if (origin is tuple or hint is tuple) and args and args[-1] is not Ellipsis:
            return tuple(
                from_jsonable(arg, item, strict) for arg, item in zip(args, data)
            )
        item_hint = args[0] if args else Any
        items = [from_jsonable(item_hint, item, strict) for item in data]
        return tuple(items) if origin is tuple or hint is tuple else items
    mapping_origins = (dict, collections.abc.Mapping, collections.abc.MutableMapping)
    if origin in mapping_origins or (origin is None and hint is dict):
        args = typing.get_args(hint)
        key_hint = args[0] if len(args) == 2 else Any
        value_hint = args[1] if len(args) == 2 else Any
        return {
            _decode_key(key_hint, key): from_jsonable(value_hint, item, strict)
            for key, item in data.items()
        }
    if isinstance(hint, type) and issubclass(hint, enum.Enum):
        return hint(data)
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        return _dataclass_from_jsonable(hint, data, strict)
    return data


def _encode_key(key: Any) -> str:
    """Stringify a dict key the way :func:`_decode_key` can undo."""
    if isinstance(key, enum.Enum):
        return str(key.value)
    return str(key)


def _decode_key(hint: Any, key: str) -> Any:
    """Undo the key stringification JSON forces on non-string dict keys."""
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    if isinstance(hint, type) and issubclass(hint, enum.Enum):
        try:
            return hint(key)
        except ValueError:
            return hint(int(key))  # int-valued enums stringify as digits
    return key


def _dataclass_from_jsonable(cls: Type[T], data: Any, strict: bool = False) -> T:
    if not isinstance(data, dict):
        raise TypeError(
            f"cannot rebuild {cls.__name__} from {type(data).__name__}; expected a dict"
        )
    if strict:
        known = {field.name for field in dataclasses.fields(cls) if field.init}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown field(s) {', '.join(map(repr, unknown))} for "
                f"{cls.__name__}; valid fields: {', '.join(sorted(known))}"
            )
    hints = _field_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        if not field.init or field.name not in data:
            continue
        kwargs[field.name] = from_jsonable(
            hints.get(field.name, Any), data[field.name], strict
        )
    return cls(**kwargs)


class JSONSerializable:
    """Mixin adding a JSON round-trip to a dataclass.

    ``from_dict`` accepts the output of ``to_dict`` (or any dict with the
    same shape, e.g. parsed from a cache file) and rebuilds a fully typed
    instance, recursing into nested dataclasses, lists and mappings.
    """

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-compatible dict representation of this object."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls: Type[T], data: Dict[str, Any], strict: bool = False) -> T:
        """Rebuild an instance from :meth:`to_dict` output.

        ``strict=True`` rejects unknown keys anywhere in the tree (see
        :func:`from_jsonable`) — the contract for externally submitted
        documents, where a silently dropped typo means running the wrong
        experiment.
        """
        return _dataclass_from_jsonable(cls, data, strict)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls: Type[T], text: str) -> T:
        """Rebuild an instance from a JSON string."""
        return cls.from_dict(json.loads(text))


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used for content-hash cache keys."""
    return json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))
