"""Micro-op and trace definitions.

The simulator is trace driven: a :class:`Trace` is the *dynamic* stream of
micro-ops a program executes, in program order.  Each :class:`MicroOp` carries
everything the timing model needs — program counter, operation class, source
and destination architectural registers, the effective memory address for
loads/stores, and branch direction/target for branches.

Register name space
-------------------
The paper's core uses a 64-entry Register Alias Table (Section 3.6), i.e. 64
architectural registers.  We split the space in two halves:

* integer architectural registers: ``0 .. 31``
* floating-point architectural registers: ``32 .. 63`` (``FP_REG_BASE`` + i)

A destination of ``None`` means the micro-op produces no register value
(stores, branches, nops).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

#: Number of architectural registers visible to the RAT (Section 3.6: 64-entry RAT).
NUM_ARCH_REGS = 64

#: First architectural register index that names a floating-point register.
FP_REG_BASE = 32

#: Convenience alias: architectural register identifiers are plain ints.
ArchReg = int


class UopClass(enum.Enum):
    """Operation class of a micro-op.

    The class determines which functional unit executes the micro-op and its
    execution latency (see :mod:`repro.uarch.isa`), and whether it touches the
    memory hierarchy.
    """

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FALU = "falu"
    FMUL = "fmul"
    FDIV = "fdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        """Whether micro-ops of this class access the data memory hierarchy."""
        return self in (UopClass.LOAD, UopClass.STORE)

    @property
    def is_fp(self) -> bool:
        """Whether micro-ops of this class execute on floating-point units."""
        return self in (UopClass.FALU, UopClass.FMUL, UopClass.FDIV)


def is_fp_reg(reg: ArchReg) -> bool:
    """Return True if ``reg`` names a floating-point architectural register."""
    return reg >= FP_REG_BASE


class MicroOp:
    """A single dynamic micro-op.

    A ``__slots__`` value class rather than a dataclass: the simulator
    constructs one per dynamic micro-op and reads its fields in every
    pipeline stage, so construction must not pay ``object.__setattr__``
    (the frozen-dataclass tax) and field reads must not pay property
    dispatch.  ``is_load``/``is_store``/``is_branch``/``is_memory`` are
    precomputed plain attributes for the same reason.  Instances are
    immutable by convention — nothing in the simulator mutates one after
    construction.

    Attributes
    ----------
    pc:
        Program counter (instruction address) of the micro-op.  Static
        instructions that execute repeatedly (loops) share the same ``pc``;
        the Stalling Slice Table is indexed by this field.
    uop_class:
        Operation class; see :class:`UopClass`.
    srcs:
        Architectural source registers read by the micro-op.
    dst:
        Architectural destination register written by the micro-op, or
        ``None`` for stores, branches and nops.
    mem_addr:
        Effective byte address for loads/stores, ``None`` otherwise.
    mem_size:
        Access size in bytes for loads/stores.
    branch_taken:
        For branches, whether the branch is taken in this dynamic instance.
    branch_target:
        For branches, the target program counter.
    """

    __slots__ = (
        "pc",
        "uop_class",
        "srcs",
        "dst",
        "mem_addr",
        "mem_size",
        "branch_taken",
        "branch_target",
        "is_load",
        "is_store",
        "is_branch",
        "is_memory",
    )

    def __init__(
        self,
        pc: int,
        uop_class: UopClass,
        srcs: Tuple[ArchReg, ...] = (),
        dst: Optional[ArchReg] = None,
        mem_addr: Optional[int] = None,
        mem_size: int = 8,
        branch_taken: bool = False,
        branch_target: Optional[int] = None,
    ) -> None:
        is_load = uop_class is UopClass.LOAD
        is_store = uop_class is UopClass.STORE
        is_memory = is_load or is_store
        is_branch = uop_class is UopClass.BRANCH
        if is_memory:
            if mem_addr is None:
                raise ValueError(
                    f"{uop_class.value} micro-op at pc={pc:#x} requires mem_addr"
                )
        elif mem_addr is not None:
            raise ValueError(
                f"{uop_class.value} micro-op at pc={pc:#x} must not carry mem_addr"
            )
        if dst is not None:
            if is_store:
                raise ValueError("store micro-ops do not write a destination register")
            if is_branch:
                raise ValueError("branch micro-ops do not write a destination register")
            if not 0 <= dst < NUM_ARCH_REGS:
                raise ValueError(f"destination register {dst} out of range")
        for reg in srcs:
            if not 0 <= reg < NUM_ARCH_REGS:
                raise ValueError(f"source register {reg} out of range [0, {NUM_ARCH_REGS})")
        if mem_size <= 0:
            raise ValueError("mem_size must be positive")
        self.pc = pc
        self.uop_class = uop_class
        self.srcs = srcs
        self.dst = dst
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.branch_taken = branch_taken
        self.branch_target = branch_target
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.is_memory = is_memory

    def _key(self) -> Tuple:
        return (
            self.pc,
            self.uop_class,
            self.srcs,
            self.dst,
            self.mem_addr,
            self.mem_size,
            self.branch_taken,
            self.branch_target,
        )

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, MicroOp):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MicroOp(pc={self.pc:#x}, uop_class={self.uop_class!r}, "
            f"srcs={self.srcs!r}, dst={self.dst!r}, mem_addr={self.mem_addr!r}, "
            f"mem_size={self.mem_size!r}, branch_taken={self.branch_taken!r}, "
            f"branch_target={self.branch_target!r})"
        )

    @property
    def writes_fp(self) -> bool:
        """True when the destination is a floating-point register."""
        return self.dst is not None and is_fp_reg(self.dst)

    @property
    def writes_int(self) -> bool:
        """True when the destination is an integer register."""
        return self.dst is not None and not is_fp_reg(self.dst)


@dataclass
class TraceStats:
    """Static summary of a trace's composition."""

    num_uops: int = 0
    num_loads: int = 0
    num_stores: int = 0
    num_branches: int = 0
    num_int_ops: int = 0
    num_fp_ops: int = 0
    unique_pcs: int = 0
    unique_load_pcs: int = 0
    footprint_bytes: int = 0

    @property
    def load_fraction(self) -> float:
        """Fraction of micro-ops that are loads."""
        return self.num_loads / self.num_uops if self.num_uops else 0.0

    @property
    def memory_fraction(self) -> float:
        """Fraction of micro-ops that are loads or stores."""
        if not self.num_uops:
            return 0.0
        return (self.num_loads + self.num_stores) / self.num_uops


def compute_trace_stats(uops: Iterable[MicroOp]) -> TraceStats:
    """Composition summary of any micro-op stream, in one pass.

    Shared by :meth:`Trace.stats` and the streaming sources
    (:func:`repro.workloads.source.streaming_trace_stats`), so both report
    identical numbers from one classification rule set.
    """
    stats = TraceStats()
    pcs = set()
    load_pcs = set()
    lines = set()
    for uop in uops:
        stats.num_uops += 1
        pcs.add(uop.pc)
        if uop.is_load:
            stats.num_loads += 1
            load_pcs.add(uop.pc)
        elif uop.is_store:
            stats.num_stores += 1
        elif uop.is_branch:
            stats.num_branches += 1
        elif uop.uop_class.is_fp:
            stats.num_fp_ops += 1
        elif uop.uop_class is not UopClass.NOP:
            stats.num_int_ops += 1
        if uop.mem_addr is not None:
            lines.add(uop.mem_addr // 64)
    stats.unique_pcs = len(pcs)
    stats.unique_load_pcs = len(load_pcs)
    stats.footprint_bytes = len(lines) * 64
    return stats


class Trace:
    """A dynamic micro-op stream.

    A trace behaves like an immutable sequence of :class:`MicroOp` objects and
    carries a human-readable name used in experiment reports.
    """

    def __init__(self, uops: Iterable[MicroOp], name: str = "anonymous") -> None:
        self._uops: List[MicroOp] = list(uops)
        self.name = name

    def __len__(self) -> int:
        return len(self._uops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self._uops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._uops[index], name=f"{self.name}[{index.start}:{index.stop}]")
        return self._uops[index]

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, uops={len(self._uops)})"

    @property
    def uops(self) -> Sequence[MicroOp]:
        """The underlying micro-op sequence (read-only view)."""
        return tuple(self._uops)

    def stats(self) -> TraceStats:
        """Compute a static composition summary of the trace."""
        return compute_trace_stats(self._uops)

    def concat(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Return a new trace that is this trace followed by ``other``."""
        return Trace(
            list(self._uops) + list(other._uops),
            name=name or f"{self.name}+{other.name}",
        )

    def repeat(self, times: int, name: Optional[str] = None) -> "Trace":
        """Return a new trace with this trace's micro-ops repeated ``times`` times."""
        if times < 0:
            raise ValueError("times must be non-negative")
        return Trace(list(self._uops) * times, name=name or f"{self.name}x{times}")

    def load_addresses(self) -> List[int]:
        """Return the effective addresses of all loads, in program order."""
        return [uop.mem_addr for uop in self._uops if uop.is_load]

    def pcs_of_class(self, uop_class: UopClass) -> List[int]:
        """Return the distinct PCs of micro-ops with the given class, in first-seen order."""
        seen = {}
        for uop in self._uops:
            if uop.uop_class is uop_class and uop.pc not in seen:
                seen[uop.pc] = None
        return list(seen)


# ------------------------------------------------------- micro-op constructors
#
# Free functions shared by :class:`TraceBuilder` (eager trace construction) and
# the streaming workload generators (see :mod:`repro.workloads.generators`),
# so both paths build byte-for-byte identical micro-ops.


def uop_ialu(pc: int, dst: ArchReg, srcs: Sequence[ArchReg] = ()) -> MicroOp:
    """Construct an integer ALU micro-op."""
    return MicroOp(pc=pc, uop_class=UopClass.IALU, srcs=tuple(srcs), dst=dst)


def uop_falu(pc: int, dst: ArchReg, srcs: Sequence[ArchReg] = ()) -> MicroOp:
    """Construct a floating-point ALU micro-op."""
    return MicroOp(pc=pc, uop_class=UopClass.FALU, srcs=tuple(srcs), dst=dst)


def uop_load(pc: int, dst: ArchReg, addr: int, srcs: Sequence[ArchReg] = ()) -> MicroOp:
    """Construct a load micro-op reading ``addr``."""
    return MicroOp(pc=pc, uop_class=UopClass.LOAD, srcs=tuple(srcs), dst=dst, mem_addr=addr)


def uop_store(pc: int, addr: int, srcs: Sequence[ArchReg] = ()) -> MicroOp:
    """Construct a store micro-op writing ``addr``."""
    return MicroOp(pc=pc, uop_class=UopClass.STORE, srcs=tuple(srcs), mem_addr=addr)


def uop_branch(pc: int, taken: bool, target: int, srcs: Sequence[ArchReg] = ()) -> MicroOp:
    """Construct a conditional branch micro-op."""
    return MicroOp(
        pc=pc,
        uop_class=UopClass.BRANCH,
        srcs=tuple(srcs),
        branch_taken=taken,
        branch_target=target,
    )


class PCAllocator:
    """Sequential static-program-counter allocator (4 bytes per instruction).

    Factored out of :class:`TraceBuilder` so the streaming generators can lay
    out static code identically to the eager builder.
    """

    __slots__ = ("_next_pc",)

    def __init__(self, base_pc: int = 0x400000) -> None:
        self._next_pc = base_pc

    def new_pc(self) -> int:
        """Allocate a fresh static program counter."""
        pc = self._next_pc
        self._next_pc += 4
        return pc


@dataclass
class TraceBuilder:
    """Helper for constructing traces programmatically.

    The builder assigns program counters automatically (4 bytes per static
    instruction) and validates register usage.  Workload generators use it to
    express loop bodies naturally: define the static PCs once and emit dynamic
    instances per iteration.
    """

    name: str = "built"
    base_pc: int = 0x400000
    _uops: List[MicroOp] = field(default_factory=list)
    _next_pc: int = field(default=-1)

    def __post_init__(self) -> None:
        if self._next_pc < 0:
            self._next_pc = self.base_pc

    def new_pc(self) -> int:
        """Allocate a fresh static program counter."""
        pc = self._next_pc
        self._next_pc += 4
        return pc

    def emit(self, uop: MicroOp) -> MicroOp:
        """Append a micro-op to the trace being built."""
        self._uops.append(uop)
        return uop

    def ialu(self, pc: int, dst: ArchReg, srcs: Sequence[ArchReg] = ()) -> MicroOp:
        """Emit an integer ALU micro-op."""
        return self.emit(uop_ialu(pc, dst, srcs))

    def falu(self, pc: int, dst: ArchReg, srcs: Sequence[ArchReg] = ()) -> MicroOp:
        """Emit a floating-point ALU micro-op."""
        return self.emit(uop_falu(pc, dst, srcs))

    def load(self, pc: int, dst: ArchReg, addr: int, srcs: Sequence[ArchReg] = ()) -> MicroOp:
        """Emit a load micro-op reading ``addr``."""
        return self.emit(uop_load(pc, dst, addr, srcs))

    def store(self, pc: int, addr: int, srcs: Sequence[ArchReg] = ()) -> MicroOp:
        """Emit a store micro-op writing ``addr``."""
        return self.emit(uop_store(pc, addr, srcs))

    def branch(self, pc: int, taken: bool, target: int, srcs: Sequence[ArchReg] = ()) -> MicroOp:
        """Emit a conditional branch micro-op."""
        return self.emit(uop_branch(pc, taken, target, srcs))

    def build(self) -> Trace:
        """Finalize and return the built trace."""
        return Trace(self._uops, name=self.name)
