"""Workload substrate: micro-op traces and synthetic SPEC-surrogate generators.

The paper evaluates PRE on memory-intensive SPEC CPU2006 benchmarks simulated
with 1B-instruction SimPoints on Sniper.  Neither the benchmarks nor traces of
them are available here, so this package provides deterministic synthetic
workload generators that reproduce the memory behaviours the evaluation relies
on (pointer chasing, streaming with a single stalling slice, multi-slice
irregular access, and compute/memory mixes), plus a SimPoint-like sampler.
See DESIGN.md section 2 for the substitution rationale.
"""

from repro.workloads.trace import (
    ArchReg,
    MicroOp,
    Trace,
    TraceStats,
    UopClass,
    FP_REG_BASE,
    NUM_ARCH_REGS,
)
from repro.workloads.source import (
    FileTraceSource,
    GeneratorSource,
    MaterializedTrace,
    TraceSource,
    WindowedSource,
    as_source,
    read_trace_header,
    streaming_trace_stats,
    trace_file_digest,
    write_trace_file,
)
from repro.workloads.generators import (
    WorkloadSpec,
    compute_kernel,
    linked_list_chase,
    mixed_compute_memory,
    multi_slice_kernel,
    random_access_kernel,
    strided_stream,
)
from repro.workloads.spec_surrogates import (
    SPEC_SURROGATES,
    SurrogateBenchmark,
    build_surrogate,
    surrogate_names,
    surrogate_suite,
)
from repro.workloads.simpoint import SimPointInterval, SimPointSampler, sample_trace

__all__ = [
    "ArchReg",
    "MicroOp",
    "Trace",
    "TraceStats",
    "UopClass",
    "FP_REG_BASE",
    "NUM_ARCH_REGS",
    "FileTraceSource",
    "GeneratorSource",
    "MaterializedTrace",
    "TraceSource",
    "WindowedSource",
    "as_source",
    "read_trace_header",
    "streaming_trace_stats",
    "trace_file_digest",
    "write_trace_file",
    "WorkloadSpec",
    "compute_kernel",
    "linked_list_chase",
    "mixed_compute_memory",
    "multi_slice_kernel",
    "random_access_kernel",
    "strided_stream",
    "SPEC_SURROGATES",
    "SurrogateBenchmark",
    "build_surrogate",
    "surrogate_names",
    "surrogate_suite",
    "SimPointInterval",
    "SimPointSampler",
    "sample_trace",
]
