"""Named SPEC CPU2006 surrogate workloads.

The paper (following the runahead-buffer study it compares against) evaluates
on the memory-intensive subset of SPEC CPU2006 using 1B-instruction SimPoints.
Those binaries and traces are unavailable here, so each benchmark is replaced
by a deterministic synthetic surrogate whose *memory behaviour class* matches
the published characterisation of that benchmark:

* ``mcf``/``omnetpp``   — dependent pointer chasing (little exploitable MLP),
* ``libquantum``/``lbm`` — regular streaming with one dominant stalling slice,
* ``milc``/``soplex``/``GemsFDTD``/``leslie3d`` — several independent slices,
* ``sphinx3``/``zeusmp`` — compute/memory mixes,
* ``bwaves``/``cactusADM`` — indexed gathers over large arrays.

The per-surrogate parameters (number of slices, footprint, compute density)
control where each one falls on the spectrum the paper's Figure 2 spans; see
DESIGN.md section 2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.registry import WORKLOAD_REGISTRY, build_workload
from repro.workloads.generators import (
    WorkloadSpec,
    linked_list_chase,
    mixed_compute_memory,
    multi_slice_kernel,
    random_access_kernel,
    strided_stream,
)
from repro.workloads.source import TraceSource
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SurrogateBenchmark:
    """A SPEC CPU2006 benchmark and the surrogate workload standing in for it."""

    spec_name: str
    behaviour: str
    spec: WorkloadSpec

    def build(self, num_uops: Optional[int] = None) -> Trace:
        """Build the surrogate trace, optionally overriding its length."""
        overrides = {}
        if num_uops is not None:
            overrides["num_uops"] = num_uops
        trace = self.spec.build(**overrides)
        trace.name = self.spec_name
        return trace

    def build_source(self, num_uops: Optional[int] = None) -> TraceSource:
        """A lazy :class:`TraceSource` for the surrogate (micro-ops on demand).

        Yields the identical micro-op stream as :meth:`build` without
        materialising it, so arbitrarily long surrogate traces can drive the
        simulator at O(window) memory.
        """
        overrides = {}
        if num_uops is not None:
            overrides["num_uops"] = num_uops
        source = self.spec.source(**overrides)
        source.name = self.spec_name
        return source


def _make_suite() -> Dict[str, SurrogateBenchmark]:
    suite: Dict[str, SurrogateBenchmark] = {}

    def add(spec_name: str, behaviour: str, spec: WorkloadSpec) -> None:
        bench = SurrogateBenchmark(spec_name=spec_name, behaviour=behaviour, spec=spec)
        suite[spec_name] = bench
        WORKLOAD_REGISTRY.register(
            spec_name,
            bench.build,
            description=behaviour,
            replace=True,
            suite="spec2006",
            # Streaming construction path for the same micro-op sequence.
            source_factory=bench.build_source,
            # Identifies the generated trace content for the result cache: a
            # parameter change invalidates cached cells even though the
            # workload keeps its name.
            cache_token={
                "generator": spec.generator.__name__,
                "params": dict(spec.params),
            },
        )

    add(
        "mcf",
        "dependent pointer chasing over a multi-MB graph",
        WorkloadSpec(
            name="mcf",
            generator=linked_list_chase,
            params={"num_nodes": 96_000, "work_per_node": 6, "seed": 11},
        ),
    )
    add(
        "omnetpp",
        "pointer chasing with more per-node work",
        WorkloadSpec(
            name="omnetpp",
            generator=linked_list_chase,
            params={"num_nodes": 48_000, "work_per_node": 7, "seed": 12},
        ),
    )
    add(
        "libquantum",
        "regular streaming; a single stalling slice covers all misses",
        WorkloadSpec(
            name="libquantum",
            generator=strided_stream,
            params={"element_bytes": 8, "work_per_element": 5, "region_bytes": 16 * 1024 * 1024},
        ),
    )
    add(
        "lbm",
        "streaming with larger elements and heavier FP work",
        WorkloadSpec(
            name="lbm",
            generator=strided_stream,
            params={"element_bytes": 8, "work_per_element": 8, "region_bytes": 24 * 1024 * 1024},
        ),
    )
    add(
        "milc",
        "four independent strided slices per iteration",
        WorkloadSpec(
            name="milc",
            generator=multi_slice_kernel,
            params={
                "num_slices": 8,
                "work_per_iteration": 24,
                "element_bytes": 8,
                "seed": 13,
            },
        ),
    )
    add(
        "soplex",
        "three independent slices with longer address chains",
        WorkloadSpec(
            name="soplex",
            generator=multi_slice_kernel,
            params={
                "num_slices": 6,
                "slice_depth": 3,
                "work_per_iteration": 20,
                "element_bytes": 8,
                "seed": 14,
            },
        ),
    )
    add(
        "GemsFDTD",
        "six independent slices, large footprint",
        WorkloadSpec(
            name="GemsFDTD",
            generator=multi_slice_kernel,
            params={
                "num_slices": 10,
                "work_per_iteration": 30,
                "element_bytes": 8,
                "region_bytes": 32 * 1024 * 1024,
                "seed": 15,
            },
        ),
    )
    add(
        "leslie3d",
        "two slices with moderate compute",
        WorkloadSpec(
            name="leslie3d",
            generator=multi_slice_kernel,
            params={
                "num_slices": 4,
                "work_per_iteration": 18,
                "element_bytes": 8,
                "seed": 16,
            },
        ),
    )
    add(
        "bwaves",
        "indexed gather with cache-resident index array",
        WorkloadSpec(
            name="bwaves",
            generator=random_access_kernel,
            params={
                "data_region_bytes": 32 * 1024 * 1024,
                "miss_fraction": 0.35,
                "work_per_iteration": 6,
                "seed": 17,
            },
        ),
    )
    add(
        "cactusADM",
        "indexed gather with heavier per-element work",
        WorkloadSpec(
            name="cactusADM",
            generator=random_access_kernel,
            params={
                "data_region_bytes": 24 * 1024 * 1024,
                "miss_fraction": 0.25,
                "work_per_iteration": 10,
                "seed": 18,
            },
        ),
    )
    add(
        "sphinx3",
        "compute-heavy loop with periodic misses and stores",
        WorkloadSpec(
            name="sphinx3",
            generator=mixed_compute_memory,
            params={
                "memory_interval": 18,
                "num_streams": 2,
                "element_bytes": 8,
                "store_fraction": 0.2,
                "seed": 19,
            },
        ),
    )
    add(
        "zeusmp",
        "compute/memory mix with more streams and stores",
        WorkloadSpec(
            name="zeusmp",
            generator=mixed_compute_memory,
            params={
                "memory_interval": 15,
                "num_streams": 3,
                "element_bytes": 8,
                "store_fraction": 0.35,
                "seed": 20,
            },
        ),
    )
    return suite


#: The full surrogate suite, keyed by SPEC benchmark name.  Each benchmark is
#: also registered in :data:`repro.registry.WORKLOAD_REGISTRY` under the same
#: name, which is how the experiment engine and the CLI reach it.
SPEC_SURROGATES: Dict[str, SurrogateBenchmark] = _make_suite()


def surrogate_names() -> List[str]:
    """Return the names of all surrogate benchmarks in a stable order."""
    return list(SPEC_SURROGATES)


def build_surrogate(name: str, num_uops: Optional[int] = None) -> Trace:
    """Build the trace for the workload ``name`` (surrogate or registered).

    Any workload in :data:`repro.registry.WORKLOAD_REGISTRY` is accepted, so
    custom workloads registered with
    :func:`repro.registry.register_workload` build through the same path as
    the SPEC surrogates.

    Raises
    ------
    KeyError
        If ``name`` is not a registered workload.
    """
    return build_workload(name, num_uops=num_uops)


def surrogate_suite(
    names: Optional[Iterable[str]] = None, num_uops: Optional[int] = None
) -> List[Trace]:
    """Build a list of surrogate traces (the whole suite by default)."""
    selected = list(names) if names is not None else surrogate_names()
    return [build_surrogate(name, num_uops=num_uops) for name in selected]
