"""Streaming trace sources.

The simulator used to consume an eagerly-materialised :class:`~repro.workloads.trace.Trace`
(an in-memory list of micro-ops), which caps workload size at RAM.  This
module defines the :class:`TraceSource` protocol the core consumes instead —
lazy iteration with a known-or-unknown length and reopen support for
multi-variant runs — plus four implementations:

* :class:`MaterializedTrace` — wraps an in-memory :class:`Trace`; the
  backward-compatible path with full random access (bit-identical behaviour
  to passing the ``Trace`` directly);
* :class:`GeneratorSource` — produces micro-ops on demand from a workload
  generator function, so peak memory stays proportional to the core's
  in-flight window rather than the trace length;
* :class:`FileTraceSource` — replays a compressed record file written by
  :func:`write_trace_file` (the ``python -m repro trace record|info|replay``
  CLI surface);
* :class:`WindowedSource` — restricts any source to one ``[start, end)``
  interval, which is how SimPoint intervals finally drive execution (see
  :func:`repro.simulation.simulator.run_simpoints`).

The core never indexes a source directly; it reads through a *cursor*
(:meth:`TraceSource.cursor`) that supports the bounded rewind pipeline
flushes need (fetch restarts at the oldest uncommitted micro-op) while
retaining only the micro-ops between the commit point and the fetch point.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import struct
import tempfile
from collections import deque
from itertools import islice
from pathlib import Path
from typing import Callable, Deque, Dict, Iterable, Iterator, Optional, Union

from repro.workloads.trace import (
    MicroOp,
    Trace,
    TraceStats,
    UopClass,
    compute_trace_stats,
)

#: Stable on-disk ordering of :class:`UopClass` members (definition order).
_CLASS_LIST = list(UopClass)
_CLASS_INDEX = {uop_class: index for index, uop_class in enumerate(_CLASS_LIST)}


# ------------------------------------------------------------------- protocol


class TraceSource:
    """A reopenable stream of micro-ops.

    Subclasses implement :meth:`open` (a *fresh* iterator over the full
    stream — calling it again restarts from the beginning, which is how one
    source drives several variant runs) and may override :attr:`length` when
    the micro-op count is known up front.  ``name`` identifies the workload in
    experiment reports, exactly like :attr:`Trace.name`.
    """

    name: str = "anonymous"

    def open(self) -> Iterator[MicroOp]:
        """Return a fresh iterator over the full micro-op stream."""
        raise NotImplementedError

    def open_at(self, start: int) -> Iterator[MicroOp]:
        """A fresh iterator positioned at micro-op index ``start``.

        The default generates and discards the prefix; sources with cheaper
        positioning (in-memory slicing, record-level skipping in trace files)
        override this — it is the hot path of sharded replay, where every
        shard's prefix is skipped, not simulated.
        """
        iterator = self.open()
        for _ in range(start):
            try:
                next(iterator)
            except StopIteration:
                break
        return iterator

    def __iter__(self) -> Iterator[MicroOp]:
        return self.open()

    @property
    def length(self) -> Optional[int]:
        """Number of micro-ops in the stream, or ``None`` when unknown."""
        return None

    def cursor(self) -> "StreamingCursor":
        """A windowed random-access reader over this source (one simulation's view)."""
        return StreamingCursor(self)

    def window(self, start: int, end: int, name: Optional[str] = None) -> "WindowedSource":
        """A view of this source restricted to ``[start, end)``.

        Convenience constructor for :class:`WindowedSource`, used by the
        SimPoint and shard execution paths.
        """
        return WindowedSource(self, start, end, name=name)

    def materialize(self) -> Trace:
        """Fully read the stream into an in-memory :class:`Trace`."""
        return Trace(self.open(), name=self.name)

    def materialized(self) -> "MaterializedTrace":
        """A random-access source backed by the fully-read stream."""
        return MaterializedTrace(self.materialize())

    def __repr__(self) -> str:
        length = self.length
        shown = length if length is not None else "?"
        return f"{type(self).__name__}(name={self.name!r}, uops={shown})"


def as_source(trace_or_source: Union[Trace, TraceSource]) -> TraceSource:
    """Adapt a :class:`Trace` (or pass through a :class:`TraceSource`)."""
    if isinstance(trace_or_source, TraceSource):
        return trace_or_source
    if isinstance(trace_or_source, Trace):
        return MaterializedTrace(trace_or_source)
    raise TypeError(
        f"expected a Trace or TraceSource, got {type(trace_or_source).__name__}"
    )


# -------------------------------------------------------------------- cursors


class StreamingCursor:
    """Bounded-window random access over a streaming :class:`TraceSource`.

    The simulator fetches mostly sequentially but must re-fetch after a
    pipeline flush (runahead exit restarts at the stalling load).  The cursor
    buffers every micro-op between a *trim floor* (the oldest index that can
    still be re-fetched: the commit point, advanced via :meth:`trim`) and the
    furthest index read so far, so rewinds inside that window are exact while
    peak memory stays proportional to the in-flight window.
    """

    def __init__(self, source: TraceSource) -> None:
        self.source = source
        self._iter = source.open()
        self._buffer: Deque[MicroOp] = deque()
        self._base = 0
        self._next = 0
        self._total: Optional[int] = None
        #: High-water mark of buffered micro-ops (exposed for memory tests).
        self.peak_buffered = 0

    @property
    def known_length(self) -> Optional[int]:
        """Total micro-op count, known once the underlying stream is exhausted."""
        if self._total is not None:
            return self._total
        return self.source.length

    def _fill_to(self, index: int) -> None:
        while self._next <= index and self._total is None:
            try:
                uop = next(self._iter)
            except StopIteration:
                self._total = self._next
                return
            self._buffer.append(uop)
            self._next += 1
            if len(self._buffer) > self.peak_buffered:
                self.peak_buffered = len(self._buffer)

    def has(self, index: int) -> bool:
        """Whether a micro-op exists at ``index`` (may read ahead to find out)."""
        self._fill_to(index)
        return index < self._next

    def fetch(self, index: int) -> Optional[MicroOp]:
        """The micro-op at ``index``, or ``None`` past the end of the stream.

        Equivalent to ``has(index)`` followed by ``get(index)`` in one call —
        the front-end's fetch loop runs this once per micro-op, so collapsing
        the pair halves the per-uop cursor overhead.  ``index`` must be at or
        above the trim floor (fetch never rewinds below the commit point).
        """
        if index >= self._next:
            self._fill_to(index)
            if index >= self._next:
                return None
        return self._buffer[index - self._base]

    def get(self, index: int) -> MicroOp:
        """The micro-op at ``index``; raises if trimmed away or past the end."""
        if index < self._base:
            raise IndexError(
                f"trace index {index} was trimmed (retained window starts at {self._base}); "
                "the core only rewinds to uncommitted micro-ops"
            )
        self._fill_to(index)
        if index >= self._next:
            raise IndexError(f"trace index {index} is past the end of {self.source!r}")
        return self._buffer[index - self._base]

    def trim(self, floor: int) -> None:
        """Drop retained micro-ops below ``floor`` (the commit point)."""
        buffer = self._buffer
        base = self._base
        while base < floor and buffer:
            buffer.popleft()
            base += 1
        self._base = base

    def describe(self) -> str:
        """Human-readable position summary for diagnostics."""
        total = self.known_length
        return f"{self._next}/{total if total is not None else '?'}"


class MaterializedCursor(StreamingCursor):
    """Zero-copy cursor over an in-memory trace (the fast compatibility path)."""

    def __init__(self, source: "MaterializedTrace") -> None:
        self.source = source
        self._uops = source.trace._uops
        self.peak_buffered = 0

    @property
    def known_length(self) -> Optional[int]:
        return len(self._uops)

    def has(self, index: int) -> bool:
        return index < len(self._uops)

    def fetch(self, index: int) -> Optional[MicroOp]:
        uops = self._uops
        return uops[index] if index < len(uops) else None

    def get(self, index: int) -> MicroOp:
        return self._uops[index]

    def trim(self, floor: int) -> None:
        pass

    def describe(self) -> str:
        return f"{len(self._uops)}/{len(self._uops)}"


# -------------------------------------------------------------- implementations


class MaterializedTrace(TraceSource):
    """A :class:`TraceSource` backed by an in-memory :class:`Trace`.

    This is the backward-compatibility wrapper: passing a ``Trace`` anywhere a
    source is expected wraps it in one of these, and behaviour (including
    random access for controllers that need a whole-trace oracle) is exactly
    the pre-streaming behaviour.
    """

    def __init__(self, trace: Trace, name: Optional[str] = None) -> None:
        self.trace = trace
        self.name = name or trace.name

    def open(self) -> Iterator[MicroOp]:
        return iter(self.trace)

    def open_at(self, start: int) -> Iterator[MicroOp]:
        return islice(iter(self.trace), start, None)

    @property
    def length(self) -> Optional[int]:
        return len(self.trace)

    def cursor(self) -> StreamingCursor:
        return MaterializedCursor(self)

    def materialize(self) -> Trace:
        return self.trace

    def materialized(self) -> "MaterializedTrace":
        return self


class GeneratorSource(TraceSource):
    """A source that regenerates its stream from a generator function.

    ``factory(**kwargs)`` must return a fresh iterator of micro-ops each call;
    workload generators are deterministic (seeded), so every :meth:`open`
    yields the identical stream.  Nothing is retained between micro-ops, so a
    simulation's peak memory is the core's in-flight window, not the trace.
    """

    def __init__(
        self,
        factory: Callable[..., Iterable[MicroOp]],
        kwargs: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
        length: Optional[int] = None,
    ) -> None:
        self._factory = factory
        self._kwargs = dict(kwargs or {})
        self.name = name or getattr(factory, "__name__", "generated")
        self._length = length

    def open(self) -> Iterator[MicroOp]:
        return iter(self._factory(**self._kwargs))

    @property
    def length(self) -> Optional[int]:
        return self._length


class WindowedSource(TraceSource):
    """Restrict a source to the micro-ops in ``[start, end)``.

    Used to execute one SimPoint interval: the prefix is generated and
    discarded (no buffering), the window is yielded, and iteration stops at
    ``end`` without producing the tail.
    """

    def __init__(
        self,
        base: TraceSource,
        start: int,
        end: int,
        name: Optional[str] = None,
    ) -> None:
        if start < 0 or end < start:
            raise ValueError(f"invalid window [{start}, {end})")
        self.base = base
        self.start = start
        self.end = end
        self.name = name or f"{base.name}[{start}:{end}]"

    def open(self) -> Iterator[MicroOp]:
        def _window() -> Iterator[MicroOp]:
            iterator = self.base.open_at(self.start)
            remaining = self.end - self.start
            for uop in iterator:
                if remaining <= 0:
                    break
                yield uop
                remaining -= 1

        return _window()

    @property
    def length(self) -> Optional[int]:
        base_length = self.base.length
        if base_length is None:
            return None
        return max(0, min(self.end, base_length) - min(self.start, base_length))


# ------------------------------------------------------------ trace-file format
#
# Layout: one uncompressed JSON header line, then a gzip stream of fixed-layout
# records.  The header carries the exact record count, so readers know the
# length without scanning and `trace info` is O(1).
#
# Record layout (little-endian):
#   <Q pc> <B class> <B flags> <B dst|0xFF> <B nsrcs> <nsrcs x B src>
#   [<Q mem_addr> <H mem_size>]   when flags & FLAG_MEM
#   [<Q branch_target>]           when flags & FLAG_TARGET

TRACE_FILE_FORMAT = "repro-trace"
TRACE_FILE_VERSION = 1

_FLAG_MEM = 0x01
_FLAG_TAKEN = 0x02
_FLAG_TARGET = 0x04
_NO_DST = 0xFF

_FIXED = struct.Struct("<QBBBB")
_MEM = struct.Struct("<QH")
_TARGET = struct.Struct("<Q")

#: Upper bound on one encoded record: fixed part, 255 source registers, and
#: both optional payloads.  The block decoder refills its buffer whenever
#: fewer bytes than this remain, so a record never straddles a refill.
_MAX_RECORD_BYTES = _FIXED.size + 0xFF + _MEM.size + _TARGET.size

#: Decompressed bytes pulled from the gzip stream per refill (~4k records).
_DECODE_CHUNK_BYTES = 1 << 18


def _encode_uop(uop: MicroOp) -> bytes:
    flags = 0
    if uop.mem_addr is not None:
        flags |= _FLAG_MEM
    if uop.branch_taken:
        flags |= _FLAG_TAKEN
    if uop.branch_target is not None:
        flags |= _FLAG_TARGET
    dst = _NO_DST if uop.dst is None else uop.dst
    parts = [
        _FIXED.pack(uop.pc, _CLASS_INDEX[uop.uop_class], flags, dst, len(uop.srcs)),
        bytes(uop.srcs),
    ]
    if flags & _FLAG_MEM:
        parts.append(_MEM.pack(uop.mem_addr, uop.mem_size))
    if flags & _FLAG_TARGET:
        parts.append(_TARGET.pack(uop.branch_target))
    return b"".join(parts)


def _read_exact(stream: io.BufferedIOBase, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise TraceFileError(f"truncated trace file: wanted {size} bytes, got {len(data)}")
    return data


def _decode_uop(stream: io.BufferedIOBase) -> MicroOp:
    """Decode a single record with per-field reads (kept for diagnostics and
    as the reference implementation the block decoder must match)."""
    pc, class_index, flags, dst, nsrcs = _FIXED.unpack(_read_exact(stream, _FIXED.size))
    srcs = tuple(_read_exact(stream, nsrcs)) if nsrcs else ()
    mem_addr = None
    mem_size = 8
    if flags & _FLAG_MEM:
        mem_addr, mem_size = _MEM.unpack(_read_exact(stream, _MEM.size))
    branch_target = None
    if flags & _FLAG_TARGET:
        (branch_target,) = _TARGET.unpack(_read_exact(stream, _TARGET.size))
    try:
        uop_class = _CLASS_LIST[class_index]
    except IndexError:
        raise TraceFileError(f"unknown micro-op class index {class_index}") from None
    return MicroOp(
        pc=pc,
        uop_class=uop_class,
        srcs=srcs,
        dst=None if dst == _NO_DST else dst,
        mem_addr=mem_addr,
        mem_size=mem_size,
        branch_taken=bool(flags & _FLAG_TAKEN),
        branch_target=branch_target,
    )


def _decode_stream(stream, count: int, skip: int = 0) -> Iterator[MicroOp]:
    """Decode ``count`` records from ``stream`` in buffered blocks.

    Replaces the three-``struct.unpack``-plus-``_read_exact``-per-record
    scheme with chunked reads and ``Struct.unpack_from`` over one bytes
    buffer: the stream is touched once per ~4k records instead of 3-5 times
    per record.  Produces micro-ops byte-for-byte identical to
    :func:`_decode_uop` and raises :class:`TraceFileError` on truncation.

    ``skip`` records are first passed over *without* building micro-ops —
    only the fixed header and the two length-determining flag bits are
    parsed — which is the sharded-replay prefix skip: positioning a shard
    runs at buffer speed, not object-construction speed.  The skip shares
    the decode loop's buffer, so the decoder picks up exactly where the
    skip stopped.
    """
    fixed_unpack = _FIXED.unpack_from
    fixed_size = _FIXED.size
    mem_unpack = _MEM.unpack_from
    mem_bytes = _MEM.size
    target_unpack = _TARGET.unpack_from
    target_bytes = _TARGET.size
    classes = _CLASS_LIST
    num_classes = len(classes)
    read = stream.read
    buf = b""
    pos = 0
    limit = 0
    remaining = skip
    while remaining:
        if limit - pos < _MAX_RECORD_BYTES:
            buf = buf[pos:] + read(_DECODE_CHUNK_BYTES)
            pos = 0
            limit = len(buf)
        if limit - pos < fixed_size:
            raise TraceFileError(
                f"truncated trace file: wanted {fixed_size} bytes, got {limit - pos}"
            )
        _, _, flags, _, nsrcs = fixed_unpack(buf, pos)
        pos += fixed_size + nsrcs
        if flags & _FLAG_MEM:
            pos += mem_bytes
        if flags & _FLAG_TARGET:
            pos += target_bytes
        if pos > limit:
            raise TraceFileError(
                f"truncated trace file: wanted {pos - limit} more bytes"
            )
        remaining -= 1
    remaining = count
    while remaining:
        if limit - pos < _MAX_RECORD_BYTES:
            buf = buf[pos:] + read(_DECODE_CHUNK_BYTES)
            pos = 0
            limit = len(buf)
        if limit - pos < fixed_size:
            raise TraceFileError(
                f"truncated trace file: wanted {fixed_size} bytes, got {limit - pos}"
            )
        pc, class_index, flags, dst, nsrcs = fixed_unpack(buf, pos)
        pos += fixed_size
        if nsrcs:
            end = pos + nsrcs
            if end > limit:
                raise TraceFileError(
                    f"truncated trace file: wanted {nsrcs} bytes, got {limit - pos}"
                )
            srcs = tuple(buf[pos:end])
            pos = end
        else:
            srcs = ()
        mem_addr = None
        mem_size = 8
        if flags & _FLAG_MEM:
            if limit - pos < mem_bytes:
                raise TraceFileError(
                    f"truncated trace file: wanted {mem_bytes} bytes, got {limit - pos}"
                )
            mem_addr, mem_size = mem_unpack(buf, pos)
            pos += mem_bytes
        branch_target = None
        if flags & _FLAG_TARGET:
            if limit - pos < target_bytes:
                raise TraceFileError(
                    f"truncated trace file: wanted {target_bytes} bytes, got {limit - pos}"
                )
            (branch_target,) = target_unpack(buf, pos)
            pos += target_bytes
        if class_index >= num_classes:
            raise TraceFileError(f"unknown micro-op class index {class_index}")
        yield MicroOp(
            pc=pc,
            uop_class=classes[class_index],
            srcs=srcs,
            dst=None if dst == _NO_DST else dst,
            mem_addr=mem_addr,
            mem_size=mem_size,
            branch_taken=bool(flags & _FLAG_TAKEN),
            branch_target=branch_target,
        )
        remaining -= 1


class TraceFileError(ValueError):
    """Raised when a trace file is malformed or truncated."""


def write_trace_file(
    path: Union[str, Path],
    uops: Union[Trace, TraceSource, Iterable[MicroOp]],
    name: Optional[str] = None,
) -> int:
    """Record ``uops`` into the compressed trace file at ``path``.

    Streams record by record (O(1) memory for streaming sources) through a
    temp file, then writes the final file with an exact-count header;
    returns the number of micro-ops recorded.
    """
    path = Path(path)
    if name is None:
        name = getattr(uops, "name", None) or path.stem
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), prefix=".trace-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as tmp_handle:
            with gzip.GzipFile(fileobj=tmp_handle, mode="wb", mtime=0) as compressed:
                for uop in uops:
                    compressed.write(_encode_uop(uop))
                    count += 1
        header = {
            "format": TRACE_FILE_FORMAT,
            "version": TRACE_FILE_VERSION,
            "name": name,
            "count": count,
        }
        with open(path, "wb") as out:
            out.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            with open(tmp_name, "rb") as tmp_handle:
                while True:
                    chunk = tmp_handle.read(1 << 20)
                    if not chunk:
                        break
                    out.write(chunk)
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
    return count


def read_trace_header(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate a trace file's header line."""
    with open(path, "rb") as handle:
        line = handle.readline(1 << 16)
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise TraceFileError(f"{path}: not a repro trace file (bad header)") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FILE_FORMAT:
        raise TraceFileError(f"{path}: not a repro trace file (bad header)")
    if header.get("version") != TRACE_FILE_VERSION:
        raise TraceFileError(
            f"{path}: unsupported trace format version {header.get('version')!r}"
        )
    return header


def trace_file_digest(path: Union[str, Path]) -> str:
    """SHA-256 of the file's raw bytes — the content key the result cache uses."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()


class FileTraceSource(TraceSource):
    """Replay a trace recorded with :func:`write_trace_file`.

    The header is read once at construction (name and exact length);
    iteration decompresses records lazily, and each :meth:`open` reopens the
    file so multi-variant runs replay the identical stream.
    """

    def __init__(self, path: Union[str, Path], name: Optional[str] = None) -> None:
        self.path = Path(path)
        header = read_trace_header(self.path)
        self._count = int(header["count"])
        self.name = name or str(header.get("name") or self.path.stem)

    @property
    def length(self) -> Optional[int]:
        return self._count

    def digest(self) -> str:
        """Content hash of the backing file."""
        return trace_file_digest(self.path)

    def open(self) -> Iterator[MicroOp]:
        return self.open_at(0)

    def open_at(self, start: int) -> Iterator[MicroOp]:
        def _records() -> Iterator[MicroOp]:
            if start >= self._count:
                return
            with open(self.path, "rb") as handle:
                handle.readline(1 << 16)  # skip the header line
                with gzip.GzipFile(fileobj=handle, mode="rb") as stream:
                    yield from _decode_stream(
                        stream, self._count - start, skip=start
                    )

        return _records()


# ------------------------------------------------------------------ utilities


def streaming_trace_stats(source: Union[Trace, TraceSource]) -> TraceStats:
    """Compute :class:`TraceStats` in one pass without materialising the stream.

    Same classification rules as :meth:`Trace.stats` — both delegate to
    :func:`~repro.workloads.trace.compute_trace_stats`.
    """
    return compute_trace_stats(as_source(source))


__all__ = [
    "FileTraceSource",
    "GeneratorSource",
    "MaterializedCursor",
    "MaterializedTrace",
    "StreamingCursor",
    "TraceFileError",
    "TraceSource",
    "WindowedSource",
    "as_source",
    "read_trace_header",
    "streaming_trace_stats",
    "trace_file_digest",
    "write_trace_file",
]
