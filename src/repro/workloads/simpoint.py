"""SimPoint-like trace sampling.

The paper simulates 1B-instruction SimPoints [Sherwood et al., ASPLOS 2002]:
representative intervals chosen by clustering basic-block vectors of the full
execution.  This module provides a lightweight equivalent: the trace is
divided into fixed-size intervals, each interval is summarised by a feature
vector (PC histogram), intervals are clustered with a simple k-means, and one
representative interval per cluster is selected with a weight proportional to
its cluster's size.

Selection works on *streams*: :meth:`SimPointSampler.select_source` profiles
any :class:`~repro.workloads.source.TraceSource` in a single pass without
materialising it, so arbitrarily long workloads can be sampled at O(intervals
x unique PCs) memory.  The selected intervals drive execution through
:class:`~repro.workloads.source.WindowedSource` (see
:func:`repro.simulation.simulator.run_simpoints`), with per-interval
statistics combined by cluster weight into whole-trace estimates.

Determinism
-----------
Clustering never touches the global :mod:`random` state: randomness comes
from a private ``random.Random`` seeded with the sampler's ``seed`` (or an
explicitly injected ``rng``), so results are reproducible regardless of what
the calling program did to the global generator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SimPointInterval:
    """A representative interval selected by the sampler."""

    start: int
    end: int
    weight: float

    @property
    def length(self) -> int:
        """Number of micro-ops in the interval."""
        return self.end - self.start


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class SimPointSampler:
    """Select representative intervals of a trace via k-means on PC vectors.

    Parameters
    ----------
    interval_size:
        Micro-ops per clustering interval.
    max_clusters:
        Upper bound on k (capped by the number of intervals).
    seed:
        Seed for the private k-means initialisation RNG.
    rng:
        Optional pre-seeded ``random.Random`` used *instead of* ``seed``.
        Injecting one lets callers share a reproducible random stream across
        components; the global :mod:`random` module state is never consulted
        either way.
    """

    def __init__(
        self,
        interval_size: int = 2_000,
        max_clusters: int = 4,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if interval_size <= 0:
            raise ValueError("interval_size must be positive")
        if max_clusters <= 0:
            raise ValueError("max_clusters must be positive")
        self.interval_size = interval_size
        self.max_clusters = max_clusters
        self.seed = seed
        self.rng = rng

    def _clustering_rng(self) -> random.Random:
        if self.rng is not None:
            return self.rng
        return random.Random(self.seed)

    def intervals(self, trace: Trace) -> List[Tuple[int, int]]:
        """Split the trace into contiguous, fixed-size intervals."""
        return self._interval_bounds(len(trace))

    def _interval_bounds(self, total: int) -> List[Tuple[int, int]]:
        bounds = []
        for start in range(0, total, self.interval_size):
            end = min(start + self.interval_size, total)
            if end - start >= max(1, self.interval_size // 2):
                bounds.append((start, end))
        if not bounds and total:
            bounds.append((0, total))
        return bounds

    def _profile_source(self, source) -> Tuple[List[Dict[int, int]], Dict[int, int], int]:
        """One streaming pass: per-interval PC counts, global PC index, length."""
        pcs: Dict[int, int] = {}
        interval_counts: List[Dict[int, int]] = []
        current: Dict[int, int] = {}
        index = 0
        for uop in source:
            if index and index % self.interval_size == 0:
                interval_counts.append(current)
                current = {}
            pcs.setdefault(uop.pc, len(pcs))
            current[uop.pc] = current.get(uop.pc, 0) + 1
            index += 1
        if current:
            interval_counts.append(current)
        return interval_counts, pcs, index

    def select(self, trace: Trace) -> List[SimPointInterval]:
        """Return representative intervals with weights summing to 1."""
        intervals, _ = self.select_source(trace)
        return intervals

    def select_source(
        self, source: Union[Trace, "TraceSourceLike"]
    ) -> Tuple[List[SimPointInterval], int]:
        """Select representative intervals of any micro-op stream.

        A single pass builds the per-interval PC histograms (peak memory is
        intervals x unique PCs, independent of trace length), k-means picks
        one representative per cluster, and the stream's total micro-op count
        is returned alongside so callers can weight whole-trace statistics.
        """
        interval_counts, pcs, total = self._profile_source(source)
        bounds = self._interval_bounds(total)
        if not bounds:
            return [], total
        vectors = []
        for start, end in bounds:
            counts = interval_counts[start // self.interval_size]
            span = float(end - start) or 1.0
            vector = [0.0] * len(pcs)
            for pc, count in counts.items():
                vector[pcs[pc]] = count / span
            vectors.append(vector)

        k = min(self.max_clusters, len(vectors))
        rng = self._clustering_rng()
        centroids = [list(vectors[i]) for i in rng.sample(range(len(vectors)), k)]
        assignment = [0] * len(vectors)
        for _ in range(12):
            changed = False
            for i, vec in enumerate(vectors):
                best = min(range(k), key=lambda c: _distance(vec, centroids[c]))
                if best != assignment[i]:
                    assignment[i] = best
                    changed = True
            for c in range(k):
                members = [vectors[i] for i in range(len(vectors)) if assignment[i] == c]
                if members:
                    centroids[c] = [
                        sum(values) / len(members) for values in zip(*members)
                    ]
            if not changed:
                break

        selected: List[SimPointInterval] = []
        count = len(vectors)
        for c in range(k):
            members = [i for i in range(len(vectors)) if assignment[i] == c]
            if not members:
                continue
            representative = min(
                members, key=lambda i: _distance(vectors[i], centroids[c])
            )
            start, end = bounds[representative]
            selected.append(
                SimPointInterval(start=start, end=end, weight=len(members) / count)
            )
        return sorted(selected, key=lambda interval: interval.start), total


#: Anything iterable over micro-ops (Trace or TraceSource); kept as a loose
#: alias to avoid importing the source module here.
TraceSourceLike = object


def sample_trace(
    trace: Trace, interval_size: int = 2_000, max_clusters: int = 4, seed: int = 0
) -> Trace:
    """Return a smaller trace made of the representative intervals, concatenated.

    The representative intervals are concatenated in program order.  The
    resulting trace preserves the mix of behaviours while being a fraction of
    the original length — the same role SimPoints play in the paper.
    """
    sampler = SimPointSampler(interval_size=interval_size, max_clusters=max_clusters, seed=seed)
    intervals = sampler.select(trace)
    uops = []
    for interval in intervals:
        uops.extend(trace[index] for index in range(interval.start, interval.end))
    return Trace(uops, name=f"{trace.name}.simpoints")
