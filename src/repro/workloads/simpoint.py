"""SimPoint-like trace sampling.

The paper simulates 1B-instruction SimPoints [Sherwood et al., ASPLOS 2002]:
representative intervals chosen by clustering basic-block vectors of the full
execution.  This module provides a lightweight equivalent for synthetic
traces: the trace is divided into fixed-size intervals, each interval is
summarised by a feature vector (PC histogram), intervals are clustered with a
simple k-means, and one representative interval per cluster is selected with a
weight proportional to its cluster's size.

For the synthetic surrogates the traces are small enough to simulate whole,
but the sampler is exercised by the test suite and available for users who
plug in larger traces.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SimPointInterval:
    """A representative interval selected by the sampler."""

    start: int
    end: int
    weight: float

    @property
    def length(self) -> int:
        """Number of micro-ops in the interval."""
        return self.end - self.start


def _interval_vector(trace: Trace, start: int, end: int, pcs: Dict[int, int]) -> List[float]:
    """Build a normalised PC-frequency vector for ``trace[start:end]``."""
    vector = [0.0] * len(pcs)
    for index in range(start, end):
        vector[pcs[trace[index].pc]] += 1.0
    total = float(end - start) or 1.0
    return [value / total for value in vector]


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class SimPointSampler:
    """Select representative intervals of a trace via k-means on PC vectors."""

    def __init__(self, interval_size: int = 2_000, max_clusters: int = 4, seed: int = 0) -> None:
        if interval_size <= 0:
            raise ValueError("interval_size must be positive")
        if max_clusters <= 0:
            raise ValueError("max_clusters must be positive")
        self.interval_size = interval_size
        self.max_clusters = max_clusters
        self.seed = seed

    def intervals(self, trace: Trace) -> List[Tuple[int, int]]:
        """Split the trace into contiguous, fixed-size intervals."""
        bounds = []
        for start in range(0, len(trace), self.interval_size):
            end = min(start + self.interval_size, len(trace))
            if end - start >= max(1, self.interval_size // 2):
                bounds.append((start, end))
        if not bounds and len(trace):
            bounds.append((0, len(trace)))
        return bounds

    def select(self, trace: Trace) -> List[SimPointInterval]:
        """Return representative intervals with weights summing to 1."""
        bounds = self.intervals(trace)
        if not bounds:
            return []
        pcs = {}
        for uop in trace:
            pcs.setdefault(uop.pc, len(pcs))
        vectors = [_interval_vector(trace, start, end, pcs) for start, end in bounds]

        k = min(self.max_clusters, len(vectors))
        rng = random.Random(self.seed)
        centroids = [list(vectors[i]) for i in rng.sample(range(len(vectors)), k)]
        assignment = [0] * len(vectors)
        for _ in range(12):
            changed = False
            for i, vec in enumerate(vectors):
                best = min(range(k), key=lambda c: _distance(vec, centroids[c]))
                if best != assignment[i]:
                    assignment[i] = best
                    changed = True
            for c in range(k):
                members = [vectors[i] for i in range(len(vectors)) if assignment[i] == c]
                if members:
                    centroids[c] = [
                        sum(values) / len(members) for values in zip(*members)
                    ]
            if not changed:
                break

        selected: List[SimPointInterval] = []
        total = len(vectors)
        for c in range(k):
            members = [i for i in range(len(vectors)) if assignment[i] == c]
            if not members:
                continue
            representative = min(
                members, key=lambda i: _distance(vectors[i], centroids[c])
            )
            start, end = bounds[representative]
            selected.append(
                SimPointInterval(start=start, end=end, weight=len(members) / total)
            )
        return sorted(selected, key=lambda interval: interval.start)


def sample_trace(
    trace: Trace, interval_size: int = 2_000, max_clusters: int = 4, seed: int = 0
) -> Trace:
    """Return a smaller trace made of the representative intervals, concatenated.

    The representative intervals are concatenated in program order.  The
    resulting trace preserves the mix of behaviours while being a fraction of
    the original length — the same role SimPoints play in the paper.
    """
    sampler = SimPointSampler(interval_size=interval_size, max_clusters=max_clusters, seed=seed)
    intervals = sampler.select(trace)
    uops = []
    for interval in intervals:
        uops.extend(trace[index] for index in range(interval.start, interval.end))
    return Trace(uops, name=f"{trace.name}.simpoints")
