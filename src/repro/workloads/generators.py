"""Synthetic workload generators.

Each generator produces a deterministic dynamic micro-op stream whose
*memory behaviour* mirrors one of the behaviours the paper's evaluation relies
on.  The discriminating properties are:

* how many distinct *stalling slices* (backward dependency chains leading to
  long-latency loads) the workload has,
* whether the address of a future long-latency load is computable without the
  value of the current long-latency load (i.e. how much memory-level
  parallelism runahead execution can expose),
* how densely long-latency misses occur in the dynamic instruction stream
  (which decides how deep runahead execution must run to find them), and
* the ratio of compute to memory micro-ops.

All generators take a ``seed`` and are fully deterministic.

Streaming vs. eager construction
--------------------------------
Every generator exists in two forms that produce byte-for-byte identical
micro-op sequences:

* the public function (e.g. :func:`strided_stream`) eagerly materialises a
  :class:`~repro.workloads.trace.Trace`, exactly as before;
* its ``.stream`` attribute (e.g. ``strided_stream.stream``) is a generator
  function yielding micro-ops on demand — the factory a
  :class:`~repro.workloads.source.GeneratorSource` regenerates the stream
  from, which keeps peak memory independent of trace length.

Register conventions
--------------------
Integer registers ``0..31`` hold addresses, indices and integer temporaries;
floating-point registers ``32..63`` hold data values in FP kernels.  A few
registers are reserved by convention inside each generator and documented in
its docstring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator

from repro.workloads.trace import (
    FP_REG_BASE,
    MicroOp,
    PCAllocator,
    Trace,
    UopClass,
    uop_branch,
    uop_falu,
    uop_ialu,
    uop_load,
    uop_store,
)

#: Cache line size assumed by the generators when spreading data structures.
CACHE_LINE_BYTES = 64

#: Default data-segment base address used by all generators.
DATA_BASE = 0x10_000_000


@dataclass
class WorkloadSpec:
    """A named, parameterised workload.

    Attributes
    ----------
    name:
        Identifier used in reports.
    generator:
        Callable returning a :class:`Trace` when invoked with the stored
        keyword parameters.  When the callable carries a ``stream`` attribute
        (all generators in this module do), :meth:`source` builds a lazy
        :class:`~repro.workloads.source.GeneratorSource` from it instead of
        materialising the trace.
    params:
        Keyword arguments passed to ``generator``.
    description:
        Human-readable description of the memory behaviour.
    """

    name: str
    generator: Callable[..., Trace]
    params: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    def build(self, **overrides: object) -> Trace:
        """Instantiate the workload, optionally overriding stored parameters."""
        kwargs = dict(self.params)
        kwargs.update(overrides)
        trace = self.generator(**kwargs)
        trace.name = self.name
        return trace

    def source(self, **overrides: object):
        """A lazy :class:`~repro.workloads.source.TraceSource` for this workload.

        Streams micro-ops on demand when the generator supports it, and falls
        back to materialising the trace otherwise.  Either way the stream is
        identical to :meth:`build`'s.
        """
        from repro.workloads.source import GeneratorSource, MaterializedTrace

        kwargs = dict(self.params)
        kwargs.update(overrides)
        stream = getattr(self.generator, "stream", None)
        if stream is None:
            return MaterializedTrace(self.generator(**kwargs), name=self.name)
        return GeneratorSource(stream, kwargs, name=self.name)


def _eager(stream_func: Callable[..., Iterator[MicroOp]], name: str) -> Callable[..., Trace]:
    """Wrap a streaming generator function into the eager Trace-building API."""

    def build(**kwargs: object) -> Trace:
        return Trace(stream_func(**kwargs), name=name)

    build.__name__ = name
    build.__qualname__ = name
    build.__doc__ = stream_func.__doc__
    # The stream twin takes the public name too, so a GeneratorSource built
    # from it defaults to "strided_stream", not "_stream_strided_stream".
    stream_func.__name__ = name
    stream_func.__qualname__ = name
    build.stream = stream_func  # type: ignore[attr-defined]
    return build


def _stream_linked_list_chase(
    num_uops: int = 20_000,
    num_nodes: int = 64_000,
    work_per_node: int = 6,
    seed: int = 1,
    base: int = DATA_BASE,
) -> Iterator[MicroOp]:
    """Serial pointer chasing (mcf/omnetpp-like).

    A single static load walks a randomly permuted linked list whose footprint
    (``num_nodes`` cache lines) far exceeds the last-level cache, so nearly
    every pointer dereference is a long-latency miss.  The address of the next
    load is the *value* of the current load, so runahead execution cannot
    compute future addresses once the stalling load's value is unavailable:
    this workload bounds the benefit of all runahead techniques from below.

    Registers: r1 holds the current node pointer, r2/r3 hold integer
    temporaries, r4 a loop counter.
    """
    rng = random.Random(seed)
    order = list(range(num_nodes))
    rng.shuffle(order)
    node_addr = [base + node * CACHE_LINE_BYTES for node in order]

    pcs = PCAllocator()
    pc_load = pcs.new_pc()
    pc_work = [pcs.new_pc() for _ in range(work_per_node)]
    pc_branch = pcs.new_pc()

    emitted = 0
    position = 0
    while emitted < num_uops:
        addr = node_addr[position % num_nodes]
        # r1 <- [r1] : the chase load; the next address depends on the loaded value.
        yield uop_load(pc_load, dst=1, addr=addr, srcs=(1,))
        emitted += 1
        for i, pc in enumerate(pc_work):
            if i < 2:
                # Node processing that needs the loaded pointer.
                yield uop_ialu(pc, dst=2 + i, srcs=(1, 2 + i))
            elif i % 2 == 0:
                # Bookkeeping independent of the outstanding miss (reads loop
                # constants only, so it never waits and never clogs the IQ).
                yield uop_ialu(pc, dst=5 + (i % 3), srcs=(4, 8))
            else:
                # Independent floating-point work; mixing destination banks
                # keeps either register file from filling before the ROB does.
                yield uop_falu(pc, dst=FP_REG_BASE + 8 + (i % 2), srcs=(FP_REG_BASE + 14, FP_REG_BASE + 15))
            emitted += 1
        yield uop_branch(pc_branch, taken=True, target=pc_load, srcs=(4,))
        emitted += 1
        position += 1


linked_list_chase = _eager(_stream_linked_list_chase, "linked_list_chase")


def _stream_strided_stream(
    num_uops: int = 20_000,
    element_bytes: int = 8,
    work_per_element: int = 6,
    region_bytes: int = 16 * 1024 * 1024,
    seed: int = 1,
    base: int = DATA_BASE,
) -> Iterator[MicroOp]:
    """Streaming over a large array with a single dominant load slice (libquantum/lbm-like).

    One static load walks a multi-megabyte array of ``element_bytes``-sized
    elements.  Its address is produced by a short induction-variable chain
    (one add), so runahead execution can race arbitrarily far ahead and
    prefetch every future cache line; a single-slice technique such as the
    runahead buffer captures all of the available memory-level parallelism,
    which is why the paper calls out libquantum as the case where RA-buffer
    matches or beats PRE.  With 8-byte elements only one load in eight touches
    a new line, so long-latency misses are spread through the instruction
    stream rather than back to back.

    Registers: r1 element address (induction variable), r5/r6 integer
    temporaries, fp32+ data accumulators.
    """
    del seed  # fully regular; kept for signature uniformity
    pcs = PCAllocator()
    pc_addr = pcs.new_pc()
    pc_load = pcs.new_pc()
    pc_work = [pcs.new_pc() for _ in range(work_per_element)]
    pc_branch = pcs.new_pc()

    emitted = 0
    element = 0
    num_elements = max(1, region_bytes // max(element_bytes, 1))
    while emitted < num_uops:
        addr = base + (element % num_elements) * element_bytes
        # r1 <- r1 + element_bytes : induction variable update (the slice root).
        yield uop_ialu(pc_addr, dst=1, srcs=(1,))
        emitted += 1
        # fp0 <- [r1] : the streaming load; depends only on the induction chain.
        yield uop_load(pc_load, dst=FP_REG_BASE + 0, addr=addr, srcs=(1,))
        emitted += 1
        for i, pc in enumerate(pc_work):
            if i == 0:
                # The single consumer of the streamed element.
                yield uop_falu(pc, dst=FP_REG_BASE + 1, srcs=(FP_REG_BASE + 0, FP_REG_BASE + 1))
            elif i % 2 == 0:
                # Independent work that reads loop constants only: it neither
                # waits for the miss nor forms a serial chain across iterations.
                yield uop_falu(
                    pc,
                    dst=FP_REG_BASE + 2 + (i % 3),
                    srcs=(FP_REG_BASE + 5, FP_REG_BASE + 6),
                )
            else:
                # Integer bookkeeping; mixing destination banks keeps either
                # register file from filling before the ROB does.
                yield uop_ialu(pc, dst=6 + (i % 3), srcs=(5, 8))
            emitted += 1
        yield uop_branch(pc_branch, taken=True, target=pc_addr, srcs=(5,))
        emitted += 1
        element += 1


strided_stream = _eager(_stream_strided_stream, "strided_stream")


def _stream_multi_slice_kernel(
    num_uops: int = 20_000,
    num_slices: int = 4,
    work_per_iteration: int = 12,
    region_bytes: int = 16 * 1024 * 1024,
    element_bytes: int = 16,
    slice_depth: int = 2,
    seed: int = 2,
    base: int = DATA_BASE,
) -> Iterator[MicroOp]:
    """Several independent address-generation chains per loop iteration (milc/soplex-like).

    Each loop iteration issues ``num_slices`` loads from *different* static PCs
    whose addresses are produced by independent short integer chains
    (``slice_depth`` address-generation ops each), each walking its own region
    with ``element_bytes``-sized elements.  Multiple distinct stalling slices
    lead to full-window stalls, which is exactly the case where the runahead
    buffer's single-slice replay loses coverage and PRE's Stalling Slice Table
    wins (Section 5.1).  Small elements keep the long-latency misses spread
    out (one new line every ``line/element_bytes`` iterations per slice).

    Registers: r1..r``num_slices`` hold per-slice induction variables,
    r20/r21 integer temporaries, fp regs hold loaded data.
    """
    rng = random.Random(seed)
    num_slices = max(1, min(num_slices, 12))
    pcs = PCAllocator()

    pc_addr = [[pcs.new_pc() for _ in range(slice_depth)] for _ in range(num_slices)]
    pc_load = [pcs.new_pc() for _ in range(num_slices)]
    pc_work = [pcs.new_pc() for _ in range(work_per_iteration)]
    pc_branch = pcs.new_pc()

    slice_region = max(CACHE_LINE_BYTES, region_bytes // num_slices)
    # Stagger the per-slice regions by a prime number of pages so that the
    # slices do not alias onto the same DRAM bank.
    offsets = [s * slice_region + s * 7 * 4096 for s in range(num_slices)]
    counters = [rng.randrange(0, 64) for _ in range(num_slices)]
    num_elements = max(1, slice_region // element_bytes)

    emitted = 0
    while emitted < num_uops:
        for s in range(num_slices):
            reg = 1 + s
            # Address-generation chain for slice s (its stalling slice).
            for d in range(slice_depth):
                yield uop_ialu(pc_addr[s][d], dst=reg, srcs=(reg,))
                emitted += 1
            addr = base + offsets[s] + (counters[s] % num_elements) * element_bytes
            yield uop_load(pc_load[s], dst=FP_REG_BASE + s, addr=addr, srcs=(reg,))
            emitted += 1
            counters[s] += 1
        for i, pc in enumerate(pc_work):
            if i < num_slices:
                # One reduction per slice consumes that slice's loaded value.
                yield uop_falu(
                    pc,
                    dst=FP_REG_BASE + 8 + (i % 2),
                    srcs=(FP_REG_BASE + i, FP_REG_BASE + 8 + (i % 2)),
                )
            elif i % 2 == 0:
                # Independent work on loop constants, not blocked by misses.
                yield uop_falu(
                    pc,
                    dst=FP_REG_BASE + 10 + (i % 3),
                    srcs=(FP_REG_BASE + 14, FP_REG_BASE + 15),
                )
            else:
                # Integer bookkeeping balances destination-register banks.
                yield uop_ialu(pc, dst=21 + (i % 3), srcs=(20, 25))
            emitted += 1
        yield uop_branch(pc_branch, taken=True, target=pc_addr[0][0], srcs=(20,))
        emitted += 1


multi_slice_kernel = _eager(_stream_multi_slice_kernel, "multi_slice_kernel")


def _stream_random_access_kernel(
    num_uops: int = 20_000,
    index_region_bytes: int = 16 * 1024,
    data_region_bytes: int = 32 * 1024 * 1024,
    hot_region_bytes: int = 16 * 1024,
    miss_fraction: float = 0.3,
    work_per_iteration: int = 8,
    seed: int = 3,
    base: int = DATA_BASE,
) -> Iterator[MicroOp]:
    """Indexed gather: a cached index load feeds a sparse data load (bwaves/cactus-like).

    Each iteration loads an index from a small (cache-resident) index array and
    uses it to address a data load.  A fraction ``miss_fraction`` of the data
    loads fall in a region much larger than the LLC (long-latency misses); the
    rest hit a small hot region.  The data load's address depends on the
    *index load's value*, not on the data load's own previous value, so
    runahead execution can prefetch future data loads as long as the index
    loads hit in the cache — a behaviour in between pure pointer chasing and
    pure streaming.

    Registers: r1 index-array pointer, r2 loaded index, r3 data address,
    fp regs hold data.
    """
    rng = random.Random(seed)
    pcs = PCAllocator()
    pc_idx_addr = pcs.new_pc()
    pc_idx_load = pcs.new_pc()
    pc_data_addr = pcs.new_pc()
    pc_data_load = pcs.new_pc()
    pc_work = [pcs.new_pc() for _ in range(work_per_iteration)]
    pc_branch = pcs.new_pc()

    index_base = base
    hot_base = base + index_region_bytes + CACHE_LINE_BYTES
    cold_base = hot_base + hot_region_bytes + CACHE_LINE_BYTES
    num_index_lines = max(1, index_region_bytes // CACHE_LINE_BYTES)
    num_hot_lines = max(1, hot_region_bytes // CACHE_LINE_BYTES)
    num_cold_lines = max(1, data_region_bytes // CACHE_LINE_BYTES)

    emitted = 0
    iteration = 0
    while emitted < num_uops:
        index_addr = index_base + (iteration % num_index_lines) * CACHE_LINE_BYTES
        if rng.random() < miss_fraction:
            data_addr = cold_base + rng.randrange(num_cold_lines) * CACHE_LINE_BYTES
        else:
            data_addr = hot_base + rng.randrange(num_hot_lines) * CACHE_LINE_BYTES
        yield uop_ialu(pc_idx_addr, dst=1, srcs=(1,))
        yield uop_load(pc_idx_load, dst=2, addr=index_addr, srcs=(1,))
        yield uop_ialu(pc_data_addr, dst=3, srcs=(2,))
        yield uop_load(pc_data_load, dst=FP_REG_BASE + 0, addr=data_addr, srcs=(3,))
        emitted += 4
        for i, pc in enumerate(pc_work):
            if i == 0:
                yield uop_falu(pc, dst=FP_REG_BASE + 1, srcs=(FP_REG_BASE + 0, FP_REG_BASE + 1))
            elif i % 2 == 0:
                yield uop_falu(
                    pc,
                    dst=FP_REG_BASE + 2 + (i % 3),
                    srcs=(FP_REG_BASE + 6, FP_REG_BASE + 7),
                )
            else:
                # Integer bookkeeping balances destination-register banks.
                yield uop_ialu(pc, dst=6 + (i % 3), srcs=(5, 9))
            emitted += 1
        yield uop_branch(pc_branch, taken=True, target=pc_idx_addr, srcs=(4,))
        emitted += 1
        iteration += 1


random_access_kernel = _eager(_stream_random_access_kernel, "random_access_kernel")


def _stream_mixed_compute_memory(
    num_uops: int = 20_000,
    memory_interval: int = 12,
    region_bytes: int = 8 * 1024 * 1024,
    element_bytes: int = 8,
    num_streams: int = 2,
    store_fraction: float = 0.25,
    seed: int = 4,
    base: int = DATA_BASE,
) -> Iterator[MicroOp]:
    """Compute-heavy loop with periodic long-latency loads and stores (sphinx/zeusmp-like).

    A block of FP compute separates memory accesses, each stream walks a large
    array in ``element_bytes`` steps (so only a fraction of the loads cross
    into a new line), and a fraction of iterations end with a store.  This
    exercises the commit path, the store queue and write-back traffic, and
    produces full-window stalls that are further apart than in the streaming
    kernels.

    Registers: r1..r``num_streams`` stream pointers, fp regs data.
    """
    rng = random.Random(seed)
    num_streams = max(1, min(num_streams, 4))
    pcs = PCAllocator()

    pc_addr = [pcs.new_pc() for _ in range(num_streams)]
    pc_load = [pcs.new_pc() for _ in range(num_streams)]
    pc_store = pcs.new_pc()
    pc_compute = [pcs.new_pc() for _ in range(memory_interval)]
    pc_branch = pcs.new_pc()

    counters = [0] * num_streams
    stream_region = max(CACHE_LINE_BYTES, region_bytes // num_streams)
    num_elements = max(1, stream_region // element_bytes)

    emitted = 0
    while emitted < num_uops:
        for s in range(num_streams):
            yield uop_ialu(pc_addr[s], dst=1 + s, srcs=(1 + s,))
            emitted += 1
            # The extra prime page offset keeps streams on distinct DRAM banks.
            addr = (
                base
                + s * stream_region
                + s * 5 * 4096
                + (counters[s] % num_elements) * element_bytes
            )
            yield uop_load(pc_load[s], dst=FP_REG_BASE + s, addr=addr, srcs=(1 + s,))
            emitted += 1
            counters[s] += 1
        for i, pc in enumerate(pc_compute):
            if i < num_streams:
                # One reduction per stream consumes that stream's loaded value.
                yield uop_falu(
                    pc,
                    dst=FP_REG_BASE + 4 + (i % 2),
                    srcs=(FP_REG_BASE + i, FP_REG_BASE + 4 + (i % 2)),
                )
            elif i % 2 == 0:
                # Independent compute on loop constants that can complete under
                # an outstanding miss.
                yield uop_falu(
                    pc,
                    dst=FP_REG_BASE + 8 + (i % 4),
                    srcs=(FP_REG_BASE + 13, FP_REG_BASE + 14),
                )
            else:
                # Integer bookkeeping balances destination-register banks.
                yield uop_ialu(pc, dst=11 + (i % 4), srcs=(10, 16))
            emitted += 1
        if rng.random() < store_fraction:
            store_addr = base + (counters[0] % num_elements) * element_bytes
            yield uop_store(pc_store, addr=store_addr, srcs=(1, FP_REG_BASE + 4))
            emitted += 1
        yield uop_branch(pc_branch, taken=True, target=pc_addr[0], srcs=(10,))
        emitted += 1


mixed_compute_memory = _eager(_stream_mixed_compute_memory, "mixed_compute_memory")


def _stream_compute_kernel(
    num_uops: int = 10_000,
    chain_length: int = 4,
    seed: int = 5,
) -> Iterator[MicroOp]:
    """Pure compute loop with no memory accesses.

    Used as a control: no full-window stalls occur, so every runahead variant
    must behave identically to the baseline out-of-order core.
    """
    del seed
    pcs = PCAllocator()
    pc_ops = [pcs.new_pc() for _ in range(chain_length)]
    pc_mul = pcs.new_pc()
    pc_branch = pcs.new_pc()

    emitted = 0
    while emitted < num_uops:
        for i, pc in enumerate(pc_ops):
            yield uop_ialu(pc, dst=1 + (i % 3), srcs=(1 + (i % 3), 2))
            emitted += 1
        yield MicroOp(pc=pc_mul, uop_class=UopClass.IMUL, srcs=(1, 3), dst=4)
        yield uop_branch(pc_branch, taken=True, target=pc_ops[0], srcs=(4,))
        emitted += 2


compute_kernel = _eager(_stream_compute_kernel, "compute_kernel")
