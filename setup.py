"""Setuptools entry point.

Project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed with ``pip install -e .`` in fully offline
environments where the PEP 517 build path (which needs the ``wheel`` package)
is unavailable.
"""

from setuptools import setup

setup()
