"""Integration tests: the baseline core and the four runahead variants end to end."""

import pytest

from repro import CoreConfig, VARIANTS, build_controller, build_core
from repro.core.pre import PreciseRunaheadController
from repro.core.runahead import TraditionalRunaheadController
from repro.core.runahead_buffer import RunaheadBufferController
from repro.uarch.core import ExecutionMode, OoOCore
from repro.workloads.generators import (
    compute_kernel,
    linked_list_chase,
    multi_slice_kernel,
    strided_stream,
)


SMALL = 1_200
MEDIUM = 3_000


@pytest.fixture(scope="module")
def memory_trace():
    return multi_slice_kernel(num_uops=MEDIUM, num_slices=4, work_per_iteration=16)


@pytest.fixture(scope="module")
def stream_trace():
    return strided_stream(num_uops=MEDIUM)


class TestBaselineCore:
    def test_commits_entire_trace(self):
        trace = compute_kernel(num_uops=SMALL)
        core = build_core(trace, variant="ooo")
        stats = core.run(max_cycles=200_000)
        assert stats.committed_uops == len(trace)
        assert stats.cycles > 0

    def test_compute_kernel_ipc_reasonable(self):
        trace = compute_kernel(num_uops=SMALL)
        stats = build_core(trace, variant="ooo").run(max_cycles=200_000)
        # A 4-wide core on independent integer work should clearly beat 1 IPC.
        assert stats.ipc > 1.0
        assert stats.full_window_stalls == 0

    def test_memory_trace_produces_full_window_stalls(self, memory_trace):
        stats = build_core(memory_trace, variant="ooo").run(max_cycles=2_000_000)
        assert stats.full_window_stalls > 0
        assert stats.long_latency_loads > 0
        assert stats.full_window_stall_cycles > 0

    def test_stall_snapshots_report_free_resources(self, memory_trace):
        stats = build_core(memory_trace, variant="ooo").run(max_cycles=2_000_000)
        free = stats.mean_free_resources()
        # Section 3.4: a sizeable fraction of the IQ and register files is free
        # at runahead entry.
        assert 0.0 < free["iq"] <= 1.0
        assert 0.0 < free["int_regs"] <= 1.0
        assert 0.0 < free["fp_regs"] <= 1.0

    def test_commit_count_matches_trace_loads_and_stores(self):
        trace = strided_stream(num_uops=SMALL)
        stats = build_core(trace, variant="ooo").run(max_cycles=2_000_000)
        expected = trace.stats()
        assert stats.committed_loads == expected.num_loads
        assert stats.committed_stores == expected.num_stores

    def test_max_cycles_stops_early(self):
        trace = linked_list_chase(num_uops=MEDIUM)
        stats = build_core(trace, variant="ooo").run(max_cycles=500)
        assert stats.cycles <= 501
        assert stats.committed_uops < len(trace)


class TestControllersCommitCorrectly:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_commit_full_trace(self, variant, memory_trace):
        core = build_core(memory_trace, variant=variant)
        stats = core.run(max_cycles=3_000_000)
        assert stats.committed_uops == len(memory_trace)
        assert core.mode == ExecutionMode.NORMAL

    @pytest.mark.parametrize("variant", [v for v in VARIANTS if v != "ooo"])
    def test_compute_only_trace_never_enters_runahead(self, variant):
        trace = compute_kernel(num_uops=SMALL)
        stats = build_core(trace, variant=variant).run(max_cycles=200_000)
        assert stats.runahead_invocations == 0
        assert stats.committed_uops == len(trace)

    @pytest.mark.parametrize("variant", [v for v in VARIANTS if v != "ooo"])
    def test_memory_trace_invokes_runahead(self, variant, memory_trace):
        stats = build_core(memory_trace, variant=variant).run(max_cycles=3_000_000)
        assert stats.runahead_invocations > 0
        closed = [i for i in stats.intervals if i.exit_cycle >= 0]
        assert closed, "every completed run must close its runahead intervals"
        assert all(interval.length >= 0 for interval in closed)


class TestRunaheadBehaviour:
    def test_pre_does_not_flush_pipeline(self, memory_trace):
        stats = build_core(memory_trace, variant="pre").run(max_cycles=3_000_000)
        assert stats.runahead_invocations > 0
        assert stats.pipeline_flushes == 0

    def test_traditional_runahead_flushes_once_per_interval(self, memory_trace):
        stats = build_core(memory_trace, variant="runahead").run(max_cycles=3_000_000)
        assert stats.runahead_invocations > 0
        assert stats.pipeline_flushes == stats.runahead_invocations

    def test_pre_invokes_runahead_at_least_as_often_as_ra(self, memory_trace):
        ra = build_core(memory_trace, variant="runahead").run(max_cycles=3_000_000)
        pre = build_core(memory_trace, variant="pre").run(max_cycles=3_000_000)
        # Section 5.1: PRE enters runahead mode more frequently because it has
        # no minimum-interval restriction and no flush overhead.
        assert pre.runahead_invocations >= ra.runahead_invocations

    def test_pre_learns_stalling_slices_in_sst(self, memory_trace):
        controller = PreciseRunaheadController()
        core = OoOCore(memory_trace, controller=controller)
        core.run(max_cycles=3_000_000)
        assert controller.sst is not None
        assert len(controller.sst) > 0
        load_pcs = {uop.pc for uop in memory_trace if uop.is_load}
        assert load_pcs & set(controller.sst.pcs())

    def test_pre_issues_prefetches_and_they_are_consumed(self, memory_trace):
        stats = build_core(memory_trace, variant="pre").run(max_cycles=3_000_000)
        assert stats.runahead_prefetches > 0
        assert stats.loads_hit_under_prefetch > 0

    def test_pre_emq_bounds_runahead_depth(self, stream_trace):
        small_emq = OoOCore(
            stream_trace,
            controller=PreciseRunaheadController(use_emq=True, emq_entries=64),
        )
        stats_small = small_emq.run(max_cycles=3_000_000)
        large_emq = OoOCore(
            stream_trace,
            controller=PreciseRunaheadController(use_emq=True, emq_entries=768),
        )
        stats_large = large_emq.run(max_cycles=3_000_000)
        assert stats_small.committed_uops == stats_large.committed_uops == len(stream_trace)
        assert stats_small.runahead_prefetches <= stats_large.runahead_prefetches

    def test_runahead_buffer_extracts_chains(self, memory_trace):
        controller = RunaheadBufferController()
        core = OoOCore(memory_trace, controller=controller)
        core.run(max_cycles=3_000_000)
        assert controller.buffer_stats.chains_built > 0
        assert controller.buffer_stats.average_chain_length >= 1.0

    def test_runahead_buffer_pointer_chase_chain_is_self_dependent(self):
        trace = linked_list_chase(num_uops=MEDIUM)
        controller = RunaheadBufferController()
        core = OoOCore(trace, controller=controller)
        core.run(max_cycles=4_000_000)
        if controller.buffer_stats.chains_built:
            assert controller.buffer_stats.self_dependent_chains > 0
        assert core.stats.runahead_prefetches == 0

    def test_runahead_useless_period_throttling_on_pointer_chase(self):
        trace = linked_list_chase(num_uops=MEDIUM)
        stats = build_core(trace, variant="runahead").run(max_cycles=4_000_000)
        # Pointer chasing generates no prefetches, so the Mutlu-style
        # throttling must kick in and keep most stalls out of runahead mode.
        assert stats.runahead_invocations < stats.full_window_stalls

    def test_variant_builder_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_controller("warp-drive")


class TestPerformanceOrdering:
    """The headline result: PRE improves performance over the baseline and
    over traditional runahead on multi-slice memory-intensive workloads."""

    @pytest.fixture(scope="class")
    def cycles(self):
        trace = multi_slice_kernel(num_uops=4_000, num_slices=4, work_per_iteration=16)
        results = {}
        for variant in VARIANTS:
            results[variant] = build_core(trace, variant=variant).run(max_cycles=4_000_000).cycles
        return results

    def test_pre_beats_baseline(self, cycles):
        assert cycles["pre"] < cycles["ooo"]

    def test_pre_emq_beats_baseline(self, cycles):
        assert cycles["pre_emq"] < cycles["ooo"]

    def test_pre_at_least_matches_traditional_runahead(self, cycles):
        assert cycles["pre"] <= cycles["runahead"] * 1.02

    def test_runahead_variants_do_not_catastrophically_regress(self, cycles):
        for variant in ("runahead", "runahead_buffer"):
            assert cycles[variant] < cycles["ooo"] * 1.15


class TestConfigOverrides:
    def test_with_overrides_creates_new_config(self):
        config = CoreConfig()
        small = config.with_overrides(rob_size=64)
        assert small.rob_size == 64
        assert config.rob_size == 192

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_size=0)
        with pytest.raises(ValueError):
            CoreConfig(int_registers=16)

    def test_table1_summary_mentions_key_parameters(self):
        summary = CoreConfig().summary()
        assert "ROB: 192" in summary["Core"]
        assert "168 int" in summary["Register file"]
        assert summary["PRDQ size"] == "192"
        assert summary["EMQ size"] == "768"

    def test_smaller_rob_still_simulates(self):
        trace = multi_slice_kernel(num_uops=SMALL, num_slices=2)
        config = CoreConfig().with_overrides(rob_size=64, issue_queue_size=32)
        stats = OoOCore(trace, config=config).run(max_cycles=2_000_000)
        assert stats.committed_uops == len(trace)
