"""Tests for the energy model, simulation drivers, metrics and report formatting."""

import pytest

from repro.analysis.report import (
    format_energy_figure,
    format_performance_figure,
    format_table,
    format_table1_configuration,
    summarize_comparison,
)
from repro.energy.cacti import SRAMModel, sram_access_energy_pj, sram_leakage_mw
from repro.energy.mcpat import EnergyBreakdown, EnergyParameters
from repro.energy.model import EnergyModel
from repro.simulation.experiment import run_comparison
from repro.simulation.metrics import (
    arithmetic_mean,
    energy_savings_percent,
    geometric_mean,
    interval_length_histogram,
    invocation_ratio,
    normalized_performance,
    speedup_percent,
)
from repro.simulation.simulator import Simulator, run_variant
from repro.uarch.config import CoreConfig
from repro.uarch.stats import CoreStats, RunaheadInterval
from repro.workloads.generators import multi_slice_kernel, strided_stream


class TestCactiModel:
    def test_energy_grows_with_capacity_and_ports(self):
        assert sram_access_energy_pj(4096) > sram_access_energy_pj(1024)
        assert sram_access_energy_pj(1024, ports=8) > sram_access_energy_pj(1024, ports=1)
        assert sram_leakage_mw(2048) > sram_leakage_mw(1024)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sram_access_energy_pj(0)
        with pytest.raises(ValueError):
            sram_leakage_mw(-1)

    def test_sram_model_totals(self):
        model = SRAMModel("sst", 1024, read_ports=8, write_ports=2)
        assert model.read_energy_pj > 0
        assert model.dynamic_energy_nj(reads=1000, writes=100) > 0
        assert model.static_energy_nj(seconds=1e-3) > 0


class TestEnergyBreakdown:
    def test_totals_are_sums(self):
        breakdown = EnergyBreakdown(frontend_nj=1.0, cache_nj=2.0, core_static_nj=3.0)
        assert breakdown.dynamic_nj == pytest.approx(3.0)
        assert breakdown.static_nj == pytest.approx(3.0)
        assert breakdown.total_nj == pytest.approx(6.0)
        assert breakdown.as_dict()["total_nj"] == pytest.approx(6.0)

    def test_parameters_as_dict(self):
        params = EnergyParameters()
        assert params.as_dict()["dram_access_pj"] == params.dram_access_pj


class TestEnergyModelOnRuns:
    @pytest.fixture(scope="class")
    def results(self):
        trace = multi_slice_kernel(num_uops=2_500, num_slices=4, work_per_iteration=16)
        simulator = Simulator()
        return {
            variant: simulator.run(trace, variant=variant, max_cycles=3_000_000)
            for variant in ("ooo", "runahead", "pre")
        }

    def test_energy_reports_are_positive_and_complete(self, results):
        for result in results.values():
            assert result.energy.total_nj > 0
            assert result.energy.breakdown.dynamic_nj > 0
            assert result.energy.breakdown.static_nj > 0
            assert result.energy.average_power_w > 0
            assert result.energy.seconds > 0

    def test_faster_variant_spends_less_static_energy(self, results):
        assert results["pre"].cycles < results["ooo"].cycles
        assert (
            results["pre"].energy.breakdown.static_nj
            < results["ooo"].energy.breakdown.static_nj
        )

    def test_pre_energy_does_not_exceed_runahead(self, results):
        # Figure 3: PRE is more energy-efficient than traditional runahead
        # because it never re-fetches and re-executes the full window.  On a
        # trace this small the margin is within a few percent of noise (PRE
        # keeps the front-end running during runahead, which dominates until
        # flush/refill costs amortise), so the bound is loose; the real
        # comparison runs at benchmark scale in benchmarks/test_bench_fig3.
        assert results["pre"].energy.total_nj <= results["runahead"].energy.total_nj * 1.05

    def test_savings_relative_to_is_symmetric_zero(self, results):
        baseline = results["ooo"].energy
        assert baseline.savings_relative_to(baseline) == pytest.approx(0.0)


class TestMetrics:
    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_means_reject_empty_sequences(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_normalized_performance_and_speedup(self):
        baseline = CoreStats(cycles=1000, committed_uops=1000)
        variant = CoreStats(cycles=800, committed_uops=1000)
        assert normalized_performance(variant, baseline) == pytest.approx(1.25)
        assert speedup_percent(variant, baseline) == pytest.approx(25.0)

    def test_invocation_ratio(self):
        a = CoreStats(runahead_invocations=162)
        b = CoreStats(runahead_invocations=100)
        assert invocation_ratio(a, b) == pytest.approx(1.62)
        assert invocation_ratio(a, CoreStats()) == float("inf")

    def test_energy_savings_percent(self):
        assert energy_savings_percent(94.0, 100.0) == pytest.approx(6.0)
        assert energy_savings_percent(100.0, 0.0) == 0.0

    def test_interval_histogram_binning(self):
        stats = CoreStats()
        for length in (5, 25, 75, 600):
            stats.intervals.append(RunaheadInterval(entry_cycle=0, exit_cycle=length))
        histogram = interval_length_histogram(stats, bin_edges=(20, 50, 100, 200, 500))
        assert histogram["<20"] == 1
        assert histogram["20-49"] == 1
        assert histogram["50-99"] == 1
        assert histogram[">=500"] == 1

    def test_short_interval_fraction(self):
        stats = CoreStats()
        stats.intervals.append(RunaheadInterval(entry_cycle=0, exit_cycle=10))
        stats.intervals.append(RunaheadInterval(entry_cycle=0, exit_cycle=100))
        assert stats.short_interval_fraction(20) == pytest.approx(0.5)


class TestSimulationDrivers:
    def test_run_variant_rejects_unknown(self):
        trace = strided_stream(num_uops=400)
        with pytest.raises(ValueError):
            run_variant(trace, variant="quantum")

    def test_run_variant_returns_complete_result(self):
        trace = strided_stream(num_uops=1_000)
        result = run_variant(trace, variant="pre", max_cycles=2_000_000)
        assert result.trace_name == "strided_stream"
        assert result.label == "PRE"
        assert result.ipc > 0
        assert result.total_energy_nj > 0

    def test_comparison_tables_and_summary(self):
        traces = [
            multi_slice_kernel(num_uops=1_500, num_slices=4, work_per_iteration=16),
            strided_stream(num_uops=1_500),
        ]
        comparison = run_comparison(traces, variants=("ooo", "runahead", "pre"))
        assert set(comparison.benchmark_names()) == {"multi_slice_kernel", "strided_stream"}
        perf = comparison.performance_table()
        assert "average" in perf
        assert "PRE" in perf["average"]
        energy = comparison.energy_table()
        assert "PRE" in energy["average"]
        assert comparison.mean_normalized_performance("pre") > 0.9
        bench = comparison.benchmark("strided_stream")
        assert bench.normalized_performance("pre") > 0.9
        summary = summarize_comparison(comparison)
        assert "pre" in summary
        with pytest.raises(KeyError):
            comparison.benchmark("does-not-exist")

    def test_reports_render_as_text(self):
        traces = [multi_slice_kernel(num_uops=1_200, num_slices=2, work_per_iteration=12)]
        comparison = run_comparison(traces, variants=("ooo", "pre"))
        fig2 = format_performance_figure(comparison)
        fig3 = format_energy_figure(comparison)
        assert "Figure 2" in fig2 and "PRE" in fig2
        assert "Figure 3" in fig3 and "%" in fig3
        table1 = format_table1_configuration(CoreConfig())
        assert "ROB: 192" in table1
        assert format_table({}) == ""

    def test_simulator_run_all_variants(self):
        trace = strided_stream(num_uops=800)
        simulator = Simulator()
        results = simulator.run_all_variants(trace, variants=("ooo", "pre"))
        assert set(results) == {"ooo", "pre"}
        assert all(result.stats.committed_uops == len(trace) for result in results.values())
