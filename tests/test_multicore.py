"""Multi-core simulation: lockstep equivalence, attribution, and contention.

The multi-core path makes three claims this suite pins down:

1. **Lockstep equivalence** — a one-core :func:`run_multicore` executes the
   exact stepping sequence of :meth:`OoOCore.run` over a degenerate one-core
   uncore, so every cell of the committed golden matrix must reproduce its
   ``CoreStats`` digest bit-for-bit through the multi-core driver.
2. **Attribution conservation** — the uncore's per-core L3/DRAM counters are
   bookkeeping carved out of the shared models' own statistics; summed over
   cores they must equal the shared totals exactly, for any core count and
   variant mix (property-based).
3. **Contention is real** — a PRE core paired with a memory-hungry neighbour
   loses IPC versus running alone, and the neighbour's traffic shows up in the
   per-core queue-delay/bus attribution.

The spec plumbing (``MultiCoreSpec`` through engine jobs, sweep cache keys and
study expansion) rides along in the later test groups.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_controller
from repro.memory.hierarchy import HierarchyConfig, PrivateHierarchy, SharedUncore
from repro.registry import build_workload
from repro.simulation.engine import ExperimentEngine, SweepSpec
from repro.simulation.golden import stats_digest
from repro.simulation.multicore import (
    DEFAULT_ADDRESS_STRIDE,
    CoreAssignment,
    MultiCoreSimulator,
    MultiCoreSpec,
    run_multicore,
)
from repro.simulation.simulator import SimulationRequest, run_simulation, run_variant
from repro.simulation.study import build_multicore_spec, build_study, study_jobs
from repro.uarch.core import OoOCore
from repro.uarch.probes import default_probes

GOLDEN_FILE = Path(__file__).resolve().parent / "goldens" / "golden_stats.json"


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_FILE.read_text())


# ------------------------------------------------- 1. lockstep equivalence


class TestSingleCoreGoldenIdentity:
    def test_every_golden_cell_reproduces_through_the_multicore_driver(self, goldens):
        """N=1 run_multicore is bit-identical to the single-core goldens."""
        num_uops = goldens["num_uops"]
        mismatches = []
        for workload in goldens["workloads"]:
            trace = build_workload(workload, num_uops=num_uops)
            for variant in goldens["variants"]:
                result = run_multicore([(trace, variant)])
                digest = stats_digest(result.stats)
                expected = goldens["cells"][f"{workload}/{variant}"]["digest"]
                if digest != expected:
                    mismatches.append(f"{workload}/{variant}")
        assert not mismatches, (
            "multicore N=1 diverged from the single-core goldens for: "
            + ", ".join(mismatches)
        )

    def test_one_core_result_carries_per_core_sections(self):
        trace = build_workload("bwaves", num_uops=400)
        result = run_multicore([(trace, "pre")])
        assert len(result.cores) == 1
        assert result.cores[0].core_id == 0
        assert result.cores[0].variant == "pre"
        assert result.cores[0].stats is result.stats
        assert result.uncore is not None
        assert result.uncore.num_cores == 1

    def test_matches_run_simulation_exactly(self):
        trace = build_workload("mcf", num_uops=600)
        single = run_simulation(trace, SimulationRequest(variant="runahead"))
        multi = run_multicore([(trace, "runahead")])
        assert stats_digest(multi.stats) == stats_digest(single.stats)
        assert multi.energy.total_nj == single.energy.total_nj


# ------------------------------------------- 2. attribution conservation


def _build_cores(assignments, num_uops, hierarchy_config=None):
    """(uncore, cores) for a list of (workload, variant) pairs."""
    hierarchy_config = hierarchy_config or HierarchyConfig()
    uncore = SharedUncore(config=hierarchy_config, num_cores=len(assignments))
    cores = []
    for core_id, (workload, variant) in enumerate(assignments):
        hierarchy = PrivateHierarchy(
            config=hierarchy_config,
            uncore=uncore,
            core_id=core_id,
            addr_offset=core_id * DEFAULT_ADDRESS_STRIDE,
        )
        cores.append(
            OoOCore(
                build_workload(workload, num_uops=num_uops),
                hierarchy=hierarchy,
                controller=build_controller(variant),
                probes=default_probes(),
            )
        )
    return uncore, cores


class TestAttributionConservation:
    @given(
        assignments=st.lists(
            st.tuples(
                st.sampled_from(["bwaves", "mcf", "milc"]),
                st.sampled_from(["ooo", "pre"]),
            ),
            min_size=1,
            max_size=3,
        ),
        num_uops=st.integers(min_value=120, max_value=350),
    )
    @settings(max_examples=12, deadline=None)
    def test_per_core_counters_sum_to_shared_totals(self, assignments, num_uops):
        uncore, cores = _build_cores(assignments, num_uops)
        MultiCoreSimulator(cores).run()
        assert sum(uncore.l3_hits) == uncore.l3.stats.hits
        assert sum(uncore.l3_misses) == uncore.l3.stats.misses
        assert sum(uncore.dram_reads) == uncore.dram.stats.reads
        assert sum(uncore.dram_writes) == uncore.dram.stats.writes
        # Attribution never goes negative and every list covers every core.
        for counters in (
            uncore.l3_hits,
            uncore.l3_misses,
            uncore.dram_reads,
            uncore.dram_writes,
            uncore.dram_queue_delay_cycles,
            uncore.bus_busy_cycles,
        ):
            assert len(counters) == len(assignments)
            assert all(value >= 0 for value in counters)

    def test_report_lists_are_copies_of_the_live_uncore(self):
        trace = build_workload("bwaves", num_uops=300)
        result = run_multicore([(trace, "pre"), (trace, "ooo")])
        report = result.uncore
        assert report.num_cores == 2
        assert sum(report.dram_reads) > 0
        assert sum(report.l3_misses) >= sum(report.dram_reads)


# ------------------------------------------------------ 3. contention smoke


class TestContention:
    def test_pre_loses_ipc_next_to_a_memory_hungry_neighbour(self):
        """bwaves/pre alone runs strictly faster than next to mcf/ooo."""
        num_uops = 2000
        bwaves = build_workload("bwaves", num_uops=num_uops)
        mcf = build_workload("mcf", num_uops=num_uops)
        solo = run_multicore([(bwaves, "pre")])
        paired = run_multicore([(bwaves, "pre"), (mcf, "ooo")])
        assert paired.ipc < solo.ipc
        # The neighbour's traffic is visible — and attributed to core 1.
        assert paired.uncore.dram_reads[1] > 0
        assert sum(paired.uncore.dram_queue_delay_cycles) > 0

    def test_heterogeneous_variants_per_core(self):
        trace = build_workload("bwaves", num_uops=400)
        result = run_multicore([(trace, "pre"), (trace, "ooo")])
        assert [core.variant for core in result.cores] == ["pre", "ooo"]
        assert result.variant == "pre"  # core 0 is the focus core

    def test_rejects_bad_inputs(self):
        trace = build_workload("bwaves", num_uops=100)
        with pytest.raises(ValueError, match="at least one"):
            run_multicore([])
        with pytest.raises(ValueError, match="unknown variant"):
            run_multicore([(trace, "warp")])
        with pytest.raises(ValueError, match="address_stride"):
            run_multicore([(trace, "ooo")], address_stride=0)


# ---------------------------------------------------- 4. request API + serde


class TestSimulationRequest:
    def test_round_trips_through_json(self):
        request = SimulationRequest(
            variant="pre", max_cycles=5000, probes=["mlp"], warmup_uops=0
        )
        assert SimulationRequest.from_dict(request.to_dict()) == request

    def test_run_variant_shim_matches_run_simulation(self):
        trace = build_workload("milc", num_uops=500)
        via_shim = run_variant(trace, "pre")
        via_request = run_simulation(trace, SimulationRequest(variant="pre"))
        assert stats_digest(via_shim.stats) == stats_digest(via_request.stats)

    def test_rejects_unknown_variant_and_negative_warmup(self):
        trace = build_workload("milc", num_uops=100)
        with pytest.raises(ValueError, match="unknown variant"):
            run_simulation(trace, SimulationRequest(variant="warp"))
        with pytest.raises(ValueError, match="warmup_uops"):
            run_simulation(trace, SimulationRequest(warmup_uops=-1))

    def test_multicore_spec_round_trips(self):
        spec = MultiCoreSpec(
            cores=[CoreAssignment(workload="mcf", variant="ooo", num_uops=800)],
            address_stride=1 << 20,
        )
        assert MultiCoreSpec.from_dict(spec.to_dict()) == spec
        assert spec.num_cores == 2
        with pytest.raises(ValueError, match="address_stride"):
            MultiCoreSpec(address_stride=0)


# --------------------------------------------------- 5. engine integration


def _contended_sweep(num_uops=300):
    return SweepSpec(
        workloads=["bwaves"],
        variants=["pre"],
        num_uops=num_uops,
        multicore=MultiCoreSpec(cores=[CoreAssignment(workload="mcf")]),
    )


class TestEngineMulticoreJobs:
    def test_multicore_results_flow_through_the_engine(self):
        engine = ExperimentEngine(workers=1)
        sweep = engine.run_sweep(_contended_sweep())
        for cell in sweep.cells:
            for result in cell.comparison.benchmarks[0].results.values():
                assert len(result.cores) == 2
                assert result.cores[1].variant == "ooo"
                assert result.cores[1].trace_name == "mcf"
                assert result.uncore is not None and result.uncore.num_cores == 2

    def test_second_run_is_fully_cached(self, tmp_path):
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        engine.run_sweep(_contended_sweep())
        stats = engine.last_run_stats
        assert stats.simulated == stats.total_jobs
        engine.run_sweep(_contended_sweep())
        stats = engine.last_run_stats
        assert stats.simulated == 0
        assert stats.cache_hits == stats.total_jobs
        # Per-core sections survive the cache round-trip.
        sweep = engine.run_sweep(_contended_sweep())
        result = next(iter(sweep.cells[0].comparison.benchmarks[0].results.values()))
        assert len(result.cores) == 2 and result.uncore is not None

    def test_cache_keys_differ_from_single_core_runs(self, tmp_path):
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        engine.run_sweep(_contended_sweep())
        engine.run_sweep(
            SweepSpec(workloads=["bwaves"], variants=["pre"], num_uops=300)
        )
        assert engine.last_run_stats.cache_hits == 0

    def test_multicore_rejects_window_replay(self):
        from repro.simulation.engine import JobSpec

        job = JobSpec(
            variant="pre",
            num_uops=200,
            trace_file="/tmp/nope.trace.gz",
            multicore=MultiCoreSpec(cores=[CoreAssignment(workload="mcf")]),
        )
        with pytest.raises(ValueError, match="multicore"):
            ExperimentEngine(workers=1).expand_job_payloads([job])


# ----------------------------------------------------- 6. study integration


class TestStudyIntegration:
    def test_build_multicore_spec_validation(self):
        assert build_multicore_spec({}) is None
        spec = build_multicore_spec({"co_workload": "mcf", "co_variant": "pre"})
        assert spec.num_cores == 2
        assert spec.cores[0] == CoreAssignment(workload="mcf", variant="pre")
        with pytest.raises(KeyError, match="co_wrkload"):
            build_multicore_spec({"co_wrkload": "mcf"})
        with pytest.raises(ValueError):
            build_multicore_spec({"co_runners": -1})
        with pytest.raises(ValueError):
            build_multicore_spec({"co_runners": 2})  # no co_workload
        with pytest.raises(ValueError):
            build_multicore_spec({"co_variant": "pre"})  # no co-runner

    def test_contention_study_expands_and_attaches_specs(self):
        spec = build_study("multicore-contention", num_uops=200)
        points = spec.expand()
        assert [point.label for point in points] == [
            "neighbor=none",
            "neighbor=ooo",
            "neighbor=pre",
        ]
        jobs = study_jobs(spec, ExperimentEngine(workers=1))
        # Every point runs through the multi-core path — "none" as a
        # degenerate one-core spec (the in-study no-contention baseline),
        # the other two with one mcf neighbour each.
        assert all(job.multicore is not None for job in jobs)
        solo = [job for job in jobs if job.multicore.num_cores == 1]
        paired = [job for job in jobs if job.multicore.num_cores == 2]
        assert len(solo) == len(jobs) // 3
        assert len(paired) == 2 * len(solo)
