"""Sensitivity-study subsystem: spec serde, expansion, caching, CLI, e2e."""

import json

import pytest

from repro.__main__ import main
from repro.memory.hierarchy import HierarchyConfig
from repro.simulation.engine import ExperimentEngine
from repro.simulation.study import (
    AxisPoint,
    STUDY_REGISTRY,
    StudyAxis,
    StudyResult,
    StudySpec,
    apply_hierarchy_overrides,
    build_study,
    run_study,
)

TINY_UOPS = 300


def tiny_spec(**overrides) -> StudySpec:
    defaults = dict(
        name="tiny",
        description="two-axis toy study",
        workloads=["mcf"],
        variants=["pre"],
        axes=[
            StudyAxis.core_field("rob_size", [128, 192]),
            StudyAxis.hierarchy_field("mshr_entries", [16, 32]),
        ],
        num_uops=TINY_UOPS,
    )
    defaults.update(overrides)
    return StudySpec(**defaults)


class TestStudySpecSerde:
    def test_round_trip_equality(self):
        spec = tiny_spec(base_core={"emq_entries": 384}, probes=["stall_breakdown"])
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = tiny_spec()
        rebuilt = StudySpec.from_json(spec.to_json())
        assert rebuilt == spec
        # Axis points survive with their override payloads intact and typed.
        assert rebuilt.axes[0].points[0].core == {"rob_size": 128}
        assert isinstance(rebuilt.axes[0].points[0].core["rob_size"], int)

    def test_registered_specs_round_trip(self):
        for name in STUDY_REGISTRY.names():
            spec = build_study(name)
            assert StudySpec.from_dict(spec.to_dict()) == spec


class TestExpansion:
    def test_cartesian_product_shape_and_order(self):
        points = tiny_spec().expand()
        assert [p.coordinates for p in points] == [
            {"rob_size": "128", "mshr_entries": "16"},
            {"rob_size": "128", "mshr_entries": "32"},
            {"rob_size": "192", "mshr_entries": "16"},
            {"rob_size": "192", "mshr_entries": "32"},
        ]
        assert points[0].core_overrides == {"rob_size": 128}
        assert points[0].hierarchy_overrides == {"mshr_entries": 16}

    def test_expansion_is_deterministic(self):
        spec = tiny_spec()
        assert spec.expand() == spec.expand()

    def test_base_overrides_apply_to_every_point(self):
        spec = tiny_spec(base_core={"emq_entries": 384})
        for point in spec.expand():
            assert point.core_overrides["emq_entries"] == 384

    def test_conflicting_axes_rejected(self):
        spec = tiny_spec(
            axes=[
                StudyAxis.core_field("rob_size", [128]),
                StudyAxis(
                    name="window",
                    points=[AxisPoint(label="big", core={"rob_size": 384})],
                ),
            ]
        )
        with pytest.raises(ValueError, match="both override core field"):
            spec.expand()

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError, match="declares no axes"):
            tiny_spec(axes=[]).expand()

    def test_typoed_core_field_is_a_clean_spec_error(self):
        spec = tiny_spec(axes=[StudyAxis.core_field("rob_sie", [128])])
        with pytest.raises(KeyError, match="unknown CoreConfig field"):
            spec.expand()
        with pytest.raises(KeyError, match="base_core"):
            tiny_spec(base_core={"warp_factor": 9}).expand()

    def test_unknown_names_rejected_early(self):
        with pytest.raises(KeyError, match="unknown workload"):
            tiny_spec(workloads=["not-a-benchmark"]).resolved_workloads()
        with pytest.raises(KeyError, match="unknown variant"):
            tiny_spec(variants=["warp-drive"]).resolved_variants()

    def test_baseline_always_included(self):
        assert tiny_spec().resolved_variants()[0] == "ooo"


class TestHierarchyOverrides:
    def test_flat_and_dotted_paths(self):
        base = HierarchyConfig()
        rebuilt = apply_hierarchy_overrides(
            base, {"mshr_entries": 8, "dram.controller_latency_cycles": 160}
        )
        assert rebuilt.mshr_entries == 8
        assert rebuilt.dram.controller_latency_cycles == 160
        # The base configuration is never mutated.
        assert base.mshr_entries == 32
        assert base.dram.controller_latency_cycles == 40

    def test_none_base_uses_defaults(self):
        rebuilt = apply_hierarchy_overrides(None, {"prefetcher": "stride"})
        assert rebuilt.prefetcher == "stride"
        assert rebuilt.mshr_entries == HierarchyConfig().mshr_entries

    def test_empty_overrides_return_base_unchanged(self):
        assert apply_hierarchy_overrides(None, {}) is None
        base = HierarchyConfig()
        assert apply_hierarchy_overrides(base, {}) is base

    def test_unknown_path_rejected(self):
        with pytest.raises(KeyError, match="unknown hierarchy override path"):
            apply_hierarchy_overrides(None, {"dram.warp_factor": 9})
        with pytest.raises(KeyError, match="unknown hierarchy override path"):
            apply_hierarchy_overrides(None, {"flux.capacitor": 1})


class TestStudyRegistry:
    def test_at_least_four_paper_studies(self):
        names = STUDY_REGISTRY.names()
        assert len(names) >= 4
        for expected in (
            "rob-scaling",
            "emq-sensitivity",
            "mshr-prefetch-interaction",
            "dram-latency",
        ):
            assert expected in names

    def test_every_registered_study_expands(self):
        for name in STUDY_REGISTRY.names():
            spec = build_study(name)
            assert spec.name == name
            assert spec.expand()
            spec.resolved_workloads()
            spec.resolved_variants()

    def test_build_study_narrowing(self):
        spec = build_study("rob-scaling", num_uops=123, workloads=["mcf"])
        assert spec.num_uops == 123
        assert spec.workloads == ["mcf"]
        # The registered spec itself is untouched.
        assert build_study("rob-scaling").num_uops != 123


class TestRunStudy:
    @pytest.fixture(scope="class")
    def study_cache(self, tmp_path_factory):
        return tmp_path_factory.mktemp("study-cache")

    @pytest.fixture(scope="class")
    def study_result(self, study_cache) -> StudyResult:
        spec = build_study("rob-scaling", num_uops=TINY_UOPS, workloads=["mcf"])
        engine = ExperimentEngine(cache_dir=study_cache)
        return run_study(spec, engine=engine)

    def test_one_point_per_rob_size(self, study_result):
        assert [p.point.coordinates["rob_size"] for p in study_result.points] == [
            "128", "192", "256", "384",
        ]

    def test_full_grid_per_point(self, study_result):
        variants = study_result.variants()
        assert variants[0] == "ooo"
        for point in study_result.points:
            assert point.comparison.benchmark_names() == ["mcf"]
            for bench in point.comparison.benchmarks:
                assert set(bench.results) == set(variants)

    def test_point_configs_actually_differ(self, study_result):
        configs = [
            point.comparison.benchmarks[0].results["pre"].config.rob_size
            for point in study_result.points
        ]
        assert configs == [128, 192, 256, 384]

    def test_accounting_covers_the_grid(self, study_result):
        expected = 4 * 1 * len(study_result.variants())
        assert study_result.total_jobs == expected
        assert study_result.simulated == expected
        assert study_result.cache_hits == 0

    def test_rerun_is_fully_cached(self, study_result, study_cache):
        # Same cache directory as the fixture's run: everything must hit.
        spec = build_study("rob-scaling", num_uops=TINY_UOPS, workloads=["mcf"])
        engine = ExperimentEngine(cache_dir=study_cache)
        again = run_study(spec, engine=engine)
        assert again.simulated == 0
        assert again.cache_hits == again.total_jobs == study_result.total_jobs
        # Cached results are bit-identical to the freshly simulated ones.
        assert [p.comparison.to_dict() for p in again.points] == [
            p.comparison.to_dict() for p in study_result.points
        ]

    def test_result_serde_round_trip(self, study_result):
        rebuilt = StudyResult.from_dict(study_result.to_dict())
        assert rebuilt.to_dict() == study_result.to_dict()

    def test_markdown_has_one_row_per_point(self, study_result):
        from repro.analysis.report import format_study_markdown

        text = format_study_markdown(study_result)
        for size in ("128", "192", "256", "384"):
            assert f"| {size} |" in text
        assert "**geomean**" in text
        assert "Δ% pre" in text

    def test_csv_rows_cover_every_cell(self, study_result):
        from repro.analysis.report import study_csv_rows

        rows = study_csv_rows(study_result)
        assert len(rows) == study_result.total_jobs
        assert {row["rob_size"] for row in rows} == {"128", "192", "256", "384"}
        for row in rows:
            assert row["ipc"] > 0
            if row["variant"] == "ooo":
                assert row["speedup_percent"] == 0.0


class TestStudyCLI:
    def test_list_and_quiet(self, capsys):
        assert main(["study", "list"]) == 0
        assert "rob-scaling" in capsys.readouterr().out
        assert main(["study", "list", "--quiet"]) == 0
        names = capsys.readouterr().out.split()
        assert names == STUDY_REGISTRY.names()

    def test_run_report_round_trip(self, tmp_path, capsys):
        output = tmp_path / "study.json"
        csv_path = tmp_path / "study.csv"
        code = main([
            "study", "run", "rob-scaling",
            "--uops", str(TINY_UOPS), "--workloads", "mcf",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(output), "--csv", str(csv_path),
        ])
        assert code == 0
        run_out = capsys.readouterr().out
        assert "## Study: rob-scaling" in run_out
        assert csv_path.exists()
        with output.open() as handle:
            saved = StudyResult.from_dict(json.load(handle))
        assert len(saved.points) == 4
        assert main(["study", "report", str(output)]) == 0
        assert "## Study: rob-scaling" in capsys.readouterr().out

    def test_unknown_study_is_a_clean_error(self, capsys):
        assert main(["study", "run", "warp-drive"]) == 2
        assert "unknown study" in capsys.readouterr().err
