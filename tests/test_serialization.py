"""JSON round-trip equality for every persisted dataclass."""

import json

import pytest

from repro.energy.mcpat import EnergyBreakdown
from repro.energy.model import EnergyReport
from repro.memory.cache import CacheConfig
from repro.memory.dram import DRAMConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.simulation.experiment import BenchmarkResult, ComparisonResult, run_comparison
from repro.simulation.simulator import SimulationResult, run_variant
from repro.uarch.config import CoreConfig
from repro.uarch.stats import CoreStats, EventCounts, ResourceSnapshot, RunaheadInterval
from repro.workloads.spec_surrogates import build_surrogate


@pytest.fixture(scope="module")
def pre_result() -> SimulationResult:
    trace = build_surrogate("milc", num_uops=1_000)
    return run_variant(trace, variant="pre")


@pytest.fixture(scope="module")
def comparison() -> ComparisonResult:
    traces = [build_surrogate(name, num_uops=800) for name in ("milc", "mcf")]
    return run_comparison(traces, variants=("ooo", "runahead", "pre"))


def roundtrip(obj):
    """to_dict -> JSON text -> from_dict, mirroring the on-disk cache path."""
    data = json.loads(json.dumps(obj.to_dict()))
    return type(obj).from_dict(data)


class TestConfigRoundTrips:
    def test_core_config(self):
        config = CoreConfig(rob_size=256, frequency_ghz=3.2)
        assert roundtrip(config) == config

    def test_core_config_json_string(self):
        config = CoreConfig()
        assert CoreConfig.from_json(config.to_json()) == config

    def test_cache_config(self):
        config = CacheConfig("L1D", 32 * 1024, 8, latency=4)
        assert roundtrip(config) == config

    def test_dram_config(self):
        config = DRAMConfig(num_banks=16)
        assert roundtrip(config) == config

    def test_hierarchy_config(self):
        config = HierarchyConfig(mshr_entries=16, prefetcher="stride")
        restored = roundtrip(config)
        assert restored == config
        assert isinstance(restored.l1d, CacheConfig)
        assert isinstance(restored.dram, DRAMConfig)


class TestStatsRoundTrips:
    def test_event_counts(self):
        events = EventCounts(fetched_uops=10, emq_writes=3)
        assert roundtrip(events) == events

    def test_core_stats_from_real_run(self, pre_result):
        stats = pre_result.stats
        restored = roundtrip(stats)
        assert restored == stats
        assert isinstance(restored.events, EventCounts)
        assert all(isinstance(i, RunaheadInterval) for i in restored.intervals)
        assert all(isinstance(s, ResourceSnapshot) for s in restored.stall_snapshots)
        assert restored.ipc == stats.ipc

    def test_energy_report_from_real_run(self, pre_result):
        report = pre_result.energy
        restored = roundtrip(report)
        assert restored == report
        assert isinstance(restored.breakdown, EnergyBreakdown)
        assert restored.total_nj == report.total_nj


class TestResultRoundTrips:
    def test_simulation_result(self, pre_result):
        restored = roundtrip(pre_result)
        assert restored == pre_result
        assert restored.label == "PRE"
        assert restored.ipc == pre_result.ipc
        assert restored.total_energy_nj == pre_result.total_energy_nj

    def test_benchmark_result(self, comparison):
        bench = comparison.benchmarks[0]
        restored = roundtrip(bench)
        assert restored == bench
        assert restored.normalized_performance("pre") == bench.normalized_performance("pre")

    def test_comparison_result(self, comparison):
        restored = roundtrip(comparison)
        assert restored == comparison
        assert restored.performance_table() == comparison.performance_table()
        assert restored.energy_table() == comparison.energy_table()
        assert restored.benchmark("milc").benchmark == "milc"

    def test_comparison_private_index_not_serialized(self, comparison):
        comparison.benchmark("milc")  # force the index to exist
        assert "_name_index" not in comparison.to_dict()

    def test_comparison_lookup_sees_in_place_replacement(self, comparison):
        original = comparison.benchmark("milc")
        position = comparison.benchmark_names().index("milc")
        replacement = BenchmarkResult(benchmark="milc", results=dict(original.results))
        comparison.benchmarks[position] = replacement
        try:
            assert comparison.benchmark("milc") is replacement
        finally:
            comparison.benchmarks[position] = original


class TestComparisonLookup:
    def test_benchmark_lookup_unknown_name(self, comparison):
        with pytest.raises(KeyError, match="no benchmark named 'nonesuch'"):
            comparison.benchmark("nonesuch")

    def test_benchmark_lookup_sees_appended_rows(self, comparison):
        extra = BenchmarkResult(
            benchmark="extra", results=dict(comparison.benchmarks[0].results)
        )
        comparison.benchmarks.append(extra)
        try:
            assert comparison.benchmark("extra") is extra
        finally:
            comparison.benchmarks.pop()

    def test_mean_invocation_ratio_all_degenerate(self, comparison):
        # Comparing the baseline (0 invocations) against itself filters out
        # every per-benchmark ratio.
        with pytest.raises(ValueError, match="no usable invocation ratios"):
            comparison.mean_invocation_ratio("ooo", reference="ooo")
