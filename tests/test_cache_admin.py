"""Result-cache administration: size bounds, LRU eviction, concurrency, keys.

Four contracts:

* **stats/prune**: ``stats()`` reports live entry counts and bytes;
  ``prune(max_bytes)`` evicts oldest-*use* first (hits refresh recency via
  mtime) and reports exactly what it removed;
* **auto-eviction**: a cache constructed with ``max_bytes`` never exceeds
  its bound after a ``put``;
* **concurrency**: writes are write-then-rename atomic — concurrent readers
  of a key being overwritten see either a complete old or a complete new
  payload, never a torn one — and ``contains()`` never perturbs the
  hit/miss counters (the service's admission probe depends on that);
* **key stability**: ``_job_cache_key`` is a pure function of the schema-v4
  descriptor fields — property-tested (hypothesis) for determinism,
  insensitivity to dict ordering, and sensitivity to every field the v4
  schema added (probes, window, warmup).
"""

import json
import os
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.simulation.engine import (
    CacheStats,
    ExperimentEngine,
    PruneResult,
    ResultCache,
    SweepSpec,
    _job_cache_key,
)


def put_sized(cache, key, approx_bytes):
    """Store an entry of roughly ``approx_bytes`` on disk."""
    cache.put(key, {"pad": "x" * approx_bytes})


def set_age(cache, key, age_s):
    """Backdate an entry's recency by ``age_s`` seconds (deterministic LRU)."""
    path = cache.path_for(key)
    stamp = os.stat(path).st_mtime - age_s
    os.utime(path, (stamp, stamp))


# ---------------------------------------------------------------- stats/prune


def test_stats_counts_entries_and_bytes(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.stats() == CacheStats(
        directory=str(tmp_path), entries=0, total_bytes=0
    )
    put_sized(cache, "a", 100)
    put_sized(cache, "b", 200)
    stats = cache.stats()
    assert stats.entries == 2
    assert stats.total_bytes == sum(
        os.path.getsize(cache.path_for(k)) for k in ("a", "b")
    )


def test_prune_evicts_least_recently_used_first(tmp_path):
    cache = ResultCache(tmp_path)
    for key, age in (("old", 300), ("mid", 200), ("new", 100)):
        put_sized(cache, key, 100)
        set_age(cache, key, age)
    keep = os.path.getsize(cache.path_for("new"))
    result = cache.prune(max_bytes=keep)
    assert isinstance(result, PruneResult)
    assert result.evicted == 2
    assert result.remaining_entries == 1
    assert not cache.contains("old") and not cache.contains("mid")
    assert cache.contains("new")
    assert cache.evictions == 2


def test_hit_refreshes_recency_and_spares_hot_entries(tmp_path):
    cache = ResultCache(tmp_path)
    put_sized(cache, "hot", 100)
    put_sized(cache, "cold", 100)
    for key in ("hot", "cold"):
        set_age(cache, key, 1000)
    assert cache.get("hot") is not None  # the hit touches mtime
    cache.prune(max_bytes=os.path.getsize(cache.path_for("hot")))
    assert cache.contains("hot")
    assert not cache.contains("cold")


def test_prune_zero_empties_cache(tmp_path):
    cache = ResultCache(tmp_path)
    put_sized(cache, "a", 10)
    result = cache.prune(max_bytes=0)
    assert result.remaining_entries == 0 and result.remaining_bytes == 0
    assert len(cache) == 0


def test_prune_without_bound_raises(tmp_path):
    cache = ResultCache(tmp_path)
    with pytest.raises(ValueError, match="max_bytes"):
        cache.prune()


def test_put_auto_evicts_to_configured_bound(tmp_path):
    # A bound smaller than any single entry means every put self-evicts.
    cache = ResultCache(tmp_path / "tiny", max_bytes=1)
    put_sized(cache, "a", 50)
    assert len(cache) == 0

    roomy = ResultCache(tmp_path / "roomy", max_bytes=10_000)
    for index in range(50):
        put_sized(roomy, f"k{index}", 300)
        assert roomy.stats().total_bytes <= 10_000
    assert 0 < len(roomy) < 50  # bounded, not emptied


def test_unbounded_cache_never_auto_evicts(tmp_path):
    cache = ResultCache(tmp_path)
    for index in range(20):
        put_sized(cache, f"k{index}", 200)
    assert len(cache) == 20
    assert cache.evictions == 0


# ---------------------------------------------------------------- concurrency


def test_contains_does_not_touch_counters(tmp_path):
    cache = ResultCache(tmp_path)
    put_sized(cache, "a", 10)
    assert cache.contains("a") and not cache.contains("b")
    assert (cache.hits, cache.misses) == (0, 0)
    assert cache.get("a") is not None
    assert (cache.hits, cache.misses) == (1, 0)


def test_concurrent_overwrites_never_yield_torn_reads(tmp_path):
    """Write-then-rename atomicity under real thread contention."""
    cache = ResultCache(tmp_path)
    key = "contended"
    payloads = [{"generation": g, "fill": "y" * 2000} for g in range(2)]
    cache.put(key, payloads[0])
    stop = threading.Event()
    failures = []

    def writer():
        generation = 0
        while not stop.is_set():
            cache.put(key, payloads[generation % 2])
            generation += 1

    def reader():
        while not stop.is_set():
            payload = cache.get(key)
            if payload is None or payload not in payloads:
                failures.append(payload)

    threads = [threading.Thread(target=writer) for _ in range(2)]
    threads += [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    threading.Event().wait(0.5)
    stop.set()
    for thread in threads:
        thread.join()
    assert failures == []


def test_concurrent_put_prune_is_safe(tmp_path):
    """Prune racing fresh puts neither crashes nor corrupts survivors."""
    cache = ResultCache(tmp_path)
    stop = threading.Event()
    errors = []

    def writer(tag):
        index = 0
        while not stop.is_set():
            try:
                cache.put(f"{tag}-{index % 20}", {"tag": tag, "index": index})
            except Exception as exc:  # noqa: BLE001 — the test asserts "never"
                errors.append(exc)
            index += 1

    def pruner():
        while not stop.is_set():
            try:
                cache.prune(max_bytes=500)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,)) for t in "ab"]
    threads.append(threading.Thread(target=pruner))
    for thread in threads:
        thread.start()
    threading.Event().wait(0.5)
    stop.set()
    for thread in threads:
        thread.join()
    assert errors == []
    for path in cache.directory.glob("*.json"):
        json.loads(path.read_text())  # every survivor is complete JSON


def test_engine_cache_probe_counts_without_perturbing(tmp_path):
    engine = ExperimentEngine(cache_dir=tmp_path / "cache")
    spec = SweepSpec(workloads=["mcf"], variants=["ooo"], num_uops=200)
    payloads = engine.expand_sweep_payloads(spec)
    assert engine.cache_probe(payloads) == (0, 1)
    engine.run_sweep(spec)
    hits_before = (engine.cache.hits, engine.cache.misses)
    assert engine.cache_probe(payloads) == (1, 1)
    assert (engine.cache.hits, engine.cache.misses) == hits_before


# ------------------------------------------------------------------ CLI admin


def test_cache_cli_stats_and_prune(tmp_path, capsys):
    cache = ResultCache(tmp_path / "cache")
    put_sized(cache, "a", 100)
    put_sized(cache, "b", 100)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 2

    assert main(
        ["cache", "prune", "--cache-dir", str(tmp_path / "cache"),
         "--max-bytes", "0"]
    ) == 0
    pruned = json.loads(capsys.readouterr().out)
    assert pruned["evicted"] == 2 and pruned["remaining_entries"] == 0


def test_cache_cli_requires_exactly_one_target(tmp_path, capsys):
    assert main(["cache", "stats"]) == 2
    assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "exactly one of" in err and "--max-bytes" in err


# ------------------------------------------------------------- key stability


def _payload(variant, num_uops, max_cycles, probes, window, warmup):
    return {
        "variant": variant,
        "source": {"kind": "workload", "name": "mcf", "num_uops": num_uops},
        "config": {"rob_size": 128},
        "hierarchy": None,
        "max_cycles": max_cycles,
        "probes": list(probes),
        "window": list(window) if window is not None else None,
        "warmup_uops": warmup,
    }


_descriptors = st.tuples(
    st.sampled_from(["ooo", "pre"]),
    st.integers(min_value=1, max_value=10**6),
    st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
    st.lists(st.sampled_from(["mlp", "occupancy", "energy"]), max_size=3),
    st.one_of(
        st.none(),
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=101, max_value=200),
        ),
    ),
    st.integers(min_value=0, max_value=64),
)


@settings(max_examples=200, deadline=None)
@given(_descriptors, _descriptors)
def test_job_cache_key_is_stable_and_field_sensitive(a, b):
    key_a = _job_cache_key(_payload(*a))
    assert key_a == _job_cache_key(_payload(*a))  # deterministic
    # Distinct schema-v4 descriptors get distinct keys (and equal ones equal
    # keys): every field — probes, window, warmup included — is load-bearing.
    assert (key_a == _job_cache_key(_payload(*b))) == (a == b)


@settings(max_examples=50, deadline=None)
@given(_descriptors)
def test_job_cache_key_ignores_dict_ordering(descriptor):
    payload = _payload(*descriptor)
    reordered = dict(reversed(list(payload.items())))
    assert _job_cache_key(payload) == _job_cache_key(reordered)
