"""Tests for the throughput-benchmark harness (``python -m repro bench``)."""

from __future__ import annotations

import json

import pytest

from repro.simulation.perfbench import (
    BenchReport,
    compare_cells,
    compare_reports,
    comparison_failures,
    format_report,
    load_report,
    next_bench_path,
    run_bench,
    write_report,
)


@pytest.fixture(scope="module")
def tiny_report() -> BenchReport:
    return run_bench(
        workloads=("milc",), variants=("ooo", "pre"), num_uops=300, repeats=1
    )


class TestRunBench:
    def test_matrix_and_throughput_fields(self, tiny_report):
        report = tiny_report
        assert [(c.workload, c.variant) for c in report.cells] == [
            ("milc", "ooo"),
            ("milc", "pre"),
        ]
        for cell in report.cells:
            assert cell.num_uops == 300
            # Generators round a trace up to whole loop iterations.
            assert cell.committed_uops >= 300
            assert cell.cycles > 0
            assert cell.wall_seconds > 0
            assert cell.uops_per_second == pytest.approx(
                cell.committed_uops / cell.wall_seconds
            )
            assert cell.cycles_per_second == pytest.approx(
                cell.cycles / cell.wall_seconds
            )
            assert len(cell.stats_digest) == 64
        assert report.total_wall_seconds == pytest.approx(
            sum(c.wall_seconds for c in report.cells)
        )
        assert report.total_uops_per_second > 0

    def test_digests_are_timing_fingerprints(self, tiny_report):
        """Re-running the same cell reproduces the digest (determinism), and
        different variants differ (the digest actually sees the timing)."""
        again = run_bench(
            workloads=("milc",), variants=("ooo",), num_uops=300, repeats=1
        )
        assert again.cells[0].stats_digest == tiny_report.cells[0].stats_digest
        assert tiny_report.cells[0].stats_digest != tiny_report.cells[1].stats_digest

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_bench(workloads=(), variants=(), repeats=0)


class TestReportIO:
    def test_write_load_round_trip(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path / "BENCH_0.json")
        loaded = load_report(path)
        assert loaded.to_dict() == tiny_report.to_dict()
        # The file is plain JSON so CI can archive/inspect it directly.
        with path.open() as handle:
            assert json.load(handle)["schema"] == tiny_report.schema

    def test_next_bench_path_auto_numbers(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_0.json"
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_8.json"

    def test_format_report_lists_every_cell(self, tiny_report):
        text = format_report(tiny_report)
        assert "milc" in text and "ooo" in text and "pre" in text
        assert "TOTAL" in text


class TestCompare:
    def test_speedup_table(self, tiny_report):
        text = compare_reports(tiny_report, tiny_report)
        assert "1.00x" in text
        assert "geomean speedup" in text
        assert "diverged" not in text

    def test_flags_digest_divergence(self, tiny_report):
        mutated = BenchReport.from_dict(tiny_report.to_dict())
        mutated.cells[0].stats_digest = "0" * 64
        text = compare_reports(tiny_report, mutated)
        assert "stats digest diverged" in text

    def test_new_cells_are_reported(self, tiny_report):
        baseline = BenchReport.from_dict(tiny_report.to_dict())
        baseline.cells = baseline.cells[:1]
        text = compare_reports(baseline, tiny_report)
        assert "new" in text


class TestRegressionGate:
    """The CI gate behind ``bench --compare [--max-slowdown]``."""

    def test_identical_reports_pass(self, tiny_report):
        deltas = compare_cells(tiny_report, tiny_report)
        assert all(d.speedup == pytest.approx(1.0) for d in deltas)
        assert comparison_failures(deltas, max_slowdown_percent=25.0) == []

    def test_digest_divergence_always_fails(self, tiny_report):
        mutated = BenchReport.from_dict(tiny_report.to_dict())
        mutated.cells[0].stats_digest = "0" * 64
        deltas = compare_cells(tiny_report, mutated)
        failures = comparison_failures(deltas)  # no slowdown threshold at all
        assert len(failures) == 1
        assert "digest diverged" in failures[0]
        assert mutated.cells[0].workload in failures[0]

    def test_digests_incomparable_across_uop_counts(self, tiny_report):
        mutated = BenchReport.from_dict(tiny_report.to_dict())
        mutated.cells[0].stats_digest = "0" * 64
        mutated.cells[0].num_uops = tiny_report.cells[0].num_uops * 2
        deltas = compare_cells(tiny_report, mutated)
        assert not deltas[0].digests_comparable
        assert not deltas[0].digest_diverged
        assert comparison_failures(deltas) == []

    def test_slowdown_beyond_threshold_fails(self, tiny_report):
        mutated = BenchReport.from_dict(tiny_report.to_dict())
        mutated.cells[0].uops_per_second = (
            tiny_report.cells[0].uops_per_second * 0.5
        )
        deltas = compare_cells(tiny_report, mutated)
        assert comparison_failures(deltas) == []  # informational without a bound
        failures = comparison_failures(deltas, max_slowdown_percent=25.0)
        assert len(failures) == 1
        assert "slowdown" in failures[0]
        # A 50% drop passes a looser 60% bound.
        assert comparison_failures(deltas, max_slowdown_percent=60.0) == []

    def test_new_cells_never_fail_the_gate(self, tiny_report):
        baseline = BenchReport.from_dict(tiny_report.to_dict())
        baseline.cells = baseline.cells[:1]
        deltas = compare_cells(baseline, tiny_report)
        assert deltas[-1].speedup is None
        assert comparison_failures(deltas, max_slowdown_percent=25.0) == []

    def test_cli_rejects_max_slowdown_without_compare(self, capsys):
        from repro.__main__ import main
        from repro.errors import EXIT_BAD_SPEC

        assert main(["bench", "--no-write", "--max-slowdown", "25"]) == EXIT_BAD_SPEC
        assert "requires --compare" in capsys.readouterr().err

    def test_cli_exits_nonzero_on_divergence(self, tiny_report, tmp_path, capsys):
        from repro.__main__ import main

        mutated = BenchReport.from_dict(tiny_report.to_dict())
        mutated.cells = [mutated.cells[0]]
        mutated.cells[0].stats_digest = "0" * 64
        baseline_path = write_report(mutated, tmp_path / "baseline.json")
        code = main([
            "bench", "--benchmarks", "milc", "--variants", "ooo",
            "--uops", "300", "--no-write", "--compare", str(baseline_path),
        ])
        assert code == 1
        assert "regression gate FAILED" in capsys.readouterr().err
