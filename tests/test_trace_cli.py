"""Trace record/info/replay CLI and content-keyed result caching."""

import json

from repro.__main__ import main
from repro.registry import build_workload
from repro.simulation.engine import ExperimentEngine
from repro.simulation.simulator import run_variant
from repro.workloads.source import FileTraceSource, write_trace_file


def record(tmp_path, workload="milc", uops=600, name=None, filename="t.trc"):
    path = tmp_path / filename
    argv = ["trace", "record", "--workload", workload, "--uops", str(uops),
            "--output", str(path)]
    if name:
        argv += ["--name", name]
    assert main(argv) == 0
    return path


class TestRecordInfo:
    def test_record_then_info(self, tmp_path, capsys):
        path = record(tmp_path, workload="milc", uops=600)
        out = capsys.readouterr().out
        assert "recorded" in out and "milc" in out
        assert main(["trace", "info", str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "micro-ops: " in out
        assert "loads" in out

    def test_recorded_stream_matches_workload(self, tmp_path):
        path = record(tmp_path, workload="mcf", uops=500)
        trace = build_workload("mcf", num_uops=500)
        assert list(FileTraceSource(path)) == list(trace)

    def test_record_unknown_workload_fails_cleanly(self, tmp_path):
        rc = main(["trace", "record", "--workload", "nope",
                   "--output", str(tmp_path / "x.trc")])
        assert rc == 2

    def test_info_on_non_trace_file(self, tmp_path):
        bogus = tmp_path / "bogus.trc"
        bogus.write_text("hello")
        assert main(["trace", "info", str(bogus)]) == 2


class TestReplay:
    def test_replay_matches_direct_simulation(self, tmp_path, capsys):
        path = record(tmp_path, workload="milc", uops=600)
        capsys.readouterr()
        out_json = tmp_path / "cmp.json"
        rc = main(["trace", "replay", str(path), "--variants", "pre",
                   "--figure", "summary", "--output", str(out_json)])
        assert rc == 0
        payload = json.loads(out_json.read_text())
        replayed = payload["benchmarks"][0]["results"]["pre"]
        direct = run_variant(FileTraceSource(path), variant="pre")
        assert replayed["stats"] == direct.stats.to_dict()
        assert replayed["energy"] == direct.energy.to_dict()

    def test_replay_uses_header_name_as_benchmark(self, tmp_path, capsys):
        path = record(tmp_path, workload="milc", uops=500, name="renamed")
        capsys.readouterr()
        out_json = tmp_path / "cmp.json"
        assert main(["trace", "replay", str(path), "--variants", "pre",
                     "--figure", "summary", "--output", str(out_json)]) == 0
        payload = json.loads(out_json.read_text())
        assert payload["benchmarks"][0]["benchmark"] == "renamed"


class TestContentKeyedCache:
    """Satellite: edited/re-recorded trace files never serve stale cached cells."""

    def test_replay_cache_hit_then_invalidation_on_rerecord(self, tmp_path):
        path = tmp_path / "bench.trc"
        cache = tmp_path / "cache"
        write_trace_file(path, build_workload("milc", num_uops=600), name="bench")

        engine = ExperimentEngine(cache_dir=cache)
        first = engine.run_trace_files([path], variants=["pre"])
        assert engine.last_run_stats.simulated == 2  # ooo + pre

        # Identical file -> full cache hit.
        engine = ExperimentEngine(cache_dir=cache)
        cached = engine.run_trace_files([path], variants=["pre"])
        assert engine.last_run_stats.simulated == 0
        assert engine.last_run_stats.cache_hits == 2
        assert cached.to_dict() == first.to_dict()

        # Re-record different content under the SAME name and path: the
        # content digest changes, so nothing stale is served.
        write_trace_file(path, build_workload("mcf", num_uops=600), name="bench")
        engine = ExperimentEngine(cache_dir=cache)
        replayed = engine.run_trace_files([path], variants=["pre"])
        assert engine.last_run_stats.simulated == 2
        assert engine.last_run_stats.cache_hits == 0
        assert replayed.to_dict() != first.to_dict()

    def test_identical_content_hits_cache_from_a_different_path(self, tmp_path):
        first = tmp_path / "a.trc"
        cache = tmp_path / "cache"
        write_trace_file(first, build_workload("milc", num_uops=500), name="bench")
        engine = ExperimentEngine(cache_dir=cache)
        engine.run_trace_files([first], variants=["pre"])
        assert engine.last_run_stats.simulated == 2

        moved = tmp_path / "subdir" / "b.trc"
        moved.parent.mkdir()
        moved.write_bytes(first.read_bytes())
        engine = ExperimentEngine(cache_dir=cache)
        engine.run_trace_files([moved], variants=["pre"])
        # Content keying: same bytes at a new path is a full cache hit.
        assert engine.last_run_stats.simulated == 0
        assert engine.last_run_stats.cache_hits == 2

    def test_cli_replay_cache_roundtrip(self, tmp_path, capsys):
        path = record(tmp_path, workload="milc", uops=500)
        cache = str(tmp_path / "cache")
        assert main(["trace", "replay", str(path), "--variants", "pre",
                     "--figure", "summary", "--cache-dir", cache]) == 0
        first_err = capsys.readouterr().err
        assert "2 simulated" in first_err
        assert main(["trace", "replay", str(path), "--variants", "pre",
                     "--figure", "summary", "--cache-dir", cache]) == 0
        second_err = capsys.readouterr().err
        assert "0 simulated" in second_err
        assert "2 from cache" in second_err


class TestListShowsProbes:
    def test_list_includes_probe_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Probes" in out
        assert "ipc_timeline" in out
