"""Unit tests for the memory substrate: caches, MSHRs, DRAM, prefetchers, hierarchy."""

import pytest

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DRAMConfig, DRAMModel
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy, MemoryLevel
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import NextLinePrefetcher, StridePrefetcher


class TestCache:
    def make(self, size=1024, assoc=2, latency=3):
        return SetAssociativeCache(CacheConfig("T", size, assoc, latency=latency))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 0, 1)
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3)  # not a multiple of assoc * line

    def test_miss_then_hit_after_fill(self):
        cache = self.make()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = self.make()
        cache.fill(0x1000)
        assert cache.lookup(0x1000 + 63)
        assert not cache.lookup(0x1000 + 64)

    def test_lru_eviction_order(self):
        cache = self.make(size=2 * 64, assoc=2)  # one set, two ways
        cache.fill(0 * 64)
        cache.fill(1 * 64)
        cache.lookup(0 * 64)  # make line 0 MRU
        cache.fill(2 * 64)  # evicts line 1 (LRU)
        assert cache.contains(0 * 64)
        assert not cache.contains(1 * 64)
        assert cache.contains(2 * 64)

    def test_dirty_eviction_reports_writeback(self):
        cache = self.make(size=2 * 64, assoc=2)
        cache.fill(0 * 64, dirty=True)
        cache.fill(1 * 64)
        writeback = cache.fill(2 * 64)
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = self.make(size=2 * 64, assoc=2)
        cache.fill(0 * 64)
        cache.lookup(0 * 64, is_write=True)
        cache.fill(1 * 64)
        writeback = cache.fill(2 * 64)
        assert writeback == 0 * 64

    def test_invalidate(self):
        cache = self.make()
        cache.fill(0x2000)
        assert cache.invalidate(0x2000)
        assert not cache.invalidate(0x2000)
        assert not cache.contains(0x2000)

    def test_resident_lines_and_reset_stats(self):
        cache = self.make()
        for i in range(5):
            cache.fill(i * 64)
        assert cache.resident_lines() == 5
        cache.lookup(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0


class TestMSHR:
    def test_allocate_and_expire(self):
        mshrs = MSHRFile(num_entries=2)
        assert mshrs.allocate(0, completion_cycle=100, cycle=0)
        assert mshrs.occupancy(0) == 1
        assert mshrs.occupancy(100) == 0

    def test_merge_same_line(self):
        mshrs = MSHRFile(num_entries=1)
        mshrs.allocate(128, completion_cycle=50, cycle=0)
        assert mshrs.allocate(128 + 8, completion_cycle=60, cycle=10)  # same line merges
        entry = mshrs.merge(128, cycle=10)
        assert entry is not None and entry.completion_cycle == 50
        assert mshrs.merge(4096, cycle=10) is None

    def test_full_rejection(self):
        mshrs = MSHRFile(num_entries=1)
        mshrs.allocate(0, completion_cycle=100, cycle=0)
        assert not mshrs.allocate(4096, completion_cycle=100, cycle=0)
        assert mshrs.stats.full_rejections == 1
        assert mshrs.is_full(0)
        assert not mshrs.is_full(100)

    def test_outstanding_completion(self):
        mshrs = MSHRFile(num_entries=4)
        mshrs.allocate(64, completion_cycle=40, cycle=0)
        assert mshrs.outstanding_completion(64, 10) == 40
        assert mshrs.outstanding_completion(4096, 10) is None


class TestDRAM:
    def test_row_hit_is_faster_than_row_miss(self):
        dram = DRAMModel()
        first = dram.access(0, cycle=0)
        dram2 = DRAMModel()
        dram2.access(0, cycle=0)
        # Second access to the same page at a later time is a row hit.
        hit_latency = dram2.access(8, cycle=1000)
        assert hit_latency < first

    def test_bank_queueing_delays_back_to_back_row_misses(self):
        dram = DRAMModel()
        config = dram.config
        base_bank, base_row = dram._bank_and_row(0)
        conflict_addr = next(
            page * config.page_bytes
            for page in range(1, 10_000)
            if dram._bank_and_row(page * config.page_bytes)[0] == base_bank
            and dram._bank_and_row(page * config.page_bytes)[1] != base_row
        )
        base = dram.access(0, cycle=0)
        # Same bank, different row, issued immediately after: pays queue delay.
        second = dram.access(conflict_addr, cycle=1)
        assert second > base

    def test_stats_and_reset(self):
        dram = DRAMModel()
        dram.access(0, 0)
        dram.access(0, 500, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 2
        assert dram.stats.average_latency > 0
        dram.reset()
        assert dram.stats.accesses == 0

    def test_core_cycle_conversion(self):
        config = DRAMConfig()
        assert config.to_core_cycles(1) >= 3  # 2.66 GHz core vs 800 MHz bus
        assert config.to_core_cycles(0) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(num_banks=0)


class TestPrefetchers:
    def test_next_line(self):
        prefetcher = NextLinePrefetcher(degree=2)
        targets = prefetcher.train(0x400, 0x1000)
        assert targets == [0x1040, 0x1080]

    def test_stride_needs_confidence(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
        assert prefetcher.train(0x400, 0x1000) == []
        assert prefetcher.train(0x400, 0x1040) == []
        assert prefetcher.train(0x400, 0x1080) == []
        targets = prefetcher.train(0x400, 0x10C0)
        assert targets == [0x1100]

    def test_stride_table_eviction(self):
        prefetcher = StridePrefetcher(table_entries=2)
        for pc in (1, 2, 3):
            prefetcher.train(pc, 0x1000)
        assert len(prefetcher._table) <= 2


class TestHierarchy:
    def test_cold_miss_goes_to_dram(self):
        hierarchy = MemoryHierarchy()
        result = hierarchy.access_data(0x100000, cycle=0)
        assert result.level is MemoryLevel.DRAM
        assert result.is_long_latency
        assert result.latency > 100

    def test_hit_after_fill_is_l1_latency(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access_data(0x100000, cycle=0)
        later = hierarchy.access_data(0x100000, cycle=first.latency + 1)
        assert later.level is MemoryLevel.L1D
        assert later.latency == hierarchy.config.l1d.latency

    def test_access_before_fill_completes_merges_inflight(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access_data(0x200000, cycle=0)
        second = hierarchy.access_data(0x200000, cycle=10)
        assert second.level is MemoryLevel.INFLIGHT
        assert second.latency <= first.latency
        assert second.is_long_latency

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = MemoryHierarchy()
        base = 0x300000
        first = hierarchy.access_data(base, cycle=0)
        # Evict the line from L1 by filling its set with conflicting lines.
        sets = hierarchy.config.l1d.num_sets
        for way in range(hierarchy.config.l1d.associativity + 1):
            hierarchy.access_data(base + (way + 1) * sets * 64, cycle=1000 + way * 400)
        result = hierarchy.access_data(base, cycle=10_000)
        assert result.level in (MemoryLevel.L2, MemoryLevel.L3)
        assert result.latency < first.latency

    def test_prefetch_reserve_blocks_prefetches_first(self):
        config = HierarchyConfig(mshr_entries=4, mshr_demand_reserve=2)
        hierarchy = MemoryHierarchy(config)
        # Two outstanding prefetches reach the prefetch limit (4 - 2 = 2).
        assert not hierarchy.access_data(0x1000000, 0, is_prefetch=True).retried
        assert not hierarchy.access_data(0x2000000, 0, is_prefetch=True).retried
        assert hierarchy.access_data(0x3000000, 0, is_prefetch=True).retried
        # Demand misses may still use the reserved entries.
        assert not hierarchy.access_data(0x4000000, 0).retried

    def test_instruction_access_fills_l1i(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.access_instruction(0x400000, cycle=0)
        second = hierarchy.access_instruction(0x400000, cycle=1000)
        assert first.latency > second.latency
        assert second.level is MemoryLevel.L1I

    def test_warm_preloads_lines(self):
        hierarchy = MemoryHierarchy()
        hierarchy.warm([0x500000])
        result = hierarchy.access_data(0x500000, cycle=0)
        assert result.level is MemoryLevel.L1D

    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(HierarchyConfig(prefetcher="magic"))

    def test_stride_prefetcher_installs_future_lines(self):
        hierarchy = MemoryHierarchy(HierarchyConfig(prefetcher="stride"))
        cycle = 0
        for i in range(6):
            hierarchy.access_data(0x600000 + i * 64, cycle=cycle, pc=0x400)
            cycle += 400
        assert hierarchy.stats.prefetch_accesses >= 0
        # After training, the next line should already be resident or in flight.
        result = hierarchy.access_data(0x600000 + 6 * 64, cycle=cycle)
        assert result.level in (MemoryLevel.L1D, MemoryLevel.INFLIGHT)
