"""Unit tests for the synthetic workload generators, surrogates and SimPoint sampler."""

import pytest

from repro.workloads.generators import (
    compute_kernel,
    linked_list_chase,
    mixed_compute_memory,
    multi_slice_kernel,
    random_access_kernel,
    strided_stream,
)
from repro.workloads.simpoint import SimPointSampler, sample_trace
from repro.workloads.spec_surrogates import (
    SPEC_SURROGATES,
    build_surrogate,
    surrogate_names,
    surrogate_suite,
)
from repro.workloads.trace import UopClass


ALL_GENERATORS = [
    linked_list_chase,
    strided_stream,
    multi_slice_kernel,
    random_access_kernel,
    mixed_compute_memory,
    compute_kernel,
]


class TestGenerators:
    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_respects_requested_length(self, generator):
        trace = generator(num_uops=600)
        assert 600 <= len(trace) <= 600 + 80  # may finish the current iteration

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_deterministic(self, generator):
        first = generator(num_uops=400)
        second = generator(num_uops=400)
        assert len(first) == len(second)
        assert all(a == b for a, b in zip(first, second))

    def test_linked_list_chase_is_self_dependent(self):
        trace = linked_list_chase(num_uops=200)
        loads = [uop for uop in trace if uop.is_load]
        assert loads, "pointer chase must contain loads"
        # The chase load reads the register it writes: classic pointer chasing.
        assert all(uop.dst in uop.srcs for uop in loads)

    def test_linked_list_addresses_are_distinct_lines(self):
        trace = linked_list_chase(num_uops=800, num_nodes=4096)
        lines = [uop.mem_addr // 64 for uop in trace if uop.is_load]
        assert len(set(lines)) == len(lines)

    def test_strided_stream_single_load_pc(self):
        trace = strided_stream(num_uops=500)
        assert len(trace.pcs_of_class(UopClass.LOAD)) == 1

    def test_strided_stream_addresses_increase(self):
        trace = strided_stream(num_uops=500, element_bytes=8)
        addresses = trace.load_addresses()
        assert addresses == sorted(addresses)
        assert addresses[1] - addresses[0] == 8

    def test_multi_slice_has_one_load_pc_per_slice(self):
        trace = multi_slice_kernel(num_uops=1000, num_slices=4)
        assert len(trace.pcs_of_class(UopClass.LOAD)) == 4

    def test_multi_slice_clamps_slice_count(self):
        trace = multi_slice_kernel(num_uops=500, num_slices=64)
        assert len(trace.pcs_of_class(UopClass.LOAD)) <= 12

    def test_random_access_has_index_and_data_loads(self):
        trace = random_access_kernel(num_uops=600)
        assert len(trace.pcs_of_class(UopClass.LOAD)) == 2

    def test_mixed_kernel_contains_stores(self):
        trace = mixed_compute_memory(num_uops=2000, store_fraction=0.5)
        assert trace.stats().num_stores > 0

    def test_compute_kernel_has_no_memory_ops(self):
        stats = compute_kernel(num_uops=500).stats()
        assert stats.num_loads == 0
        assert stats.num_stores == 0

    def test_different_seeds_differ(self):
        first = random_access_kernel(num_uops=400, seed=1)
        second = random_access_kernel(num_uops=400, seed=2)
        assert first.load_addresses() != second.load_addresses()


class TestSurrogates:
    def test_suite_contains_paper_benchmarks(self):
        names = surrogate_names()
        for expected in ("mcf", "libquantum", "milc", "omnetpp", "soplex", "sphinx3"):
            assert expected in names

    def test_build_by_name_sets_trace_name(self):
        trace = build_surrogate("milc", num_uops=500)
        assert trace.name == "milc"
        assert len(trace) >= 500

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_surrogate("not-a-benchmark")

    def test_suite_builder_subset(self):
        traces = surrogate_suite(["mcf", "lbm"], num_uops=300)
        assert [trace.name for trace in traces] == ["mcf", "lbm"]

    @pytest.mark.parametrize("name", sorted(SPEC_SURROGATES))
    def test_every_surrogate_is_memory_intensive(self, name):
        if name in ():
            pytest.skip("compute-only")
        trace = build_surrogate(name, num_uops=800)
        stats = trace.stats()
        assert stats.num_loads > 0
        assert stats.memory_fraction > 0.05


class TestSimPoint:
    def test_sampler_covers_trace(self):
        trace = build_surrogate("milc", num_uops=4000)
        sampler = SimPointSampler(interval_size=500, max_clusters=3, seed=1)
        intervals = sampler.select(trace)
        assert intervals
        assert sum(interval.weight for interval in intervals) == pytest.approx(1.0)
        for interval in intervals:
            assert 0 <= interval.start < interval.end <= len(trace)

    def test_sample_trace_is_smaller(self):
        trace = build_surrogate("milc", num_uops=4000)
        sampled = sample_trace(trace, interval_size=500, max_clusters=2)
        assert 0 < len(sampled) <= len(trace)
        assert sampled.name.endswith(".simpoints")

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SimPointSampler(interval_size=0)
        with pytest.raises(ValueError):
            SimPointSampler(max_clusters=0)

    def test_empty_trace(self):
        from repro.workloads.trace import Trace

        assert SimPointSampler().select(Trace([])) == []
