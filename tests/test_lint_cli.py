"""End-to-end tests for ``python -m repro lint`` and its CI contract."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.__main__ import main
from repro.errors import EXIT_BAD_SPEC, EXIT_LINT_FINDINGS, EXIT_OK

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


class TestLintSelfCheck:
    def test_repo_lints_clean_at_head(self, capsys):
        """The committed tree plus the committed baseline must be finding-free."""
        assert main(["lint"]) == EXIT_OK
        err = capsys.readouterr().err
        assert "0 finding(s)" in err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule in (
            "determinism",
            "cache-schema",
            "hot-path",
            "exit-codes",
            "privacy",
            "probe-dispatch",
        ):
            assert rule in out

    def test_unknown_rule_is_bad_spec(self, capsys):
        assert main(["lint", "--rules", "nope"]) == EXIT_BAD_SPEC

    def test_rule_subset_runs(self, capsys):
        assert main(["lint", "--rules", "determinism,exit-codes"]) == EXIT_OK


class TestSeededViolation:
    """The CI contract: a planted violation must fail with a file:line finding."""

    def test_seeded_wall_clock_read_exits_with_lint_findings(self, capsys):
        seeded = SRC_DIR / "repro" / "uarch" / "_lint_seeded_scratch.py"
        seeded.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
        try:
            rc = main(["lint"])
            captured = capsys.readouterr()
        finally:
            seeded.unlink()
        assert rc == EXIT_LINT_FINDINGS
        assert "src/repro/uarch/_lint_seeded_scratch.py:5:" in captured.out
        assert "D103" in captured.out

    def test_json_format_reports_structured_findings(self, capsys):
        seeded = SRC_DIR / "repro" / "uarch" / "_lint_seeded_scratch.py"
        seeded.write_text("import random\n\nx = random.random()\n")
        try:
            rc = main(["lint", "--format", "json"])
            payload = json.loads(capsys.readouterr().out)
        finally:
            seeded.unlink()
        assert rc == EXIT_LINT_FINDINGS
        assert payload["suppressed"] > 0  # the grandfathered H301s
        (finding,) = payload["findings"]
        assert finding["code"] == "D101"
        assert finding["path"] == "src/repro/uarch/_lint_seeded_scratch.py"
        assert finding["line"] == 3


class TestBaselineWorkflow:
    def test_no_baseline_reports_grandfathered_findings(self, capsys):
        rc = main(["lint", "--no-baseline"])
        captured = capsys.readouterr()
        assert rc == EXIT_LINT_FINDINGS
        assert "H301" in captured.out  # the known unslotted hot-path classes

    def test_write_then_use_a_custom_baseline(self, tmp_path, capsys):
        custom = tmp_path / "baseline.json"
        assert main(["lint", "--write-baseline", "--baseline", str(custom)]) == EXIT_OK
        assert custom.is_file()
        capsys.readouterr()
        assert main(["lint", "--baseline", str(custom)]) == EXIT_OK
        assert "0 finding(s)" in capsys.readouterr().err


class TestImportIsolation:
    def test_simulator_import_does_not_load_lint(self):
        """Lint must cost the simulator nothing at import time.

        The dependency only points one way (lint -> simulator), so importing
        the simulation and uarch stacks must leave no ``repro.analysis.lint``
        module behind.
        """
        code = (
            "import sys\n"
            "import repro.simulation.engine, repro.uarch.core, repro.memory.hierarchy\n"
            "loaded = [m for m in sys.modules if m.startswith('repro.analysis.lint')]\n"
            "assert not loaded, f'lint modules loaded by simulator import: {loaded}'\n"
            "print('isolated')\n"
        )
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert "isolated" in proc.stdout


class TestSchemaCaptureScript:
    def test_capture_script_is_idempotent_at_head(self):
        golden = REPO_ROOT / "tests" / "goldens" / "schema_fingerprint.json"
        before = golden.read_text()
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "capture_schema_fingerprint.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert "up to date" in proc.stdout
        assert golden.read_text() == before
