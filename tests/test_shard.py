"""Sharded single-trace replay: planning invariants, stitching, exactness.

The tentpole contract has three layers, each tested here:

* :func:`~repro.simulation.shard.plan_shards` is a deterministic partition —
  property-tested (hypothesis) over arbitrary sizes/shard counts/warmups;
* stitching never lies about totals: stitched ``committed_uops`` equals the
  unsharded count, per-shard stats never include warmup commits, and the
  4-shard estimate stays within tolerance of the unsharded truth on every
  Figure-2 workload;
* the degenerate plan (one shard, zero warmup) is *exact*: digest-identical
  to :func:`~repro.simulation.simulator.run_variant` and served from the
  same result-cache entry as a plain replay.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.registry import build_workload
from repro.simulation.engine import ExperimentEngine, JobSpec
from repro.simulation.golden import DEFAULT_GOLDEN_WORKLOADS, stats_digest
from repro.simulation.shard import (
    Shard,
    ShardedRunResult,
    plan_shards,
    run_sharded,
)
from repro.simulation.simulator import run_simpoints, run_variant
from repro.workloads.generators import strided_stream
from repro.workloads.source import GeneratorSource


class TestPlanShards:
    """The plan is an exact, ordered partition of [0, total)."""

    @given(
        total=st.integers(min_value=1, max_value=100_000),
        num_shards=st.integers(min_value=1, max_value=64),
        warmup=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_and_clamping(self, total, num_shards, warmup):
        plan = plan_shards(total, num_shards, warmup)
        assert len(plan.shards) == min(num_shards, total)
        # Contiguous, in order, covering [0, total) exactly.
        assert plan.shards[0].start == 0
        assert plan.shards[-1].end == total
        for prev, cur in zip(plan.shards, plan.shards[1:]):
            assert cur.start == prev.end
        # Near-equal split: sizes differ by at most one micro-op.
        sizes = [shard.measured_uops for shard in plan.shards]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == total
        # Warmup prefixes are the request clamped at the trace's beginning.
        for shard in plan.shards:
            assert shard.warmup_start == max(0, shard.start - warmup)
            assert shard.warmup_uops <= warmup
        assert plan.shards[0].warmup_uops == 0

    @given(
        total=st.integers(min_value=1, max_value=100_000),
        num_shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_weights_sum_to_one(self, total, num_shards):
        plan = plan_shards(total, num_shards)
        assert sum(plan.weights()) == pytest.approx(1.0)

    def test_exact_only_for_single_shard_zero_warmup(self):
        assert plan_shards(100, 1).exact
        assert not plan_shards(100, 2).exact
        # One shard's warmup clamps to nothing, so the plan is still exact.
        clamped = plan_shards(100, 1, warmup_uops=10)
        assert clamped.shards[0].warmup_uops == 0
        assert clamped.exact

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="empty trace"):
            plan_shards(0, 4)
        with pytest.raises(ValueError, match="num_shards"):
            plan_shards(100, 0)
        with pytest.raises(ValueError, match="warmup_uops"):
            plan_shards(100, 4, warmup_uops=-1)
        with pytest.raises(ValueError, match="shard bounds"):
            Shard(index=0, start=10, end=5, warmup_start=0)


class TestExactPath:
    """shards=1 with zero warmup is the unsharded run, bit for bit."""

    def test_digest_identical_to_run_variant(self):
        trace = build_workload("sphinx3", num_uops=3_000)
        base = run_variant(trace, variant="ooo")
        sharded = run_sharded(trace, variant="ooo", shards=1)
        assert sharded.exact
        assert stats_digest(sharded.stitched_stats) == stats_digest(base.stats)
        assert sharded.stitched_stats == base.stats

    def test_shares_cache_entry_with_plain_replay(self, tmp_path):
        trace = build_workload("milc", num_uops=1_500)
        engine = ExperimentEngine(cache_dir=str(tmp_path / "cache"))
        run_sharded(trace, variant="ooo", shards=1, engine=engine)
        assert engine.last_run_stats.simulated == 1
        # The same trace through the ordinary trace path: full cache hit,
        # because the whole-trace window was normalised away.
        engine.run_traces([trace], variants=["ooo"])
        assert engine.last_run_stats.simulated == 0
        assert engine.last_run_stats.cache_hits == 1


class TestStitching:
    """Stitched stats are whole-trace estimates with honest totals."""

    def test_committed_uops_and_warmup_isolation(self):
        trace = build_workload("sphinx3", num_uops=6_000)
        base = run_variant(trace, variant="ooo")
        sharded = run_sharded(trace, variant="ooo", shards=4, warmup_uops=750)
        assert not sharded.exact
        # Stitched totals equal the unsharded run's committed count exactly.
        assert sharded.stitched_stats.committed_uops == base.stats.committed_uops
        assert sharded.total_uops == base.stats.committed_uops
        for entry in sharded.shards:
            # Warmup commits never leak into a shard's measured statistics.
            assert entry.result.stats.committed_uops == entry.shard.measured_uops
            assert (
                entry.result.stats.events.committed_uops
                == entry.shard.measured_uops
            )
        # The warmup prefixes were simulated (they cost uops), just not counted.
        assert sharded.simulated_uops > sharded.total_uops

    @pytest.mark.parametrize("workload", DEFAULT_GOLDEN_WORKLOADS)
    def test_four_shard_ipc_within_tolerance(self, workload):
        trace = build_workload(workload, num_uops=12_000)
        base = run_variant(trace, variant="ooo")
        sharded = run_sharded(trace, variant="ooo", shards=4, warmup_uops=5_000)
        assert sharded.stitched_ipc == pytest.approx(base.ipc, rel=0.02)

    def test_serde_round_trip(self):
        trace = build_workload("mcf", num_uops=2_000)
        sharded = run_sharded(trace, variant="ooo", shards=3, warmup_uops=200)
        restored = ShardedRunResult.from_dict(sharded.to_dict())
        assert restored == sharded

    def test_unknown_length_source_is_materialized(self):
        # A GeneratorSource without an explicit length: run_sharded must
        # materialise it to discover the shard boundaries.
        source = GeneratorSource(
            lambda: iter(strided_stream(num_uops=2_000)), name="stride"
        )
        assert source.length is None
        sharded = run_sharded(source, variant="ooo", shards=2)
        assert sharded.total_uops == len(strided_stream(num_uops=2_000))
        assert len(sharded.shards) == 2

    def test_probe_instances_rejected(self):
        from repro.registry import PROBE_REGISTRY

        instance = PROBE_REGISTRY.entries()[0].create()
        trace = build_workload("mcf", num_uops=500)
        with pytest.raises(TypeError, match="registry names"):
            run_sharded(trace, variant="ooo", probes=[instance])


class TestEngineWindows:
    """The widened engine job model underneath the shard layer."""

    def test_jobspec_window_round_trips(self):
        job = JobSpec(
            workload="mcf", variant="pre", window=(100, 200), warmup_uops=50
        )
        restored = JobSpec.from_dict(job.to_dict())
        assert restored == job
        assert restored.window == (100, 200)  # tuple, not list, after serde

    def test_jobspec_requires_exactly_one_trace_origin(self):
        engine = ExperimentEngine()
        with pytest.raises(ValueError, match="exactly one"):
            engine.run_jobs([JobSpec(workload="", variant="ooo")])
        with pytest.raises(ValueError, match="exactly one"):
            engine.run_jobs(
                [JobSpec(workload="mcf", trace_file="x.trc", variant="ooo")]
            )

    def test_windowed_jobs_never_batch_together(self):
        trace = build_workload("mcf", num_uops=400)
        payloads = [
            {"trace": trace, "window": [0, 200], "warmup_uops": 0},
            {"trace": trace, "window": [200, 400], "warmup_uops": 0},
        ]
        batches = ExperimentEngine._batch_payloads(payloads)
        assert len(batches) == 2  # each window must reach its own worker

    def test_simpoints_hit_shared_cache(self, tmp_path):
        trace = build_workload("sphinx3", num_uops=6_000)
        engine = ExperimentEngine(cache_dir=str(tmp_path / "cache"))
        first = run_simpoints(trace, variant="ooo", engine=engine)
        assert engine.last_run_stats.simulated > 0
        second = run_simpoints(trace, variant="ooo", engine=engine)
        assert engine.last_run_stats.simulated == 0
        assert engine.last_run_stats.cache_hits == engine.last_run_stats.total_jobs
        assert second == first
