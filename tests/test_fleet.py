"""Unit tests of the fleet's moving parts, under a fake clock.

Where :mod:`tests.test_chaos` proves end-to-end robustness against a real
daemon, these tests pin the *mechanisms*: the lease state machine
(claim → renew → expire → reclaim → re-execute, bit-identical), attempt
accounting and quarantine, concurrent-claim exclusivity (hypothesis),
journal compaction, the client's deterministic retry backoff, and the
server's repaired worker-loop failure path.
"""

import json
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CellQuarantined, EXIT_OK
from repro.service.client import Backoff, ServiceClient, ServiceError
from repro.service.fleet import FleetCoordinator, FleetProtocolError
from repro.service.journal import (
    JobJournal,
    JobRecord,
    compact_journal,
    replay_journal,
)
from repro.service.server import ServiceThread

SWEEP_DOC = {
    "kind": "sweep",
    "spec": {"workloads": ["mcf"], "variants": ["ooo"], "num_uops": 200},
}


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, by: float) -> None:
        self.now += by


def payload(n):
    """A minimal engine-shaped payload (job_cache_key-compatible)."""
    return {
        "benchmark": f"wl{n}", "variant": "ooo",
        "source": {"kind": "workload", "name": f"wl{n}"},
        "trace": None, "config": {"n": n}, "hierarchy": None,
        "max_cycles": None, "probes": [], "window": None, "warmup_uops": 0,
    }


def never_local(pay):
    raise AssertionError(f"local fallback must not run (payload {pay})")


class Run:
    """Drive FleetCoordinator.execute on a thread; collect deliveries."""

    def __init__(self, coord, record, payloads, local_execute=never_local):
        self.results = {}
        self.error = None
        self._lock = threading.Lock()

        def on_result(offset, produced):
            with self._lock:
                assert offset not in self.results, "double delivery"
                self.results[offset] = produced

        def target():
            try:
                coord.execute(record, payloads, on_result, local_execute)
            except BaseException as exc:  # noqa: BLE001 — test capture
                self.error = exc

        self.thread = threading.Thread(target=target, daemon=True)
        self.thread.start()

    def join(self, timeout=30.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "execute() did not finish"


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def make_coord(tmp_path=None, **kwargs):
    journal = (
        JobJournal(tmp_path / "journal.jsonl") if tmp_path is not None else None
    )
    kwargs.setdefault("lease_ttl", 10.0)
    kwargs.setdefault("worker_timeout", 1e9)  # liveness tested separately
    kwargs.setdefault("tick", 0.002)
    return FleetCoordinator(journal=journal, **kwargs), journal


# ------------------------------------------------------------ lease lifecycle


def test_claim_renew_expire_reclaim_reexecute_bit_identical(tmp_path):
    clock = FakeClock()
    coord, journal = make_coord(tmp_path, clock=clock)
    record = JobRecord(id="j000001", seq=1, document={})
    payloads = [payload(0), payload(1)]
    # Register before execute() starts: with no workers at all the run would
    # immediately (and correctly) degrade to local execution.
    worker = coord.register("w")["worker"]
    run = Run(coord, record, payloads)

    grant = coord.claim(worker, max_cells=1)
    [cell] = grant["cells"]
    lease1 = grant["lease"]["id"]

    # Renewal holds the lease past its original deadline.
    clock.advance(8.0)
    assert coord.heartbeat(worker, [lease1])["stale"] == []
    clock.advance(5.0)  # t=13 > original deadline 10, renewed one is 18
    assert coord.heartbeat(worker, [lease1])["stale"] == []

    # Silence past the renewed deadline: the sweep reclaims it.
    clock.advance(11.0)  # t=24 > 23
    assert wait_until(lambda: coord.reclaimed_leases == 1)
    assert lease1 in coord.heartbeat(worker, [lease1])["stale"]
    # Stale completion after reclaim is rejected wholesale.
    reply = coord.complete(
        worker, lease1, [{"cell": cell["cell"], "result": {"value": -1}}]
    )
    assert reply == {"accepted": 0, "stale": True}

    # The cell comes back on re-claim, attempt count bumped; this delivery
    # (and only this one) reaches the engine.
    regrant = coord.claim(worker, max_cells=2)
    cells = {c["cell"]: c["payload"] for c in regrant["cells"]}
    assert cell["cell"] in cells
    assert cells[cell["cell"]] == cell["payload"]  # identical payload bits
    outcomes = [
        {"cell": cid, "result": {"value": pay["config"]["n"] * 7}}
        for cid, pay in cells.items()
    ]
    assert coord.complete(worker, regrant["lease"]["id"], outcomes) == {
        "accepted": len(outcomes), "stale": False,
    }
    run.join()
    assert run.error is None
    assert run.results == {0: {"value": 0}, 1: {"value": 7}}
    assert record.attempts[cell["cell"]] == 2
    assert coord.stale_completions == 1

    # Durability: replaying the journal reconstructs the same attempts.
    journal.close()
    events = [
        json.loads(line)
        for line in (tmp_path / "journal.jsonl").read_text().splitlines()
    ]
    claims = [e for e in events if e["event"] == "lease" and e["action"] == "claim"]
    reclaims = [
        e for e in events if e["event"] == "lease" and e["action"] == "reclaim"
    ]
    assert len(reclaims) == 1 and reclaims[0]["worker"] == worker
    replayed = {}
    for event in claims:
        for cid in event["cells"]:
            replayed[cid] = replayed.get(cid, 0) + 1
    assert replayed == record.attempts


def test_repeated_failures_quarantine_cell_and_fail_run(tmp_path):
    clock = FakeClock()
    coord, journal = make_coord(tmp_path, clock=clock, max_attempts=2)
    record = JobRecord(id="j000001", seq=1, document={})
    worker = coord.register("w")["worker"]
    run = Run(coord, record, [payload(0)])

    grant = coord.claim(worker)
    cid = grant["cells"][0]["cell"]
    # First failure: requeued (attempts 1 < 2).
    coord.complete(
        worker, grant["lease"]["id"], [{"cell": cid, "error": "boom one"}]
    )
    regrant = coord.claim(worker)
    assert regrant["cells"][0]["cell"] == cid
    # Second failure: attempts == max_attempts -> quarantined, run poisoned.
    coord.complete(
        worker, regrant["lease"]["id"], [{"cell": cid, "error": "boom two"}]
    )
    run.join()
    assert isinstance(run.error, CellQuarantined)
    assert cid in str(run.error) and "boom two" in str(run.error)
    assert record.quarantined == {cid: "boom two"}
    assert record.attempts == {cid: 2}
    # A fresh run seeded from this record stays poisoned (daemon restart).
    rerun = Run(coord, record, [payload(0)])
    rerun.join()
    assert isinstance(rerun.error, CellQuarantined)
    journal.close()


def test_deregister_reclaims_immediately_and_unknown_worker_is_404():
    coord, _ = make_coord()
    record = JobRecord(id="j000001", seq=1, document={})
    worker = coord.register("w")["worker"]
    run = Run(
        coord, record, [payload(0)],
        local_execute=lambda pay: {"value": pay["config"]["n"]},
    )
    grant = coord.claim(worker)
    assert grant["cells"]
    coord.deregister(worker)
    assert coord.reclaimed_leases == 1
    # No workers left: the run degrades to local execution and finishes.
    run.join()
    assert run.error is None and run.results == {0: {"value": 0}}
    assert record.attempts[grant["cells"][0]["cell"]] == 2  # remote + local
    with pytest.raises(FleetProtocolError) as excinfo:
        coord.claim(worker)
    assert excinfo.value.status == 404


def test_draining_worker_gets_no_cells():
    coord, _ = make_coord()
    record = JobRecord(id="j000001", seq=1, document={})
    run = Run(
        coord, record, [payload(0)],
        local_execute=lambda pay: {"value": 1},
    )
    worker = coord.register("w")["worker"]
    coord.drain(worker)
    assert coord.heartbeat(worker)["drain"] is True
    grant = coord.claim(worker)
    assert grant == {"worker": worker, "drain": True, "cells": []}
    coord.deregister(worker)
    run.join()  # local fallback finishes the run
    assert run.results == {0: {"value": 1}}


# ----------------------------------------------------- concurrent exclusivity


@settings(max_examples=15, deadline=None)
@given(
    n_cells=st.integers(min_value=1, max_value=12),
    n_workers=st.integers(min_value=2, max_value=5),
    max_cells=st.integers(min_value=1, max_value=4),
)
def test_concurrent_claimers_never_double_assign(n_cells, n_workers, max_cells):
    """However many workers race claim(), every cell lands in exactly one
    lease, and every payload is delivered exactly once."""
    coord, _ = make_coord()
    record = JobRecord(id="j000001", seq=1, document={})
    # An anchor worker keeps live_workers >= 1 so no cell goes local while
    # the claimer threads are still registering.
    coord.register("anchor")
    run = Run(coord, record, [payload(n) for n in range(n_cells)])
    grants = []
    grants_lock = threading.Lock()
    claimed = {"count": 0}

    def claimer(seed):
        worker = coord.register(f"w{seed}")["worker"]
        while True:
            with grants_lock:
                if claimed["count"] >= n_cells:
                    return
            grant = coord.claim(worker, max_cells=max_cells)
            cells = grant["cells"]
            if cells:
                with grants_lock:
                    grants.append((worker, grant["lease"]["id"], cells))
                    claimed["count"] += len(cells)

    threads = [
        threading.Thread(target=claimer, args=(i,), daemon=True)
        for i in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive()

    all_cells = [c["cell"] for _, _, cells in grants for c in cells]
    assert len(all_cells) == n_cells
    assert len(set(all_cells)) == n_cells, "a cell was double-assigned"

    for worker, lease_id, cells in grants:
        reply = coord.complete(
            worker, lease_id,
            [{"cell": c["cell"], "result": {"n": c["payload"]["config"]["n"]}}
             for c in cells],
        )
        assert reply["stale"] is False
    run.join()
    assert run.error is None
    assert run.results == {n: {"n": n} for n in range(n_cells)}


# --------------------------------------------------------- journal compaction


def _seed_journal(path):
    with JobJournal(path) as journal:
        journal.append(
            {"event": "submitted", "id": "j000001", "seq": 1,
             "document": {"kind": "sweep"}, "description": "one",
             "cells": {"total": 2, "cached": 0}}
        )
        journal.append({"event": "started", "id": "j000001"})
        journal.append(
            {"event": "lease", "action": "claim", "id": "j000001",
             "lease": "L000001", "worker": "w0001", "cells": ["aa", "bb"]}
        )
        journal.append(
            {"event": "lease", "action": "claim", "id": "j000001",
             "lease": "L000002", "worker": "w0002", "cells": ["aa"]}
        )
        journal.append(
            {"event": "quarantined", "id": "j000001", "cell": "aa",
             "attempts": 2, "error": "tb"}
        )
        journal.append(
            {"event": "failed", "id": "j000001", "status": 500,
             "error": "cell aa quarantined", "traceback": "tb"}
        )
        journal.append(
            {"event": "submitted", "id": "j000002", "seq": 2,
             "document": {"kind": "sweep"}, "description": "two",
             "cells": {"total": 1, "cached": 1}}
        )


def _snapshot_view(records):
    return [record.snapshot() for record in records]


def test_compaction_folds_to_snapshots_preserving_replay(tmp_path):
    path = tmp_path / "journal.jsonl"
    _seed_journal(path)
    before = _snapshot_view(replay_journal(path))
    compact_journal(path)
    lines = path.read_text().splitlines()
    assert len(lines) == 2  # one snapshot per job, seven events folded
    assert all(json.loads(line)["event"] == "snapshot" for line in lines)
    assert _snapshot_view(replay_journal(path)) == before
    # Attempt counts and quarantine survive the fold.
    record = replay_journal(path)[0]
    assert record.attempts == {"aa": 2, "bb": 1}
    assert record.quarantined == {"aa": "tb"}
    assert record.error_traceback == "tb"
    assert record.state == "failed"


def test_compaction_tolerates_torn_tail_and_reopens_for_append(tmp_path):
    path = tmp_path / "journal.jsonl"
    _seed_journal(path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"event": "submitted", "id": "j0000')  # daemon died here
    before = _snapshot_view(replay_journal(path))
    # The startup path: compact, then append through the fresh handle.
    with JobJournal(path, compact=True) as journal:
        assert _snapshot_view(replay_journal(path)) == before
        journal.append({"event": "started", "id": "j000002"})
    records = replay_journal(path)
    assert [r.state for r in records] == ["failed", "running"]


def test_compacting_a_missing_journal_is_a_noop(tmp_path):
    assert compact_journal(tmp_path / "absent.jsonl") == []


# ------------------------------------------------------------- client backoff


def test_backoff_is_deterministic_bounded_and_jittered():
    a = Backoff(base=0.05, factor=2.0, max_delay=1.0, jitter=0.25, seed=7)
    b = Backoff(base=0.05, factor=2.0, max_delay=1.0, jitter=0.25, seed=7)
    schedule_a = [a.next_delay() for _ in range(8)]
    schedule_b = [b.next_delay() for _ in range(8)]
    assert schedule_a == schedule_b  # same seed, same schedule
    for step, delay in enumerate(schedule_a):
        ceiling = min(1.0, 0.05 * 2.0 ** step)
        assert ceiling * 0.75 <= delay <= ceiling * 1.25
    c = Backoff(base=0.05, factor=2.0, max_delay=1.0, jitter=0.25, seed=8)
    assert [c.next_delay() for _ in range(8)] != schedule_a  # seeds decorrelate
    a.reset()
    assert a.next_delay() <= 0.05 * 1.25


def test_request_retries_connection_refused_with_seeded_backoff():
    with socket.socket() as probe:  # a port with no listener
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    slept = []
    client = ServiceClient(
        f"http://127.0.0.1:{port}", timeout=2.0, retries=2, sleep=slept.append
    )
    with pytest.raises(OSError):
        client.request("GET", "/v1/status")
    reference = Backoff(seed=0)
    assert slept == [reference.next_delay(), reference.next_delay()]


def test_request_retries_429_only_when_opted_in(monkeypatch):
    calls = {"n": 0}

    def flaky(method, path, body=None):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise ServiceError(429, "busy", retry_after=0.01)
        return {"ok": True}

    slept = []
    client = ServiceClient(
        "http://127.0.0.1:1", busy_retries=2, sleep=slept.append
    )
    monkeypatch.setattr(client, "_request_once", flaky)
    assert client.request("POST", "/v1/jobs", {}) == {"ok": True}
    assert slept == [0.01, 0.01]  # Retry-After honoured verbatim

    calls["n"] = 0
    strict = ServiceClient("http://127.0.0.1:1", sleep=slept.append)
    monkeypatch.setattr(strict, "_request_once", flaky)
    with pytest.raises(ServiceError) as excinfo:
        strict.request("POST", "/v1/jobs", {})
    assert excinfo.value.status == 429  # default: surface to the CLI (exit 75)


def test_post_is_not_retried_on_mid_flight_reset(monkeypatch):
    calls = {"n": 0}

    def resetting(method, path, body=None):
        calls["n"] += 1
        raise ConnectionResetError("mid-flight")

    client = ServiceClient("http://127.0.0.1:1", retries=3, sleep=lambda s: None)
    monkeypatch.setattr(client, "_request_once", resetting)
    with pytest.raises(ConnectionResetError):
        client.request("POST", "/v1/jobs", {})
    assert calls["n"] == 1  # a duplicate admission is worse than an error


# ------------------------------------------------- daemon restart + wait loop


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_wait_survives_daemon_restart_mid_long_poll(tmp_path):
    port = _free_port()
    state = tmp_path / "state"
    first = ServiceThread(state_dir=state, port=port, start_paused=True)
    waiter = {}
    client = ServiceClient(first.base_url, timeout=10.0)
    job_id = client.submit(SWEEP_DOC)["id"]

    def wait_it():
        try:
            waiter["final"] = client.wait(
                job_id, poll_timeout=1.0,
                deadline=time.monotonic() + 120.0,
            )
        except BaseException as exc:  # noqa: BLE001 — test capture
            waiter["error"] = exc

    thread = threading.Thread(target=wait_it, daemon=True)
    thread.start()
    time.sleep(0.3)  # let the waiter enter its long poll
    assert first.stop() == EXIT_OK  # job still queued, nothing interrupted
    # The daemon is gone: the waiter must ride out the outage.
    time.sleep(0.3)
    second = ServiceThread(state_dir=state, port=port)
    try:
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "wait() never recovered"
        assert "error" not in waiter, waiter.get("error")
        assert waiter["final"]["state"] == "done"
        assert waiter["final"]["id"] == job_id
    finally:
        second.stop()


def test_worker_loop_failure_is_journaled_not_swallowed(tmp_path):
    """An exception escaping the job execution future must fail the job
    with a journaled traceback — never strand it in 'running'."""
    handle = ServiceThread(state_dir=tmp_path / "state")
    try:
        def boom(job):
            raise RuntimeError("kaboom past the outcome protocol")

        handle.service._execute_job = boom
        client = ServiceClient(handle.base_url)
        job_id = client.submit(SWEEP_DOC)["id"]
        final = client.wait(job_id, deadline=time.monotonic() + 60.0)
        assert final["state"] == "failed"
        assert "kaboom" in final["error"]
        assert "RuntimeError" in final.get("traceback", "")
        record = next(
            r for r in replay_journal(tmp_path / "state" / "journal.jsonl")
            if r.id == job_id
        )
        assert record.state == "failed"
        assert "kaboom" in (record.error_traceback or "")
    finally:
        handle.stop()
