"""End-to-end tests of the experiment service: the durable HTTP job queue.

Everything runs against a *real* listening server (``ServiceThread`` spins
the asyncio daemon on a background loop, ``ServiceClient`` talks actual
HTTP over a socket), so these tests cover the full contract:

* admission: strict document validation (unknown fields/kinds/registry
  names → 400), cache-dedupe accounting in the 202 response, and the
  bounded queue's 429 + Retry-After backpressure;
* execution: per-cell progress events via long-poll, per-job
  cached/simulated accounting, result retrieval round-tripping through the
  native result types;
* durability: the fsync'd journal folds back into the exact set of
  incomplete jobs, which a restarted daemon resumes and finishes;
* failure taxonomy: bad-spec failures surface as 400-class, simulation
  crashes as 500-class — mirrored by the CLI's exit codes 2 and 3.
"""

import json
import threading
import time

import pytest

from repro.__main__ import main
from repro.errors import (
    EXIT_BAD_SPEC,
    EXIT_BUSY,
    EXIT_INTERRUPTED,
    EXIT_SIM_FAILURE,
    BadSpecError,
)
from repro.registry import build_workload_source
from repro.service import ServiceClient, ServiceError, parse_document
from repro.service.journal import JobJournal, next_seq, replay_journal
from repro.service.server import ServiceThread
from repro.simulation.engine import ExperimentEngine, SweepResult
from repro.workloads.source import write_trace_file

SWEEP_DOC = {
    "kind": "sweep",
    "spec": {"workloads": ["mcf"], "variants": ["ooo"], "num_uops": 200},
}


def wait_for(client, job_id, deadline_s=120.0):
    events = []
    final = client.wait(
        job_id,
        poll_timeout=5.0,
        on_event=events.append,
        deadline=time.monotonic() + deadline_s,
    )
    return final, events


@pytest.fixture()
def service(tmp_path):
    handle = ServiceThread(state_dir=tmp_path / "state", max_queue=8)
    yield handle
    handle.stop()


# ------------------------------------------------------------------ documents


def test_parse_document_rejects_non_object():
    with pytest.raises(BadSpecError, match="JSON object"):
        parse_document([1, 2, 3])


def test_parse_document_rejects_unknown_kind():
    with pytest.raises(BadSpecError, match="unknown document kind"):
        parse_document({"kind": "banana", "spec": {}})


def test_parse_document_rejects_unknown_spec_field():
    with pytest.raises(BadSpecError, match="unknown field"):
        parse_document({"kind": "sweep", "spec": {"bogus": 1}})


def test_parse_document_rejects_unknown_registry_names():
    with pytest.raises(BadSpecError, match="unknown workload"):
        parse_document(
            {"kind": "sweep", "spec": {"workloads": ["nope"], "variants": ["ooo"]}}
        )


def test_parse_document_rejects_stray_top_level_keys():
    doc = dict(SWEEP_DOC)
    doc["extra"] = True
    with pytest.raises(BadSpecError, match="unexpected top-level"):
        parse_document(doc)


def test_parse_document_normalises_round_trippable():
    parsed = parse_document(SWEEP_DOC)
    again = parse_document(parsed.document)
    assert again.document == parsed.document
    assert again.kind == "sweep"


def test_parse_replay_requires_existing_trace(tmp_path):
    with pytest.raises(BadSpecError):
        parse_document(
            {"kind": "replay", "spec": {"trace_file": str(tmp_path / "missing.trc")}}
        )


# -------------------------------------------------------------------- journal


def test_journal_replay_folds_lifecycle(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(
            {"event": "submitted", "id": "j000001", "seq": 1, "document": {"k": 1}}
        )
        journal.append({"event": "started", "id": "j000001"})
        journal.append(
            {"event": "submitted", "id": "j000002", "seq": 2, "document": {"k": 2}}
        )
        journal.append(
            {"event": "finished", "id": "j000001", "accounting": {"total": 3}}
        )
    records = replay_journal(path)
    assert [r.id for r in records] == ["j000001", "j000002"]
    assert records[0].state == "done"
    assert records[0].accounting == {"total": 3}
    assert records[1].state == "queued"
    assert next_seq(records) == 3


def test_journal_replay_tolerates_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JobJournal(path) as journal:
        journal.append(
            {"event": "submitted", "id": "j000001", "seq": 1, "document": {}}
        )
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"event": "finished", "id": "j0000')  # killed mid-append
    records = replay_journal(path)
    assert len(records) == 1
    assert records[0].state == "queued"


# ------------------------------------------------------- submit/dedupe/result


def test_submit_runs_and_resubmit_is_fully_cached(service):
    client = ServiceClient(service.base_url)
    first = client.submit(SWEEP_DOC)
    assert first["cells"] == {"total": 1, "cached": 0}
    final, events = wait_for(client, first["id"])
    assert final["state"] == "done"
    assert final["accounting"] == {"total": 1, "cached": 0, "simulated": 1}
    kinds = [event["type"] for event in events]
    assert kinds[0] == "started" and kinds[-1] == "done"
    assert {"type": "cell", "done": 1, "total": 1, "source": "simulated",
            "seq": kinds.index("cell") + 1} in events

    second = client.submit(SWEEP_DOC)
    assert second["cells"] == {"total": 1, "cached": 1}  # admission-time dedupe
    final2, _ = wait_for(client, second["id"])
    assert final2["accounting"] == {"total": 1, "cached": 1, "simulated": 0}

    result = client.result(second["id"])
    sweep = SweepResult.from_dict(result["result"])
    benchmarks = [
        entry.benchmark
        for cell in sweep.cells
        for entry in cell.comparison.benchmarks
    ]
    assert benchmarks == ["mcf"]


def test_bad_document_is_http_400(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"kind": "sweep", "spec": {"workloads": ["nope"]}})
    assert excinfo.value.status == 400
    # A rejected document takes no queue slot and creates no job.
    assert client.jobs()["jobs"] == []


def test_unknown_job_and_route_are_404(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError) as excinfo:
        client.job("j999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.request("GET", "/v2/nope")
    assert excinfo.value.status == 404


def test_events_long_poll_cursor(service):
    client = ServiceClient(service.base_url)
    job_id = client.submit(SWEEP_DOC)["id"]
    wait_for(client, job_id)
    chunk = client.events(job_id, after=0, timeout=1.0)
    assert chunk["state"] == "done"
    assert chunk["next"] == len(chunk["events"])
    # The cursor resumes exactly where the previous poll left off.
    tail = client.events(job_id, after=chunk["next"] - 1, timeout=1.0)
    assert [event["seq"] for event in tail["events"]] == [chunk["next"]]


def test_named_study_document_and_resubmit_dedupe(service):
    # The acceptance path: submit rob-scaling, poll to completion, resubmit
    # and observe 100% cache dedupe (0 simulated).
    doc = {
        "kind": "study",
        "study": "rob-scaling",
        "num_uops": 200,
        "workloads": ["mcf"],
        "variants": ["ooo"],
    }
    client = ServiceClient(service.base_url)
    job_id = client.submit(doc)["id"]
    final, _ = wait_for(client, job_id)
    assert final["state"] == "done"
    assert final["accounting"]["total"] == final["cells"]["total"]
    assert final["accounting"]["total"] >= 4  # one cell per ROB point
    assert final["accounting"]["simulated"] > 0

    resubmit = client.submit(doc)
    assert resubmit["cells"]["cached"] == resubmit["cells"]["total"]
    final2, _ = wait_for(client, resubmit["id"])
    assert final2["accounting"]["simulated"] == 0
    assert final2["accounting"]["cached"] == final["accounting"]["total"]


def test_probe_reports_flow_through_service(service):
    doc = {
        "kind": "sweep",
        "spec": {
            "workloads": ["mcf"],
            "variants": ["ooo"],
            "num_uops": 200,
            "probes": ["stall_breakdown"],
        },
    }
    client = ServiceClient(service.base_url)
    job_id = client.submit(doc)["id"]
    final, _ = wait_for(client, job_id)
    assert final["state"] == "done"
    sweep = SweepResult.from_dict(client.result(job_id)["result"])
    reports = [
        entry.results["ooo"].probe_reports
        for cell in sweep.cells
        for entry in cell.comparison.benchmarks
    ]
    assert all("stall_breakdown" in report for report in reports)


def test_replay_document(service, tmp_path):
    trace = tmp_path / "mcf.trc"
    write_trace_file(trace, build_workload_source("mcf", num_uops=400), name="mcf")
    doc = {
        "kind": "replay",
        "spec": {"trace_file": str(trace), "variant": "ooo", "shards": 2},
    }
    client = ServiceClient(service.base_url)
    job_id = client.submit(doc)["id"]
    final, _ = wait_for(client, job_id)
    assert final["state"] == "done"
    assert final["accounting"]["total"] == 2  # one cell per shard
    result = client.result(job_id)["result"]
    assert result["total_uops"] == 400


# ---------------------------------------------------------------- backpressure


def test_full_queue_returns_429_with_retry_after(tmp_path):
    handle = ServiceThread(
        state_dir=tmp_path / "state",
        max_queue=2,
        retry_after=7.0,
        start_paused=True,  # nothing drains, so the queue genuinely fills
    )
    try:
        client = ServiceClient(handle.base_url)
        docs = [
            {
                "kind": "sweep",
                "spec": {
                    "workloads": ["mcf"],
                    "variants": ["ooo"],
                    "num_uops": 200 + i,
                },
            }
            for i in range(3)
        ]
        assert client.submit(docs[0])["state"] == "queued"
        assert client.submit(docs[1])["state"] == "queued"
        with pytest.raises(ServiceError) as excinfo:
            client.submit(docs[2])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 7.0
    finally:
        handle.stop()


# ------------------------------------------------------------ restart/resume


def test_killed_daemon_resumes_incomplete_jobs(tmp_path):
    state_dir = tmp_path / "state"
    # Daemon #1 admits two jobs but never runs them (paused), then dies.
    handle = ServiceThread(state_dir=state_dir, start_paused=True)
    client = ServiceClient(handle.base_url)
    first = client.submit(SWEEP_DOC)["id"]
    second = client.submit(
        {
            "kind": "sweep",
            "spec": {"workloads": ["milc"], "variants": ["ooo"], "num_uops": 200},
        }
    )["id"]
    assert handle.stop() == 0  # paused: nothing was interrupted

    # Daemon #2 on the same state dir folds the journal and finishes both.
    handle = ServiceThread(state_dir=state_dir)
    try:
        client = ServiceClient(handle.base_url)
        for job_id in (first, second):
            final, _ = wait_for(client, job_id)
            assert final["state"] == "done"
        # New submissions continue the id sequence instead of reusing it.
        assert client.submit(SWEEP_DOC)["id"] == "j000003"
    finally:
        handle.stop()


def test_restart_resumes_job_killed_mid_run(tmp_path):
    state_dir = tmp_path / "state"
    state_dir.mkdir()
    # Forge the journal of a daemon killed mid-execution: submitted+started
    # but never finished.  The document must be a *normalised* one, exactly
    # what a real admission would have persisted.
    document = parse_document(SWEEP_DOC).document
    with JobJournal(state_dir / "journal.jsonl") as journal:
        journal.append(
            {
                "event": "submitted",
                "id": "j000001",
                "seq": 1,
                "document": document,
                "description": "forged",
                "cells": {"total": 1, "cached": 0},
            }
        )
        journal.append({"event": "started", "id": "j000001"})
    handle = ServiceThread(state_dir=state_dir)
    try:
        client = ServiceClient(handle.base_url)
        assert client.job("j000001")["state"] in ("queued", "running", "done")
        final, _ = wait_for(client, "j000001")
        assert final["state"] == "done"
        assert final["accounting"]["total"] == 1
    finally:
        handle.stop()


def test_graceful_stop_mid_run_exits_interrupted_and_resumes(
    tmp_path, monkeypatch
):
    """SIGTERM-equivalent during a run: cancel at the next cell boundary,
    flush the journal, exit nonzero — then finish the job after restart."""
    import repro.simulation.engine as engine_module

    state_dir = tmp_path / "state"
    gate = threading.Event()
    real_execute = engine_module._execute_job

    def slow_execute(payload):
        gate.wait(30)  # hold the cell until the test has initiated shutdown
        return real_execute(payload)

    monkeypatch.setattr(engine_module, "_execute_job", slow_execute)
    handle = ServiceThread(state_dir=state_dir)
    client = ServiceClient(handle.base_url)
    job_id = client.submit(SWEEP_DOC)["id"]
    for _ in range(200):
        if client.job(job_id)["state"] == "running":
            break
        time.sleep(0.01)
    codes = []
    stopper = threading.Thread(target=lambda: codes.append(handle.stop()))
    stopper.start()
    # Release the held cell only once shutdown has raised the stop flag, so
    # the progress callback deterministically sees it and cancels the job.
    for _ in range(200):
        if handle.service._stop.is_set():
            break
        time.sleep(0.01)
    assert handle.service._stop.is_set()
    gate.set()
    stopper.join(timeout=30)
    assert codes == [EXIT_INTERRUPTED]

    monkeypatch.setattr(engine_module, "_execute_job", real_execute)
    handle = ServiceThread(state_dir=state_dir)
    try:
        client = ServiceClient(handle.base_url)
        final, _ = wait_for(client, job_id)
        assert final["state"] == "done"
        assert final["accounting"]["total"] == 1
    finally:
        assert handle.stop() == 0


# --------------------------------------------------------- failure taxonomy


def test_vanished_trace_fails_as_bad_spec_400(tmp_path):
    # A replay document valid at admission whose trace vanishes before
    # execution: the worker's re-parse rejects it, so the failure is
    # 400-class (the document is no longer valid), not a simulator crash.
    trace = tmp_path / "doomed.trc"
    write_trace_file(trace, build_workload_source("mcf", num_uops=200), name="mcf")
    doc = {"kind": "replay", "spec": {"trace_file": str(trace)}}
    handle = ServiceThread(state_dir=tmp_path / "state", start_paused=True)
    try:
        client = ServiceClient(handle.base_url)
        job_id = client.submit(doc)["id"]
        trace.unlink()
        handle.resume()
        final, events = wait_for(client, job_id)
        assert final["state"] == "failed"
        assert final["error_status"] == 400
        assert events[-1]["type"] == "failed"
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 400
    finally:
        handle.stop()


def test_simulation_failure_is_500_class(tmp_path, monkeypatch):
    # A crash *inside* the simulator (not a document problem) must surface
    # as 500-class.  The daemon runs in-process, so patching the engine's
    # cell executor is exactly a simulator crash from the service's view.
    import repro.simulation.engine as engine_module

    def boom(payload):
        raise RuntimeError("simulated core meltdown")

    monkeypatch.setattr(engine_module, "_execute_job", boom)
    monkeypatch.setattr(
        engine_module, "_execute_batch", lambda payloads: [boom(p) for p in payloads]
    )
    handle = ServiceThread(state_dir=tmp_path / "state")
    try:
        client = ServiceClient(handle.base_url)
        job_id = client.submit(SWEEP_DOC)["id"]
        final, events = wait_for(client, job_id)
        assert final["state"] == "failed"
        assert final["error_status"] == 500
        assert "meltdown" in final["error"]
        assert events[-1]["type"] == "failed"
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 500
    finally:
        handle.stop()


# ------------------------------------------------------------------ CLI client


def test_cli_submit_and_exit_codes(service, tmp_path, capsys):
    url = service.base_url
    doc_path = tmp_path / "doc.json"
    doc_path.write_text(json.dumps(SWEEP_DOC))
    assert main(["submit", str(doc_path), "--url", url]) == 0
    err = capsys.readouterr().err
    assert "1 simulated, 0 from cache" in err
    assert main(["submit", str(doc_path), "--url", url]) == 0
    err = capsys.readouterr().err
    assert "0 simulated, 1 from cache" in err
    assert main(["status", "--url", url]) == 0
    assert main(["status", "j000001", "--url", url]) == 0


def test_cli_bad_document_exits_2(service, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"kind": "sweep", "spec": {"bogus": 1}}))
    assert main(["submit", str(bad), "--url", service.base_url]) == EXIT_BAD_SPEC
    assert "unknown field" in capsys.readouterr().err

    not_json = tmp_path / "not.json"
    not_json.write_text("{nope")
    assert main(["submit", str(not_json), "--url", service.base_url]) == EXIT_BAD_SPEC


def test_cli_busy_exits_75(tmp_path, capsys):
    handle = ServiceThread(
        state_dir=tmp_path / "state", max_queue=0, start_paused=True
    )
    try:
        doc_path = tmp_path / "doc.json"
        doc_path.write_text(json.dumps(SWEEP_DOC))
        assert main(["submit", str(doc_path), "--url", handle.base_url]) == EXIT_BUSY
        assert "retry after" in capsys.readouterr().err
    finally:
        handle.stop()


def test_cli_failed_job_status_exits_3(tmp_path, capsys, monkeypatch):
    import repro.simulation.engine as engine_module

    def boom(payload):
        raise RuntimeError("simulated core meltdown")

    monkeypatch.setattr(engine_module, "_execute_job", boom)
    monkeypatch.setattr(
        engine_module, "_execute_batch", lambda payloads: [boom(p) for p in payloads]
    )
    handle = ServiceThread(state_dir=tmp_path / "state")
    try:
        client = ServiceClient(handle.base_url)
        job_id = client.submit(SWEEP_DOC)["id"]
        wait_for(client, job_id)
        code = main(["status", job_id, "--url", handle.base_url])
        assert code == EXIT_SIM_FAILURE
    finally:
        handle.stop()
